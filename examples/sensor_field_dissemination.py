#!/usr/bin/env python
"""Sensor-field dissemination: the workload the paper's introduction motivates.

A field of battery-powered sensors forms a multi-hop wireless network whose
links are partly unreliable (marginal signal strength, co-existing traffic).
Several sensors detect events and must disseminate their readings to every
node (e.g., so any gateway can be queried).  This example:

1. builds a sensor field as a grey-zone random geometric network,
2. runs BMMB and the sequential-flooding baseline on the same event batch,
3. sweeps the unreliable-link density to show BMMB's completion time is
   essentially flat in the *quantity* of unreliability — the paper's core
   discussion point (structure matters, quantity does not).

Run:  python examples/sensor_field_dissemination.py
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    MessageAssignment,
    RandomSource,
    SequentialFloodingCoordinator,
    UniformDelayScheduler,
    random_geometric_network,
    run_standard,
)
from repro.analysis.tables import render_table
from repro.runtime.validate import required_deliveries

FACK = 20.0
FPROG = 1.0


def build_field(rng: RandomSource, grey_probability: float):
    return random_geometric_network(
        60,
        side=4.0,
        c=1.6,
        grey_edge_probability=grey_probability,
        rng=rng,
    )


def main() -> None:
    rng = RandomSource(2024, "sensor-field")

    # --- One event batch, two dissemination strategies ----------------
    field = build_field(rng.child("field"), grey_probability=0.4)
    detectors = field.nodes[:6]  # six sensors detect an event
    readings = MessageAssignment.one_each(detectors, prefix="reading")
    print(f"sensor field: n={field.n}, D={field.diameter()}, "
          f"unreliable links={field.unreliable_edge_count}")
    print(f"{len(detectors)} sensors disseminate readings to all nodes\n")

    bmmb = run_standard(
        field,
        readings,
        lambda _: BMMBNode(),
        UniformDelayScheduler(rng.child("s1")),
        FACK,
        FPROG,
        keep_instances=False,
    )
    req = required_deliveries(field, readings)
    coordinator = SequentialFloodingCoordinator(
        readings, {mid: len(nodes) for mid, nodes in req.items()}
    )
    sequential = run_standard(
        field,
        readings,
        lambda _: coordinator.make_node(),
        UniformDelayScheduler(rng.child("s2")),
        FACK,
        FPROG,
        keep_instances=False,
    )
    print(render_table(
        [
            {
                "strategy": "BMMB (pipelined flooding)",
                "solved": bmmb.solved,
                "completion": bmmb.completion_time,
                "broadcasts": bmmb.broadcast_count,
            },
            {
                "strategy": "sequential flooding",
                "solved": sequential.solved,
                "completion": sequential.completion_time,
                "broadcasts": sequential.broadcast_count,
            },
        ],
        title="one event batch, 6 readings",
    ))

    # --- Unreliability-density sweep -----------------------------------
    rows = []
    for grey_probability in (0.0, 0.25, 0.5, 0.75, 1.0):
        net = build_field(rng.child(f"sweep-{grey_probability}"), grey_probability)
        assignment = MessageAssignment.one_each(net.nodes[:6], prefix="reading")
        result = run_standard(
            net,
            assignment,
            lambda _: BMMBNode(),
            UniformDelayScheduler(rng.child(f"run-{grey_probability}")),
            FACK,
            FPROG,
            keep_instances=False,
        )
        rows.append(
            {
                "grey-link probability": grey_probability,
                "unreliable links": net.unreliable_edge_count,
                "completion": result.completion_time,
                "solved": result.solved,
            }
        )
    print()
    print(render_table(
        rows,
        title="unreliability quantity sweep (short links only): "
              "completion stays flat",
    ))
    print("\nTakeaway: adding *many* short unreliable links barely moves "
          "completion time;\nthe paper's lower bound shows a few *long* ones "
          "under an adversarial scheduler\nare what hurt "
          "(see examples/adversarial_lowerbound.py).")


if __name__ == "__main__":
    main()
