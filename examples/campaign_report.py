#!/usr/bin/env python
"""Campaigns: regenerate a paper figure with checkpointed, resumable sweeps.

A campaign is a declarative bundle — sweeps, figures, machine checks —
that regenerates one of the paper's artifacts.  This example builds the
``figure1`` campaign at reduced size, runs it twice against one result
store (the second pass is a 100% cache-hit no-op), verifies the campaign's
declarative checks (Theorem 3.16's t1 bound, the Fprog-vs-Fack slope
split), and writes the CSV/ASCII/SVG artifacts.

The same flow from a shell:

    python -m repro campaign run figure1 --n-max 32
    python -m repro campaign verify figure1 --n-max 32

Run:  python examples/campaign_report.py [n_max]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.campaigns import (
    ResultStore,
    build_campaign,
    collect_results,
    run_campaign,
    verify_campaign,
    write_artifacts,
)


def main(n_max: int = 32) -> None:
    campaign = build_campaign("figure1", n_max=n_max)
    print(f"campaign: {campaign.title}")
    print(
        f"  {len(campaign.sweeps)} sweeps, {len(campaign.figures)} figures, "
        f"{len(campaign.checks)} checks"
    )
    workdir = tempfile.mkdtemp(prefix="repro-campaign-")
    store = ResultStore(os.path.join(workdir, "store"))

    # First pass computes and checkpoints every point ...
    first = run_campaign(campaign, store)
    print(first.describe())
    # ... so the second pass is a pure cache replay.
    second = run_campaign(campaign, store)
    print(second.describe())
    assert second.cached == second.total, "resume must be a no-op"

    report = verify_campaign(campaign, store)
    for outcome in report.checks:
        status = "pass" if outcome.ok else "FAIL"
        print(f"  check {outcome.kind:20s} [{status}]")
    assert report.ok

    artifacts_dir = os.path.join(workdir, "artifacts")
    written = write_artifacts(
        campaign, collect_results(campaign, store)[0], report.checks,
        artifacts_dir,
    )
    print(f"wrote {len(written)} artifacts under {artifacts_dir}")
    ascii_figure = os.path.join(artifacts_dir, campaign.name, "time_vs_k.txt")
    with open(ascii_figure, "r", encoding="utf-8") as fh:
        print()
        print(fh.read().rstrip())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
