#!/usr/bin/env python
"""Quickstart: run BMMB on a grey-zone wireless network.

Builds a random geometric network (unit-disk reliable links, unreliable
links up to distance c = 1.6), injects four messages, floods them with the
paper's BMMB protocol under a realistic contention scheduler, and compares
the measured completion time against the theoretical envelope.  Finally it
certifies the produced execution against the abstract-MAC-layer axioms.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import (
    BMMBNode,
    ContentionScheduler,
    MessageAssignment,
    RandomSource,
    bmmb_arbitrary_bound,
    check_axioms,
    random_geometric_network,
    run_standard,
)
from repro.topology.metrics import minimum_fack_for_contention, summarize


def main(seed: int = 7) -> None:
    rng = RandomSource(seed, "quickstart")

    # 1. A 40-node grey-zone network in a 3x3 box.
    net = random_geometric_network(
        40, side=3.0, c=1.6, grey_edge_probability=0.4, rng=rng.child("net")
    )
    info = summarize(net)
    print("network:", info.as_dict())

    # 2. Model constants: Fprog = 1 time unit; Fack provisioned for the
    #    worst-case receiver contention of this topology.
    fprog = 1.0
    fack = minimum_fack_for_contention(net, fprog)
    print(f"model: Fprog={fprog}, Fack={fack} (contention-provisioned)")

    # 3. Four messages injected at one corner node at time 0.
    assignment = MessageAssignment.single_source(net.nodes[0], 4)

    # 4. Run BMMB to quiescence.
    result = run_standard(
        net,
        assignment,
        lambda _: BMMBNode(),
        ContentionScheduler(rng.child("sched")),
        fack,
        fprog,
    )
    bound = bmmb_arbitrary_bound(info.diameter, assignment.k, fack)
    print(f"solved:        {result.solved}")
    print(f"completion:    {result.completion_time:.2f} time units")
    print(f"Thm 3.1 bound: {bound:.2f}  (measured/bound = "
          f"{result.completion_time / bound:.3f})")
    print(f"broadcasts:    {result.broadcast_count} "
          f"(= n*k = {net.n * assignment.k})")

    # 5. Certify the execution against the five MAC-layer axioms.
    report = check_axioms(result.instances, net, fack, fprog)
    print(f"axiom check:   ok={report.ok} "
          f"({report.instances_checked} instances, "
          f"{report.progress_windows_checked} progress windows)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
