#!/usr/bin/env python
"""Quickstart: run BMMB on a grey-zone wireless network, declaratively.

Describes the whole experiment as an :class:`ExperimentSpec` — a frozen,
JSON-round-trippable value — then hands it to ``run``.  Because topology
construction is seed-deterministic, the network can be materialized first
to provision ``Fack`` for its worst-case contention, and the final spec
rebuilds the *same* network inside the runner.  Finally the produced
execution is certified against the abstract-MAC-layer axioms.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import (
    ExperimentSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
    bmmb_arbitrary_bound,
    check_axioms,
    materialize_topology,
    run,
)
from repro.topology.metrics import minimum_fack_for_contention, summarize


def main(seed: int = 7) -> None:
    # 1. Declare the experiment: a 40-node grey-zone network in a 3x3 box,
    #    four messages at one node, BMMB under the contention scheduler.
    spec = ExperimentSpec(
        name="quickstart",
        topology=TopologySpec(
            "random_geometric",
            {"n": 40, "side": 3.0, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        workload=WorkloadSpec("single_source", {"count": 4}),
        scheduler=SchedulerSpec("contention"),
        seed=seed,
    )

    # 2. Materialize the (deterministic) network to provision the model:
    #    Fprog = 1 time unit; Fack sized for worst-case receiver contention.
    net = materialize_topology(spec)
    info = summarize(net)
    print("network:", info.as_dict())
    fprog = 1.0
    fack = minimum_fack_for_contention(net, fprog)
    spec = replace(spec, model=ModelSpec(fack=fack, fprog=fprog))
    print(f"model: Fprog={fprog}, Fack={fack} (contention-provisioned)")
    print(f"spec (JSON): {spec.to_json()[:72]}...")

    # 3. Run to quiescence; the runner rebuilds the same network from seed.
    result = run(spec)
    k = spec.workload.params["count"]
    bound = bmmb_arbitrary_bound(info.diameter, k, fack)
    print(f"solved:        {result.solved}")
    print(f"completion:    {result.completion_time:.2f} time units")
    print(f"Thm 3.1 bound: {bound:.2f}  (measured/bound = "
          f"{result.completion_time / bound:.3f})")
    print(f"broadcasts:    {result.broadcast_count} "
          f"(= n*k = {net.n * k})")

    # 4. Certify the execution against the five MAC-layer axioms
    #    (result.raw is the underlying standard-model RunResult).
    report = check_axioms(result.raw.instances, net, fack, fprog)
    print(f"axiom check:   ok={report.ok} "
          f"({report.instances_checked} instances, "
          f"{report.progress_windows_checked} progress windows)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
