#!/usr/bin/env python
"""FMMB walkthrough: MIS election, gathering, and overlay spreading.

Runs the enhanced-model Fast Multi-Message Broadcast algorithm stage by
stage on a grey-zone network and prints what each subroutine produced: the
elected MIS, the overlay graph H (MIS pairs within 3 hops), message custody
after gathering, and the spreading phase count.  Ends with the comparison
that motivates the enhanced model: FMMB vs BMMB when acknowledgments are
expensive.

Run:  python examples/fmmb_overlay.py [seed]
"""

from __future__ import annotations

import sys

from repro import (
    BMMBNode,
    MessageAssignment,
    RandomSource,
    WorstCaseAckScheduler,
    fmmb_bound_time,
    random_geometric_network,
    run_fmmb,
    run_standard,
)
from repro.analysis.tables import render_table
from repro.core.fmmb.overlay import build_overlay, overlay_diameter

FPROG = 1.0
FACK = 200.0  # expensive acknowledgments: FMMB's target regime


def main(seed: int = 5) -> None:
    rng = RandomSource(seed, "fmmb-demo")
    net = random_geometric_network(
        50, side=3.5, c=1.6, grey_edge_probability=0.4, rng=rng.child("net")
    )
    k = 5
    assignment = MessageAssignment.one_each(net.nodes[:k])
    print(f"network: n={net.n}, D={net.diameter()}, "
          f"unreliable links={net.unreliable_edge_count}")
    print(f"workload: k={k} messages; model: Fprog={FPROG}, Fack={FACK}\n")

    result = run_fmmb(net, assignment, fprog=FPROG, seed=seed)

    # --- Stage 1: MIS ---------------------------------------------------
    mis = result.mis_result.mis
    overlay = build_overlay(net, mis)
    print(f"stage 1 (MIS, Lemmas 4.3-4.5): |MIS|={len(mis)}, "
          f"valid={result.mis_valid}, "
          f"rounds={result.mis_result.rounds_used} "
          f"({result.mis_result.phases_used} phases)")
    print(f"  members: {sorted(mis)}")
    print(f"  overlay H: {overlay.number_of_edges()} edges, "
          f"D_H={overlay_diameter(overlay)} (vs D={net.diameter()})\n")

    # --- Stage 2: gather --------------------------------------------------
    gather = result.gather_result
    custody_rows = [
        {"MIS node": u, "messages held": ", ".join(sorted(owned)) or "-"}
        for u, owned in sorted(gather.owned.items())
        if owned
    ]
    print(f"stage 2 (gather, Lemma 4.6): complete={gather.complete}, "
          f"rounds={gather.rounds_used} ({gather.periods_used} periods)")
    print(render_table(custody_rows, title="message custody after gathering"))
    print()

    # --- Stage 3: spread --------------------------------------------------
    spread = result.spread_result
    print(f"stage 3 (spread, Lemmas 4.7-4.8): complete={spread.complete}, "
          f"rounds={spread.rounds_used} ({spread.phases_used} phases)")

    # --- Totals ------------------------------------------------------------
    budget = fmmb_bound_time(net.diameter(), k, net.n, FPROG, c=1.6)
    print(f"\nFMMB total: {result.total_rounds} rounds = "
          f"{result.total_time:.0f} time units "
          f"(Thm 4.1 budget shape: {budget:.0f})")

    bmmb = run_standard(
        net,
        assignment,
        lambda _: BMMBNode(),
        WorstCaseAckScheduler(),
        FACK,
        FPROG,
        keep_instances=False,
    )
    print(f"BMMB, worst-case acks (standard model): "
          f"{bmmb.completion_time:.0f} time units")
    winner = "FMMB" if result.completion_time < bmmb.completion_time else "BMMB"
    print(f"winner at Fack/Fprog={FACK / FPROG:.0f}: {winner} "
          "(FMMB pays no Fack at all)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
