#!/usr/bin/env python
"""Fault & dynamics gallery: one experiment under every built-in scenario.

The same BMMB experiment — a grey-zone geometric network, three messages —
is run fault-free and then under each registered fault scenario: random
and targeted crashes, periodic and random link flapping, and Poisson
churn.  Under faults, ``solved`` means *solved among survivors*, and the
result carries the fault ledger (crashes, joins, lost messages, dropped
deliveries) as metrics.

Everything is deterministic: the fault timeline is compiled from the
spec's seed before the run starts, so re-running this script reproduces
every number exactly.

Run:  python examples/fault_scenarios.py [seed]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import (
    ExperimentSpec,
    FaultSpec,
    TopologySpec,
    WorkloadSpec,
    run,
)
from repro.analysis.tables import render_table

#: The gallery: scenario name → FaultSpec parameters.
SCENARIOS: list[FaultSpec] = [
    FaultSpec("none"),
    FaultSpec("crash_random", {"fraction": 0.2, "earliest": 0.0, "latest": 0.3}),
    FaultSpec("crash_random", {"fraction": 0.2, "latest": 0.3, "recover_after": 10.0}),
    FaultSpec("crash_targeted", {"count": 2, "at": 0.02}),
    FaultSpec("flap_periodic", {"fraction": 0.8, "period": 5.0}),
    FaultSpec("flap_random", {"fraction": 0.8, "mean_up": 3.0, "mean_down": 3.0}),
    FaultSpec("churn_poisson", {"join_fraction": 0.3, "mean_gap": 4.0}),
]


def label(fault: FaultSpec) -> str:
    if not fault.enabled:
        return "none (baseline)"
    params = ",".join(f"{k}={v}" for k, v in sorted(fault.params.items()))
    return f"{fault.kind}({params})" if params else fault.kind


def main(seed: int = 7) -> None:
    base = ExperimentSpec(
        name="fault-gallery",
        topology=TopologySpec(
            "random_geometric",
            {"n": 24, "side": 2.4, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        workload=WorkloadSpec("one_each", {"k": 3}),
        seed=seed,
    )
    rows = []
    for fault in SCENARIOS:
        spec = replace(base, fault=fault, name=f"gallery-{fault.kind}")
        result = run(spec, keep_raw=False)
        metrics = result.metrics
        rows.append(
            {
                "scenario": label(fault),
                "solved": result.solved,
                "completion": (
                    round(result.completion_time, 2)
                    if result.solved
                    else "-"
                ),
                "survivors": int(metrics.get("survivors", base.topology.params["n"])),
                "crashed": int(
                    metrics.get("nodes_crashed", 0) + metrics.get("nodes_left", 0)
                ),
                "joined": int(metrics.get("nodes_joined", 0)),
                "flaps": int(metrics.get("link_flap_events", 0)),
                "msgs lost": int(metrics.get("messages_lost", 0)),
                "rcv dropped": int(metrics.get("deliveries_dropped", 0)),
            }
        )
    print(render_table(rows, title=f"BMMB under fault scenarios (seed={seed})"))
    print()
    print("Under faults, 'solved' means solved among surviving nodes;")
    print("messages whose origin died before arrival are counted lost, not owed;")
    print("late joiners are owed only messages arriving after they join (plus"
          " their own).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
