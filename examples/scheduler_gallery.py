#!/usr/bin/env python
"""Scheduler gallery: one algorithm, one network, every registered scheduler.

The abstract MAC layer's nondeterminism is a *scheduler*; the paper's
results are statements about which schedulers can exist.  This example
enumerates the scheduler registry (``list_schedulers()``) — so any
scheduler registered by downstream code appears automatically — and runs
BMMB on a single r-restricted network under each entry, showing how the
same algorithm's completion time moves between the ``D·Fprog``-dominated
regime (friendly scheduling) and the ``(D+k)·Fack``-dominated regime
(hostile-but-legal scheduling).

Run:  python examples/scheduler_gallery.py
"""

from __future__ import annotations

from repro import (
    ExperimentSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
    bmmb_arbitrary_bound,
    bmmb_r_restricted_bound,
    check_axioms,
    list_schedulers,
    materialize_topology,
    run,
)
from repro.analysis.tables import render_table

FACK = 20.0
FPROG = 1.0
R = 3
K = 5

LABELS = {
    "uniform": "friendly MAC",
    "contention": "loaded MAC",
    "worstcase": "hostile but legal",
    "choke": "Lemma 3.18 acks",
}


def main() -> None:
    base = ExperimentSpec(
        name="gallery",
        topology=TopologySpec(
            "r_restricted_line", {"n": 20, "r": R, "probability": 0.5}
        ),
        workload=WorkloadSpec("single_source", {"node": 0, "count": K}),
        model=ModelSpec(fack=FACK, fprog=FPROG),
        seed=99,
    )
    net = materialize_topology(base)
    d = net.diameter()
    print(f"network: 20-node line + r={R}-restricted unreliable links "
          f"({net.unreliable_edge_count} of them), D={d}, k={K}")
    print(f"model: Fack={FACK}, Fprog={FPROG}\n")

    rows = []
    for name in list_schedulers():
        result = run(
            ExperimentSpec(
                name=f"gallery-{name}",
                topology=base.topology,
                workload=base.workload,
                scheduler=SchedulerSpec(name),
                model=base.model,
                seed=base.seed,
            )
        )
        certificate = check_axioms(result.raw.instances, net, FACK, FPROG)
        label = LABELS.get(name, "registered scheduler")
        rows.append(
            {
                "scheduler": f"{name} ({label})",
                "completion": result.completion_time,
                "axiom-clean": certificate.ok,
                "rcv events": int(result.metrics["rcv_count"]),
            }
        )
    print(render_table(rows, title="BMMB under every registered scheduler"))

    t1 = bmmb_r_restricted_bound(d, K, R, FACK, FPROG)
    arb = bmmb_arbitrary_bound(d, K, FACK)
    print(f"\nTheorem 3.16 bound (r={R}):   {t1:.0f}")
    print(f"Theorem 3.1 bound (any G'): {arb:.0f}")
    print("\nEvery execution above is admissible for the same model "
          "parameters —\nthe spread between rows is pure scheduler "
          "nondeterminism, which is exactly\nwhat the paper's worst-case "
          "bounds quantify over.")


if __name__ == "__main__":
    main()
