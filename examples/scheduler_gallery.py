#!/usr/bin/env python
"""Scheduler gallery: one algorithm, one network, every scheduler.

The abstract MAC layer's nondeterminism is a *scheduler*; the paper's
results are statements about which schedulers can exist.  This example runs
BMMB on a single r-restricted network under every scheduler in the package
and shows how the same algorithm's completion time moves between the
``D·Fprog``-dominated regime (friendly scheduling) and the
``(D+k)·Fack``-dominated regime (hostile-but-legal scheduling).

Run:  python examples/scheduler_gallery.py
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    ContentionScheduler,
    MessageAssignment,
    RandomSource,
    UniformDelayScheduler,
    WorstCaseAckScheduler,
    bmmb_arbitrary_bound,
    bmmb_r_restricted_bound,
    check_axioms,
    run_standard,
    with_r_restricted_unreliable,
)
from repro.analysis.tables import render_table
from repro.topology.generators import line_graph

FACK = 20.0
FPROG = 1.0
R = 3
K = 5


def main() -> None:
    rng = RandomSource(99, "gallery")
    net = with_r_restricted_unreliable(
        line_graph(20), r=R, probability=0.5, rng=rng.child("topo")
    )
    assignment = MessageAssignment.single_source(0, K)
    d = net.diameter()
    print(f"network: 20-node line + r={R}-restricted unreliable links "
          f"({net.unreliable_edge_count} of them), D={d}, k={K}")
    print(f"model: Fack={FACK}, Fprog={FPROG}\n")

    schedulers = [
        (
            "uniform (friendly MAC)",
            UniformDelayScheduler(rng.child("u"), p_unreliable=0.5),
        ),
        (
            "contention (loaded MAC)",
            ContentionScheduler(rng.child("c")),
        ),
        (
            "worst-case acks (hostile but legal)",
            WorstCaseAckScheduler(rng.child("w"), p_unreliable=0.5),
        ),
    ]
    rows = []
    for name, scheduler in schedulers:
        result = run_standard(
            net,
            assignment,
            lambda _: BMMBNode(),
            scheduler,
            FACK,
            FPROG,
        )
        certificate = check_axioms(result.instances, net, FACK, FPROG)
        rows.append(
            {
                "scheduler": name,
                "completion": result.completion_time,
                "axiom-clean": certificate.ok,
                "rcv events": result.rcv_count,
            }
        )
    print(render_table(rows, title="BMMB under every scheduler"))

    t1 = bmmb_r_restricted_bound(d, K, R, FACK, FPROG)
    arb = bmmb_arbitrary_bound(d, K, FACK)
    print(f"\nTheorem 3.16 bound (r={R}):   {t1:.0f}")
    print(f"Theorem 3.1 bound (any G'): {arb:.0f}")
    print("\nEvery execution above is admissible for the same model "
          "parameters —\nthe spread between rows is pure scheduler "
          "nondeterminism, which is exactly\nwhat the paper's worst-case "
          "bounds quantify over.")


if __name__ == "__main__":
    main()
