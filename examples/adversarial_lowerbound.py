#!/usr/bin/env python
"""The Figure 2 lower bound, executed step by step.

Builds the paper's two-parallel-lines network ``C``, runs BMMB against the
Lemma 3.19/3.20 adversarial message scheduler, and prints the frontier
timeline: message m0 crosses one hop of line A per ``Fack`` while the
progress bound is kept satisfied by single receptions of m1 over the long
diagonal unreliable edges.  The execution is then certified against all
five MAC-layer axioms — the adversary cheats nothing.

Run:  python examples/adversarial_lowerbound.py [depth]
"""

from __future__ import annotations

import sys

from repro import (
    BMMBNode,
    GreyZoneAdversary,
    RandomSource,
    UniformDelayScheduler,
    check_axioms,
    figure2_lower_bound,
    run_standard,
)
from repro.analysis.tables import render_table
from repro.topology.adversarial import parallel_lines_network

FACK = 20.0
FPROG = 1.0


def main(depth: int = 10) -> None:
    net = parallel_lines_network(depth)
    print(f"network C: two {depth}-node lines, "
          f"{net.dual.unreliable_edge_count} diagonal unreliable edges")
    print(f"m0 starts at a1 (node {net.a_nodes[0]}), "
          f"m1 starts at b1 (node {net.b_nodes[0]})")
    print(f"model: Fack={FACK}, Fprog={FPROG}\n")

    # --- Adversarial run ------------------------------------------------
    result = run_standard(
        net.dual,
        net.assignment,
        lambda _: BMMBNode(),
        GreyZoneAdversary(net),
        FACK,
        FPROG,
    )
    rows = []
    for i, node in enumerate(net.a_nodes):
        rows.append(
            {
                "node": f"a{i + 1}",
                "m0 delivered at": result.deliveries.time_of(node, "m0"),
                "hops/Fack": (result.deliveries.time_of(node, "m0") or 0) / FACK,
            }
        )
    print(render_table(rows, title="m0's frontier crawl down line A"))

    floor = figure2_lower_bound(depth, FACK)
    print(f"\ncompletion: {result.completion_time:.1f}  "
          f"(lower-bound floor (D-1)*Fack = {floor:.1f})")

    # --- Legality certificate -------------------------------------------
    report = check_axioms(result.instances, net.dual, FACK, FPROG)
    print(f"axiom certificate: ok={report.ok} "
          f"({report.instances_checked} instances, "
          f"{report.progress_windows_checked} progress windows checked)")

    # --- Benign comparison ------------------------------------------------
    rng = RandomSource(1, "benign")
    benign = run_standard(
        net.dual,
        net.assignment,
        lambda _: BMMBNode(),
        UniformDelayScheduler(rng),
        FACK,
        FPROG,
        keep_instances=False,
    )
    print(f"\nsame network, benign scheduler: {benign.completion_time:.1f} "
          f"({result.completion_time / benign.completion_time:.0f}x faster)")
    print("The gap is entirely the scheduler's doing: long unreliable edges "
          "let it\nstarve the frontier while technically honoring the "
          "progress bound.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
