#!/usr/bin/env python
"""Network structuring: build and visualize a CDS backbone.

The paper's conclusion proposes network structuring as follow-on work; this
example elects an MIS with the FMMB subroutine, extends it to a connected
dominating set (MIS anchors + shortest-path connectors), validates the
backbone, renders the embedded network in the terminal (backbone
highlighted), and prints a scheduled backbone broadcast.

Run:  python examples/backbone_structuring.py [seed]
"""

from __future__ import annotations

import sys

from repro import RandomSource, random_geometric_network
from repro.analysis.ascii_art import render_embedding, render_series
from repro.analysis.tables import render_table
from repro.core.fmmb.mis import build_mis
from repro.core.structuring import (
    build_cds,
    cds_broadcast_schedule,
    validate_cds,
)
from repro.mac.rounds import RandomRoundScheduler


def main(seed: int = 9) -> None:
    rng = RandomSource(seed, "backbone-demo")
    net = random_geometric_network(
        45, side=3.2, c=1.6, grey_edge_probability=0.3, rng=rng.child("net")
    )
    print(f"network: n={net.n}, D={net.diameter()}")

    mis_result = build_mis(
        net, RandomRoundScheduler(rng.child("rounds")), rng.child("mis")
    )
    backbone = build_cds(net, mis_result.mis)
    validate_cds(net, backbone)
    print(f"MIS: {len(backbone.mis)} anchors "
          f"(elected in {mis_result.rounds_used} rounds)")
    print(f"CDS: {backbone.size} nodes "
          f"({len(backbone.connectors)} connectors); valid backbone\n")

    print("embedded network ('#' = backbone, 'o' = dominated):")
    print(render_embedding(net, width=64, height=18, highlight=backbone.members))

    schedule = cds_broadcast_schedule(net, backbone, source=net.nodes[0])
    rows = [
        {
            "step": step.step,
            "transmitter": step.sender,
            "newly covered": len(step.new_nodes),
        }
        for step in schedule[:10]
    ]
    print()
    print(render_table(rows, title="backbone broadcast schedule (first 10 steps)"))
    print(f"... covers all {net.n} nodes in {len(schedule)} backbone "
          f"transmissions (vs {net.n} for flooding on all nodes)")

    print("\ncoverage growth per step:")
    covered = 0
    series = []
    for step in schedule:
        covered += len(step.new_nodes)
        series.append((f"s{step.step}", covered))
    print(render_series(series[:12], width=36))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
