"""E7 — §4.2, Lemmas 4.3–4.5: the MIS subroutine.

Claim: the election/announcement subroutine builds a maximal independent
set of ``G`` in ``O(c⁴·log³ n)`` rounds w.h.p.

Regeneration: sweep n on grey-zone networks; verify independence and
maximality on every seed, report rounds used against the ``log³ n`` budget,
and check the measured growth is far below linear in n (the subroutine is
polylogarithmic, unlike the previously best known linear-in-n MIS for
abstract MAC layers [32] that the paper cites).
"""

from __future__ import annotations

from repro import RandomSource, random_geometric_network
from repro.analysis.stats import success_rate, summarize
from repro.analysis.tables import render_table
from repro.core.fmmb.config import FMMBConfig, log2n
from repro.core.fmmb.mis import build_mis, is_independent, is_maximal
from repro.mac.rounds import RandomRoundScheduler

SEEDS = range(5)


def run_mis_once(n: int, side: float, seed: int):
    rng = RandomSource(seed, f"e7-{n}")
    dual = random_geometric_network(
        n, side=side, c=1.6, grey_edge_probability=0.4, rng=rng.child("net")
    )
    scheduler = RandomRoundScheduler(rng.child("rounds"))
    result = build_mis(dual, scheduler, rng.child("algo"))
    return dual, result


def bench_mis_scaling(benchmark, report):
    cfg = FMMBConfig()
    rows = []
    rounds_by_n = {}
    for n, side in ((20, 2.0), (40, 3.0), (80, 4.5), (160, 6.5)):
        valid = []
        rounds = []
        sizes = []
        for seed in SEEDS:
            dual, result = run_mis_once(n, side, seed)
            valid.append(
                is_independent(dual, result.mis) and is_maximal(dual, result.mis)
            )
            rounds.append(float(result.rounds_used))
            sizes.append(float(len(result.mis)))
        stats = summarize(rounds)
        rounds_by_n[n] = stats.mean
        budget = cfg.max_mis_phases(n) * (
            cfg.election_rounds(n) + cfg.announcement_rounds(n)
        )
        rows.append(
            {
                "n": n,
                "valid rate": success_rate(valid),
                "rounds mean": stats.mean,
                "rounds max": stats.maximum,
                "budget c^4log^3": budget,
                "log^3 n": round(log2n(n) ** 3, 1),
                "|MIS| mean": summarize(sizes).mean,
            }
        )
        assert success_rate(valid) == 1.0
        assert stats.maximum <= budget
    # Polylog growth: quadrupling n (20→80) grows rounds far slower than 4x.
    growth = rounds_by_n[160] / rounds_by_n[20]
    n_growth = 160 / 20
    assert growth < n_growth
    report(
        "E7 MIS subroutine (Lemmas 4.3-4.5): valid w.h.p., rounds = polylog(n)",
        render_table(rows),
    )
    benchmark.extra_info["rounds_growth_20_to_160"] = growth
    benchmark.pedantic(run_mis_once, args=(80, 4.5, 0), rounds=3, iterations=1)
