"""E6 — Figure 1, cell (Enhanced model, grey zone); Theorem 4.1.

Claim: FMMB solves MMB in ``O((D·log n + k·log n + log³n)·Fprog)`` w.h.p. —
no ``Fack`` term at all.

Regeneration: sweep n and k on grey-zone random geometric networks; verify
every run solves, measure total rounds against the Theorem 4.1 budget
shape, and demonstrate the headline property directly: FMMB's round count
is identical whatever ``Fack`` is, while BMMB under slow acknowledgments
degrades with ``Fack``.
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    AlgorithmSpec,
    ExperimentSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
    materialize_topology,
    run,
)
from repro.analysis.bounds import fmmb_bound_rounds
from repro.analysis.tables import render_table

FPROG = 1.0


def fmmb_spec(n: int, side: float, k: int, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"e6-fmmb-n{n}-k{k}",
        topology=TopologySpec(
            "random_geometric",
            {"n": n, "side": side, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        algorithm=AlgorithmSpec("fmmb", {"c": 1.6}),
        workload=WorkloadSpec("one_each", {"k": k}),
        model=ModelSpec(fprog=FPROG),
        substrate="rounds",
        seed=seed,
    )


def run_one(n: int, side: float, k: int, seed: int = 0):
    spec = fmmb_spec(n, side, k, seed)
    return materialize_topology(spec), run(spec, keep_raw=False)


def bench_fmmb_scaling(benchmark, report):
    rows = []
    for n, side, k in ((20, 2.0, 2), (40, 3.0, 4), (80, 4.5, 4), (80, 4.5, 12)):
        dual, result = run_one(n, side, k)
        assert result.solved
        assert result.metrics["mis_valid"]
        total_rounds = int(result.metrics["rounds_total"])
        budget = fmmb_bound_rounds(dual.diameter(), k, n, c=1.6)
        rows.append(
            {
                "n": n,
                "D": dual.diameter(),
                "k": k,
                "rounds(MIS)": int(result.metrics["rounds_mis"]),
                "rounds(gather)": int(result.metrics["rounds_gather"]),
                "rounds(spread)": int(result.metrics["rounds_spread"]),
                "rounds(total)": total_rounds,
                "budget shape": round(budget),
                "ratio": total_rounds / budget,
            }
        )
        assert total_rounds <= 5 * budget
    report(
        "E6 Figure 1 (Enhanced, grey zone): FMMB rounds vs "
        "(D log n + k log n + log^3 n) budget",
        render_table(rows),
    )

    # The no-Fack property, measured: BMMB pays for Fack, FMMB does not.
    # Same topology spec + seed => both substrates run the same network.
    base = fmmb_spec(40, 3.0, 4, seed=1)
    fmmb_result = run(base, keep_raw=False)
    fack_rows = []
    for fack in (5.0, 50.0, 500.0):
        bmmb_spec = replace(
            base,
            name=f"e6-bmmb-fack{fack}",
            algorithm=AlgorithmSpec("bmmb"),
            scheduler=SchedulerSpec("worstcase", {"p_unreliable": 0.0}),
            model=ModelSpec(fack=fack, fprog=FPROG),
            substrate="standard",
        )
        bmmb = run(bmmb_spec, keep_raw=False)
        fack_rows.append(
            {
                "Fack/Fprog": fack,
                "BMMB (worst-case acks)": bmmb.completion_time,
                "FMMB": fmmb_result.completion_time,
                "winner": "FMMB" if fmmb_result.completion_time < bmmb.completion_time else "BMMB",
            }
        )
    assert fack_rows[-1]["winner"] == "FMMB"
    report(
        "E6b FMMB has no Fack term: completion vs Fack/Fprog ratio",
        render_table(fack_rows),
    )
    benchmark.pedantic(run_one, args=(40, 3.0, 4), rounds=3, iterations=1)
