"""E6 — Figure 1, cell (Enhanced model, grey zone); Theorem 4.1.

Claim: FMMB solves MMB in ``O((D·log n + k·log n + log³n)·Fprog)`` w.h.p. —
no ``Fack`` term at all.

Regeneration: sweep n and k on grey-zone random geometric networks; verify
every run solves, measure total rounds against the Theorem 4.1 budget
shape, and demonstrate the headline property directly: FMMB's round count
is identical whatever ``Fack`` is, while BMMB under slow acknowledgments
degrades with ``Fack``.
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    RandomSource,
    WorstCaseAckScheduler,
    random_geometric_network,
    run_fmmb,
    run_standard,
)
from repro.analysis.bounds import fmmb_bound_rounds
from repro.analysis.tables import render_table
from repro.ids import MessageAssignment

FPROG = 1.0


def grey(n: int, side: float, seed: int):
    rng = RandomSource(seed, f"e6-net-{n}")
    return random_geometric_network(
        n, side=side, c=1.6, grey_edge_probability=0.4, rng=rng
    )


def run_one(n: int, side: float, k: int, seed: int = 0):
    dual = grey(n, side, seed)
    assignment = MessageAssignment.one_each(dual.nodes[:k])
    return dual, run_fmmb(dual, assignment, fprog=FPROG, seed=seed)


def bench_fmmb_scaling(benchmark, report):
    rows = []
    for n, side, k in ((20, 2.0, 2), (40, 3.0, 4), (80, 4.5, 4), (80, 4.5, 12)):
        dual, result = run_one(n, side, k)
        assert result.solved
        assert result.mis_valid
        budget = fmmb_bound_rounds(dual.diameter(), k, n, c=1.6)
        rows.append(
            {
                "n": n,
                "D": dual.diameter(),
                "k": k,
                "rounds(MIS)": result.mis_result.rounds_used,
                "rounds(gather)": result.gather_result.rounds_used,
                "rounds(spread)": result.spread_result.rounds_used,
                "rounds(total)": result.total_rounds,
                "budget shape": round(budget),
                "ratio": result.total_rounds / budget,
            }
        )
        assert result.total_rounds <= 5 * budget
    report(
        "E6 Figure 1 (Enhanced, grey zone): FMMB rounds vs "
        "(D log n + k log n + log^3 n) budget",
        render_table(rows),
    )

    # The no-Fack property, measured: BMMB pays for Fack, FMMB does not.
    dual = grey(40, 3.0, 1)
    assignment = MessageAssignment.one_each(dual.nodes[:4])
    fmmb_result = run_fmmb(dual, assignment, fprog=FPROG, seed=1)
    fack_rows = []
    for fack in (5.0, 50.0, 500.0):
        bmmb = run_standard(
            dual,
            assignment,
            lambda _: BMMBNode(),
            WorstCaseAckScheduler(),
            fack,
            FPROG,
            keep_instances=False,
        )
        fack_rows.append(
            {
                "Fack/Fprog": fack,
                "BMMB (worst-case acks)": bmmb.completion_time,
                "FMMB": fmmb_result.completion_time,
                "winner": "FMMB" if fmmb_result.completion_time < bmmb.completion_time else "BMMB",
            }
        )
    assert fack_rows[-1]["winner"] == "FMMB"
    report(
        "E6b FMMB has no Fack term: completion vs Fack/Fprog ratio",
        render_table(fack_rows),
    )
    benchmark.pedantic(run_one, args=(40, 3.0, 4), rounds=3, iterations=1)
