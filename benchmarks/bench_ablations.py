"""E15 — ablations of the design choices DESIGN.md calls out.

Three ablations:

* **A1 — remove the adversary's legalizing injection.**  The Figure 2
  scheduler's diagonal delivery is what makes frontier starvation legal;
  an ablated adversary that skips it produces executions the axiom checker
  *rejects* for progress violations.  This is the negative control showing
  the lower bound genuinely needs the long unreliable edges.
* **A2 — FMMB activation probability.**  The Θ(1/c²) activation constant
  trades round cost against collision probability; sweep it and record
  rounds-to-completion and solve rate.
* **A3 — contention scheduler service bias.**  Diverting service slots to
  unreliable senders injects more duplicate/old traffic; sweep the bias
  and verify BMMB's completion degrades only mildly (quantity of
  unreliability, again, is not the lever).
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    ContentionScheduler,
    GreyZoneAdversary,
    RandomSource,
    check_axioms,
    random_geometric_network,
    run_fmmb,
    run_standard,
)
from repro.analysis.tables import render_table
from repro.core.fmmb import FMMBConfig
from repro.ids import MessageAssignment
from repro.mac.messages import MessageInstance
from repro.topology.adversarial import parallel_lines_network

FACK = 20.0
FPROG = 1.0


class AblatedGreyZoneAdversary(GreyZoneAdversary):
    """Figure 2 adversary without the legalizing diagonal injection."""

    def on_bcast(self, instance: MessageInstance) -> None:
        ctx = self.ctx
        assert ctx is not None
        mid = getattr(instance.payload, "mid", None)
        plan = self._frontier_plan(instance.sender, mid)
        if plan is None:
            self._instant(instance)
            return
        next_node, _diagonal = plan
        t = instance.bcast_time
        for receiver in sorted(ctx.dual.reliable_neighbors(instance.sender)):
            when = t + ctx.fack if receiver == next_node else t
            ctx.deliver_at(instance, receiver, when)
            self._note_holder(mid, receiver)
        # Ablation: no diagonal injection.
        ctx.ack_at(instance, t + ctx.fack)


def run_figure2(ablated: bool, depth: int = 8):
    net = parallel_lines_network(depth)
    adversary = (
        AblatedGreyZoneAdversary(net) if ablated else GreyZoneAdversary(net)
    )
    result = run_standard(
        net.dual,
        net.assignment,
        lambda _: BMMBNode(),
        adversary,
        FACK,
        FPROG,
    )
    certificate = check_axioms(result.instances, net.dual, FACK, FPROG)
    return result, certificate


def bench_ablation_adversary_injection(benchmark, report):
    full, full_cert = run_figure2(ablated=False)
    ablated, ablated_cert = run_figure2(ablated=True)
    rows = [
        {
            "variant": "full adversary (with injection)",
            "completion": full.completion_time,
            "axiom-clean": full_cert.ok,
            "violations": len(full_cert.violations),
        },
        {
            "variant": "ablated (no injection)",
            "completion": ablated.completion_time,
            "axiom-clean": ablated_cert.ok,
            "violations": len(ablated_cert.violations),
        },
    ]
    assert full_cert.ok
    assert not ablated_cert.ok  # starvation without the injection is illegal
    assert any("progress violation" in v for v in ablated_cert.violations)
    report(
        "E15-A1 Negative control: starving without the diagonal injection "
        "violates the progress bound",
        render_table(rows),
    )
    benchmark.pedantic(run_figure2, args=(False,), rounds=3, iterations=1)


def run_fmmb_with_activation(activation: float, seed: int = 0):
    rng = RandomSource(seed, f"e15a2-{activation}")
    dual = random_geometric_network(
        30, side=2.5, c=1.6, grey_edge_probability=0.4, rng=rng
    )
    assignment = MessageAssignment.one_each(dual.nodes[:3])
    config = FMMBConfig(activation_probability=activation)
    return run_fmmb(dual, assignment, fprog=FPROG, seed=seed, config=config)


def bench_ablation_fmmb_activation(benchmark, report):
    rows = []
    for activation in (0.05, 0.2, 0.4, 0.8):
        results = [run_fmmb_with_activation(activation, seed) for seed in range(3)]
        rows.append(
            {
                "activation p": activation,
                "solve rate": sum(r.solved for r in results) / len(results),
                "rounds mean": sum(r.total_rounds for r in results) / len(results),
                "mis valid rate": sum(r.mis_valid for r in results) / len(results),
            }
        )
    # The default Θ(1/c²) ≈ 0.39 region solves reliably.
    mid = [row for row in rows if row["activation p"] in (0.2, 0.4)]
    assert all(row["solve rate"] == 1.0 for row in mid)
    report(
        "E15-A2 FMMB activation-probability ablation (default ~0.39 = 1/c^2)",
        render_table(rows),
    )
    benchmark.pedantic(run_fmmb_with_activation, args=(0.4,), rounds=3, iterations=1)


def run_contention_bias(bias: float, seed: int = 0):
    rng = RandomSource(seed, f"e15a3-{bias}")
    from repro.topology import with_r_restricted_unreliable
    from repro.topology.generators import line_graph

    dual = with_r_restricted_unreliable(
        line_graph(20), r=3, probability=0.6, rng=rng.child("t")
    )
    scheduler = ContentionScheduler(
        rng.child("s"), unreliable_service_bias=bias
    )
    result = run_standard(
        dual,
        MessageAssignment.single_source(0, 4),
        lambda _: BMMBNode(),
        scheduler,
        FACK,
        FPROG,
        keep_instances=False,
    )
    assert result.solved
    return result


def bench_ablation_contention_bias(benchmark, report):
    rows = []
    times = []
    for bias in (0.0, 0.25, 0.5, 0.9):
        result = run_contention_bias(bias)
        times.append(result.completion_time)
        rows.append(
            {
                "unreliable service bias": bias,
                "completion": result.completion_time,
                "rcv events": result.rcv_count,
            }
        )
    # More unreliable traffic, mildly slower at worst: quantity isn't the lever.
    assert max(times) <= 3.0 * min(times)
    report(
        "E15-A3 Contention-scheduler unreliable-service bias ablation",
        render_table(rows),
    )
    benchmark.pedantic(run_contention_bias, args=(0.5,), rounds=3, iterations=1)
