"""E11 — the BMMB/FMMB crossover implied by Figure 1's two rows.

Claim: BMMB (standard model) pays ``Θ((D + k)·Fack)`` worst-case under
grey-zone unreliability while FMMB (enhanced model) pays
``O((D log n + k log n + log³n)·Fprog)``; as the ``Fack/Fprog`` ratio grows,
FMMB must eventually win despite its polylog overhead.

Regeneration: fix one grey-zone network and workload; sweep ``Fack/Fprog``;
BMMB runs under worst-case acknowledgments, FMMB is ratio-independent.
Report the crossover point.
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    RandomSource,
    WorstCaseAckScheduler,
    random_geometric_network,
    run_fmmb,
    run_standard,
)
from repro.analysis.tables import render_table
from repro.ids import MessageAssignment

FPROG = 1.0


def make_workload(seed: int = 0):
    rng = RandomSource(seed, "e11")
    dual = random_geometric_network(
        40, side=3.0, c=1.6, grey_edge_probability=0.4, rng=rng
    )
    assignment = MessageAssignment.one_each(dual.nodes[:5])
    return dual, assignment


def run_pair(ratio: float, dual, assignment):
    bmmb = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        WorstCaseAckScheduler(),
        fack=ratio * FPROG,
        fprog=FPROG,
        keep_instances=False,
    )
    fmmb = run_fmmb(dual, assignment, fprog=FPROG, seed=11)
    return bmmb.completion_time, fmmb.completion_time


def bench_crossover(benchmark, report):
    dual, assignment = make_workload()
    rows = []
    crossover = None
    for ratio in (2.0, 10.0, 50.0, 250.0, 1000.0):
        bmmb_time, fmmb_time = run_pair(ratio, dual, assignment)
        winner = "FMMB" if fmmb_time < bmmb_time else "BMMB"
        if winner == "FMMB" and crossover is None:
            crossover = ratio
        rows.append(
            {
                "Fack/Fprog": ratio,
                "BMMB (worst-case acks)": bmmb_time,
                "FMMB (ratio-free)": fmmb_time,
                "winner": winner,
            }
        )
    assert rows[0]["winner"] == "BMMB"  # cheap acks: simplicity wins
    assert rows[-1]["winner"] == "FMMB"  # expensive acks: Fack-free wins
    rows.append({"Fack/Fprog": "crossover", "winner": f"<= {crossover}"})
    report(
        "E11 BMMB vs FMMB crossover as Fack/Fprog grows (n=40, k=5)",
        render_table(rows),
    )
    benchmark.extra_info["crossover_ratio"] = crossover
    benchmark.pedantic(run_pair, args=(50.0, dual, assignment), rounds=3, iterations=1)
