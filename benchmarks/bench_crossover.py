"""E11 — the BMMB/FMMB crossover implied by Figure 1's two rows.

Claim: BMMB (standard model) pays ``Θ((D + k)·Fack)`` worst-case under
grey-zone unreliability while FMMB (enhanced model) pays
``O((D log n + k log n + log³n)·Fprog)``; as the ``Fack/Fprog`` ratio grows,
FMMB must eventually win despite its polylog overhead.

Regeneration: a thin wrapper over the ``crossover`` campaign — the fixed
network/workload, the ratio ladder, and the who-wins-at-each-end claim
live in its declarative ``crossover`` check; the benchmark reports the
aggregated curve and the first ratio where FMMB wins.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.campaigns import (
    build_campaign,
    campaign_summary_rows,
    evaluate_checks,
    results_by_sweep,
    run_campaign,
    y_value,
)
from repro.experiments import run
from repro.experiments.sweep import path_value


def bench_crossover(benchmark, report):
    campaign = build_campaign("crossover")
    outcome = run_campaign(campaign, store=None)
    points = results_by_sweep(outcome)
    checks = evaluate_checks(campaign, points)
    failures = [f for check in checks for f in check.failures]
    assert not failures, failures
    fmmb_by_ratio = {
        path_value(p.spec, "model.fack"): y_value(p, "completion_time")
        for p in points["fmmb"]
    }
    crossover = None
    for p in points["bmmb"]:
        ratio = path_value(p.spec, "model.fack")
        if fmmb_by_ratio[ratio] < y_value(p, "completion_time"):
            crossover = ratio if crossover is None else min(crossover, ratio)
    rows = campaign_summary_rows(campaign, points)
    rows.append({"figure": "crossover", "series": f"FMMB wins at <= {crossover}"})
    report(
        "E11 BMMB vs FMMB crossover as Fack/Fprog grows (n=40, k=5)",
        render_table(rows),
    )
    benchmark.extra_info["crossover_ratio"] = crossover
    representative = campaign.sweep("bmmb").expand()[2]
    benchmark.pedantic(
        run,
        args=(representative,),
        kwargs={"keep_raw": False},
        rounds=3,
        iterations=1,
    )
