"""E2 — Figure 1, cell (Standard model, r-restricted G'); Theorems 3.2/3.16.

Claim: BMMB solves MMB in ``O(D·Fprog + r·k·Fack)`` when every unreliable
edge spans at most ``r`` hops of ``G``; explicitly
``t1 = (D + (r+1)·k − 2)·Fprog + r·(k−1)·Fack``.

Regeneration: fix a line workload and sweep ``r``, with the worst-case-ack
scheduler exercising the unreliable links; verify the Theorem 3.16 bound at
every ``r`` and that measured time stays far below the bound's growth
(the bound is worst-case over schedulers; the adversary that saturates it
needs long edges, which r-restriction forbids).
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    RandomSource,
    WorstCaseAckScheduler,
    bmmb_r_restricted_bound,
    run_standard,
    with_r_restricted_unreliable,
)
from repro.analysis.tables import render_table
from repro.ids import MessageAssignment
from repro.topology.generators import line_graph

FACK = 20.0
FPROG = 1.0
N = 25
K = 6


def run_r(r: int, seed: int = 0):
    rng = RandomSource(seed, f"e2-r{r}")
    dual = with_r_restricted_unreliable(
        line_graph(N), r=r, probability=0.5, rng=rng.child("topo")
    )
    assert dual.is_r_restricted(r)
    assignment = MessageAssignment.single_source(0, K)
    result = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        WorstCaseAckScheduler(rng.child("sched"), p_unreliable=0.5),
        FACK,
        FPROG,
        keep_instances=False,
    )
    return dual, result


def bench_rrestricted_sweep(benchmark, report):
    rows = []
    for r in (1, 2, 4, 8):
        dual, result = run_r(r)
        bound = bmmb_r_restricted_bound(dual.diameter(), K, r, FACK, FPROG)
        assert result.solved
        assert result.completion_time <= bound + 1e-9
        rows.append(
            {
                "r": r,
                "D": dual.diameter(),
                "k": K,
                "|E'\\E|": dual.unreliable_edge_count,
                "measured": result.completion_time,
                "bound t1(r)": bound,
                "ratio": result.completion_time / bound,
            }
        )
    # The bound's r-dependence: t1 grows linearly in r.
    bounds = [row["bound t1(r)"] for row in rows]
    assert bounds == sorted(bounds)
    report(
        "E2 Figure 1 (Standard, r-restricted): BMMB = O(D*Fprog + r*k*Fack)",
        render_table(rows),
    )
    benchmark.pedantic(run_r, args=(4,), rounds=3, iterations=1)
