"""E8 — §4.3 Lemma 4.6 and §4.4 Lemmas 4.7–4.8: gather and spread.

Claims: gathering delivers every message to an MIS node in
``O(c²·(k + log n))`` rounds; spreading pipelines the messages over the
overlay ``H`` to all nodes in ``O((D_H + k)·log n)`` rounds.

Regeneration: (a) sweep k at fixed topology and check gather rounds grow
~linearly in k within the budget; (b) sweep the network depth at fixed k
and check spread rounds grow with ``D_H`` within the budget.
"""

from __future__ import annotations

from repro import RandomSource, grey_zone_network, random_geometric_network
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table
from repro.core.fmmb.config import FMMBConfig
from repro.core.fmmb.gather import gather_messages
from repro.core.fmmb.mis import build_mis, require_valid_mis
from repro.core.fmmb.overlay import build_overlay, overlay_diameter
from repro.core.fmmb.spread import spread_messages
from repro.ids import MessageAssignment
from repro.mac.rounds import RandomRoundScheduler
from repro.runtime.validate import required_deliveries
from repro.topology.geometric import cluster_line_positions


def setup(n: int, side: float, seed: int):
    rng = RandomSource(seed, f"e8-{n}-{side}")
    dual = random_geometric_network(
        n, side=side, c=1.6, grey_edge_probability=0.4, rng=rng.child("net")
    )
    scheduler = RandomRoundScheduler(rng.child("rounds"))
    mis = build_mis(dual, scheduler, rng.child("mis")).mis
    require_valid_mis(dual, mis)
    return rng, dual, scheduler, mis


def setup_clusters(clusters: int, seed: int):
    """Deterministic elongated grey-zone network: depth grows with clusters."""
    rng = RandomSource(seed, f"e8-clusters-{clusters}")
    positions = cluster_line_positions(clusters, nodes_per_cluster=4)
    dual = grey_zone_network(
        positions, c=1.6, grey_edge_probability=0.3, rng=rng.child("net")
    )
    scheduler = RandomRoundScheduler(rng.child("rounds"))
    mis = build_mis(dual, scheduler, rng.child("mis")).mis
    require_valid_mis(dual, mis)
    return rng, dual, scheduler, mis


def run_gather(n, side, k, seed=0):
    rng, dual, scheduler, mis = setup(n, side, seed)
    assignment = MessageAssignment.one_each(dual.nodes[:k])
    result = gather_messages(
        dual, mis, assignment.messages, scheduler, rng.child("g"), k=k
    )
    return dual, mis, assignment, result


def bench_gather_rounds_vs_k(benchmark, report):
    cfg = FMMBConfig()
    rows = []
    series = []
    for k in (2, 4, 8, 16):
        dual, mis, assignment, result = run_gather(40, 3.0, k)
        assert result.complete
        budget = 3 * cfg.gather_periods(dual.n, k)
        assert result.rounds_used <= budget
        series.append((k, float(result.rounds_used)))
        rows.append(
            {
                "k": k,
                "periods": result.periods_used,
                "rounds": result.rounds_used,
                "budget 3*c^2*(k+log n)": budget,
            }
        )
    fit = linear_fit([x for x, _ in series], [y for _, y in series])
    rows.append({"k": "fit slope", "rounds": fit.slope})
    report(
        "E8a Gather (Lemma 4.6): rounds grow ~linearly in k within budget",
        render_table(rows),
    )
    benchmark.extra_info["gather_slope"] = fit.slope
    benchmark.pedantic(run_gather, args=(40, 3.0, 8), rounds=3, iterations=1)


def run_spread(clusters, k, seed=0):
    rng, dual, scheduler, mis = setup_clusters(clusters, seed)
    assignment = MessageAssignment.one_each(dual.nodes[:k])
    gather = gather_messages(
        dual, mis, assignment.messages, scheduler, rng.child("g"), k=k
    )
    assert gather.complete
    overlay = build_overlay(dual, mis)
    d_h = overlay_diameter(overlay)
    required = required_deliveries(dual, assignment)
    delivered = {
        (node, m.mid) for node, msgs in assignment.messages.items() for m in msgs
    }
    result = spread_messages(
        dual,
        mis,
        gather.owned,
        scheduler,
        rng.child("s"),
        k=k,
        overlay_diam=d_h,
        required=required,
        already_delivered=delivered,
    )
    return dual, d_h, result


def bench_spread_rounds_vs_depth(benchmark, report):
    cfg = FMMBConfig()
    rows = []
    for clusters in (4, 8, 16, 32):
        dual, d_h, result = run_spread(clusters, k=3)
        assert result.complete
        per_phase = 3 * cfg.spread_periods_per_phase(dual.n)
        budget = cfg.spread_phase_budget(d_h, 3, dual.n) * per_phase
        assert result.rounds_used <= budget
        rows.append(
            {
                "n": dual.n,
                "D": dual.diameter(),
                "D_H": d_h,
                "phases": result.phases_used,
                "rounds": result.rounds_used,
                "budget (D_H+k+slack)*3*periods": budget,
            }
        )
    # Deeper overlays need more phases.
    assert rows[-1]["D_H"] > rows[0]["D_H"]
    assert rows[-1]["rounds"] > rows[0]["rounds"]
    report(
        "E8b Spread (Lemmas 4.7-4.8): rounds grow with overlay depth within budget",
        render_table(rows),
    )
    benchmark.pedantic(run_spread, args=(16, 3), rounds=3, iterations=1)
