"""E9 — §1/§3.1 discussion: BMMB's pipelining vs naive strategies.

Claim: the trivial analysis of multi-message flooding is ``O(D·k·Fack)``
(one message at a time); BMMB's FIFO pipelining achieves
``O(D·Fprog + k·Fack)``.  The gap grows with ``k``.

Regeneration: compare BMMB against (a) an idealized *sequential* flooding
baseline that floods each message to completion before the next (oracle
barrier, so the comparison is generous to the baseline), and (b) redundant
flooding that re-broadcasts each message 3 times, across a k sweep.
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    RandomSource,
    RedundantFloodingNode,
    SequentialFloodingCoordinator,
    UniformDelayScheduler,
    line_network,
    run_standard,
)
from repro.analysis.tables import render_table
from repro.ids import MessageAssignment
from repro.runtime.validate import required_deliveries

FACK = 20.0
FPROG = 1.0
N = 30


def run_trio(k: int, seed: int = 0):
    dual = line_network(N)
    assignment = MessageAssignment.single_source(0, k)
    rng = RandomSource(seed, f"e9-{k}")
    bmmb = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        UniformDelayScheduler(rng.child("a")),
        FACK,
        FPROG,
        keep_instances=False,
    )
    req = required_deliveries(dual, assignment)
    coordinator = SequentialFloodingCoordinator(
        assignment, {mid: len(nodes) for mid, nodes in req.items()}
    )
    sequential = run_standard(
        dual,
        assignment,
        lambda _: coordinator.make_node(),
        UniformDelayScheduler(rng.child("b")),
        FACK,
        FPROG,
        keep_instances=False,
    )
    redundant = run_standard(
        dual,
        assignment,
        lambda _: RedundantFloodingNode(redundancy=3),
        UniformDelayScheduler(rng.child("c")),
        FACK,
        FPROG,
        keep_instances=False,
    )
    return bmmb, sequential, redundant


def bench_baseline_comparison(benchmark, report):
    rows = []
    for k in (2, 4, 8, 16):
        bmmb, sequential, redundant = run_trio(k)
        assert bmmb.solved and sequential.solved and redundant.solved
        assert bmmb.completion_time <= sequential.completion_time
        rows.append(
            {
                "k": k,
                "BMMB": bmmb.completion_time,
                "sequential": sequential.completion_time,
                "redundant x3": redundant.completion_time,
                "seq/BMMB": sequential.completion_time / bmmb.completion_time,
            }
        )
    # The pipelining advantage grows with k.
    assert rows[-1]["seq/BMMB"] > rows[0]["seq/BMMB"]
    report(
        "E9 Pipelining: BMMB vs sequential / redundant flooding (line, D=29)",
        render_table(rows),
    )
    benchmark.pedantic(run_trio, args=(8,), rounds=3, iterations=1)
