"""E10 — footnote 2's star example: why ``Fprog ≪ Fack``.

Claim: in a star where every leaf broadcasts, the hub receives *some*
message quickly (progress), but some leaf waits ~linearly in the star size
for its acknowledgment (contention) — the empirical justification for
treating ``Fprog`` and ``Fack`` as separate constants.

Regeneration: sweep the star size under the contention scheduler; measure
the hub's first-reception time (flat in n) against the worst initial
acknowledgment latency (growing ~linearly in n).
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    ContentionScheduler,
    RandomSource,
    run_standard,
    star_network,
)
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table
from repro.ids import MessageAssignment

FPROG = 1.0


def run_star(n: int, seed: int = 0):
    dual = star_network(n)
    assignment = MessageAssignment.one_each(list(range(1, n)))
    rng = RandomSource(seed, f"e10-{n}")
    fack = 3.0 * n * FPROG  # provisioned for the contention
    result = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        ContentionScheduler(rng),
        fack,
        FPROG,
    )
    assert result.solved
    first_hub_rcv = min(
        rtime
        for inst in result.instances
        for v, rtime in inst.rcv_times.items()
        if v == 0
    )
    worst_initial_ack = max(
        inst.ack_time - inst.bcast_time
        for inst in result.instances
        if inst.bcast_time == 0.0
    )
    return first_hub_rcv, worst_initial_ack


def bench_contention_star(benchmark, report):
    rows = []
    ack_series = []
    for n in (6, 12, 24, 48):
        first_rcv, worst_ack = run_star(n)
        assert first_rcv <= FPROG + 1e-9
        ack_series.append((n, worst_ack))
        rows.append(
            {
                "star size n": n,
                "hub first rcv (~Fprog)": first_rcv,
                "worst initial ack": worst_ack,
                "ack / Fprog": worst_ack / FPROG,
            }
        )
    fit = linear_fit([x for x, _ in ack_series], [y for _, y in ack_series])
    assert fit.slope > 0.2  # ack latency grows with contention
    rows.append({"star size n": "fit", "worst initial ack": fit.slope})
    report(
        "E10 Footnote 2 star: progress stays ~Fprog, acks scale with contention",
        render_table(rows),
    )
    benchmark.extra_info["ack_slope"] = fit.slope
    benchmark.pedantic(run_star, args=(24,), rounds=3, iterations=1)
