"""E12 — footnote 4's online MMB: arrival pattern vs per-message latency.

Claim (implicit in the BMMB analysis): BMMB is oblivious to arrival times;
with batched arrivals a message can queue behind ``k−1`` others
(``k·Fack`` term), while arrivals spaced beyond the network's drain rate
see per-message latency close to the single-message flood time.

Regeneration: on one line network under worst-case acknowledgments,
compare per-message latency for (a) all-at-zero batch, (b) staggered
arrivals at several spacings, (c) Poisson arrivals.
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    RandomSource,
    WorstCaseAckScheduler,
    line_network,
    run_standard,
)
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.core.problem import ArrivalSchedule
from repro.ids import MessageAssignment

FACK = 20.0
FPROG = 1.0
N = 20
K = 6


def run_schedule(schedule):
    dual = line_network(N)
    result = run_standard(
        dual,
        schedule,
        lambda _: BMMBNode(),
        WorstCaseAckScheduler(),
        FACK,
        FPROG,
        keep_instances=False,
    )
    assert result.solved
    return summarize(list(result.per_message_latency.values()))


def bench_online_arrivals(benchmark, report):
    rng = RandomSource(12, "e12")
    single = run_schedule(
        ArrivalSchedule.at_time_zero(MessageAssignment.single_source(0, 1))
    )
    rows = [
        {
            "workload": "single message",
            "latency mean": single.mean,
            "latency max": single.maximum,
        }
    ]
    batch = run_schedule(
        ArrivalSchedule.at_time_zero(MessageAssignment.single_source(0, K))
    )
    rows.append(
        {
            "workload": f"batch k={K} at t=0",
            "latency mean": batch.mean,
            "latency max": batch.maximum,
        }
    )
    spaced_stats = {}
    for spacing in (0.5 * FACK, FACK, 2 * FACK):
        stats = run_schedule(ArrivalSchedule.staggered(0, K, spacing=spacing))
        spaced_stats[spacing] = stats
        rows.append(
            {
                "workload": f"staggered every {spacing:g}",
                "latency mean": stats.mean,
                "latency max": stats.maximum,
            }
        )
    poisson = run_schedule(
        ArrivalSchedule.poisson([0, 5, 10, 15], K, mean_gap=FACK, rng=rng)
    )
    rows.append(
        {
            "workload": f"poisson mean gap {FACK:g}",
            "latency mean": poisson.mean,
            "latency max": poisson.maximum,
        }
    )
    # Batched arrivals queue (max latency >> single); wide spacing does not.
    assert batch.maximum > 2.0 * single.maximum
    wide = spaced_stats[2 * FACK]
    assert wide.maximum <= 1.3 * single.maximum
    report(
        "E12 Online arrivals (footnote 4): queueing appears only when "
        "arrivals outpace the drain rate",
        render_table(rows),
    )
    benchmark.pedantic(
        run_schedule,
        args=(ArrivalSchedule.staggered(0, K, spacing=FACK),),
        rounds=3,
        iterations=1,
    )
