"""E16 — network structuring (paper §5 + [4]): CDS backbone quality.

Claims checked: the MIS+connectors construction yields a valid connected
dominating set on grey-zone networks; its size stays a modest multiple of
the MIS (constant-factor on bounded-growth graphs); and the scheduled
backbone broadcast covers the network in a number of steps tracking the
backbone size, not ``n``.
"""

from __future__ import annotations

from repro import RandomSource, random_geometric_network
from repro.analysis.tables import render_table
from repro.core.fmmb.mis import build_mis
from repro.core.structuring import (
    build_cds,
    cds_broadcast_schedule,
    validate_cds,
)
from repro.mac.rounds import RandomRoundScheduler


def build_on(n: int, side: float, seed: int = 0):
    rng = RandomSource(seed, f"e16-{n}")
    dual = random_geometric_network(
        n, side=side, c=1.6, grey_edge_probability=0.3, rng=rng.child("net")
    )
    mis = build_mis(
        dual, RandomRoundScheduler(rng.child("r")), rng.child("m")
    ).mis
    backbone = build_cds(dual, mis)
    validate_cds(dual, backbone)
    return dual, backbone


def bench_cds_backbone(benchmark, report):
    rows = []
    for n, side in ((20, 2.0), (40, 3.0), (80, 4.5), (160, 6.5)):
        dual, backbone = build_on(n, side)
        schedule = cds_broadcast_schedule(dual, backbone, source=dual.nodes[0])
        rows.append(
            {
                "n": n,
                "D": dual.diameter(),
                "|MIS|": len(backbone.mis),
                "|CDS|": backbone.size,
                "CDS/MIS": backbone.size / max(len(backbone.mis), 1),
                "CDS/n": backbone.size / n,
                "schedule steps": len(schedule),
            }
        )
        assert len(schedule) <= backbone.size
    # Constant-factor blowup over the MIS on bounded-growth networks.
    assert all(row["CDS/MIS"] <= 6.0 for row in rows)
    report(
        "E16 Network structuring: CDS backbone from MIS + connectors",
        render_table(rows),
    )
    benchmark.pedantic(build_on, args=(80, 4.5), rounds=3, iterations=1)
