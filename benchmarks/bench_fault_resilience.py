"""E-fault — BMMB vs FMMB under crashes and link flapping.

The paper's guarantees assume fault-free nodes on a static dual graph.
This benchmark measures what its two algorithms actually deliver when the
``repro.faults`` engine relaxes that: node crash fractions scaling from 0
to 0.3, and grey-zone link flapping at increasing rates.

Measured claims:

* fault-free runs solve MMB on both substrates (the seed baselines hold);
* as the crash fraction grows, the *among-survivors* solved rate is
  non-increasing for BMMB (each crash can only destroy delivery paths),
  while completion among survivors — when solved — stays within the
  fault-free bound's order;
* link flapping alone (no crashes) never breaks solvability — flapped
  edges only ever *add* reliability over the grey baseline — but it
  perturbs completion time;
* every faulted run is seed-deterministic (re-run equality), which is
  what makes the resilience numbers reportable at all.
"""

from __future__ import annotations

from repro.experiments import (
    AlgorithmSpec,
    ExperimentSpec,
    FaultSpec,
    ModelSpec,
    Sweep,
    TopologySpec,
    WorkloadSpec,
    run,
    run_sweep,
)
from repro.analysis.tables import render_table

FACK = 20.0
FPROG = 1.0
SEEDS = 6

TOPO = TopologySpec(
    "random_geometric",
    {"n": 20, "side": 2.2, "c": 1.6, "grey_edge_probability": 0.4},
)


def bmmb_spec(fault: FaultSpec, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        name="fault-bmmb",
        topology=TOPO,
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"k": 3}),
        fault=fault,
        model=ModelSpec(fack=FACK, fprog=FPROG),
        seed=seed,
    )


def fmmb_spec(fault: FaultSpec, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        name="fault-fmmb",
        topology=TOPO,
        algorithm=AlgorithmSpec("fmmb", {"c": 1.6}),
        workload=WorkloadSpec("one_each", {"k": 3}),
        fault=fault,
        model=ModelSpec(fprog=FPROG),
        substrate="rounds",
        seed=seed,
    )


def crash_fault(fraction: float, horizon: float = 100.0) -> FaultSpec:
    """Crashes in ``[0, 0.4 x horizon]`` — pick ``horizon`` near the
    algorithm's completion scale so the window intersects the run."""
    return FaultSpec(
        "crash_random",
        {"fraction": fraction, "earliest": 0.0, "latest": 0.4,
         "horizon": horizon},
    )


def sweep_stats(specs):
    sweep = run_sweep(specs)
    solved = [r for r in sweep if r.solved]
    mean_completion = (
        sum(r.completion_time for r in solved) / len(solved)
        if solved
        else float("nan")
    )
    crashed = sweep.metric("nodes_crashed")
    return {
        "solved rate": sweep.solved_rate,
        "mean completion": round(mean_completion, 2),
        "mean crashed": round(sum(crashed) / len(crashed), 2) if crashed else 0.0,
    }


def bench_crash_fraction_scaling(benchmark, report):
    rows = []
    bmmb_rates = []
    for fraction in (0.0, 0.15, 0.3):
        if fraction > 0:
            # BMMB finishes in a few Fprog on this network while FMMB
            # runs for hundreds of rounds: scale each crash window to the
            # algorithm's own completion scale so faults hit mid-run.
            bmmb_fault = crash_fault(fraction, horizon=5.0)
            fmmb_fault = crash_fault(fraction, horizon=300.0)
        else:
            bmmb_fault = fmmb_fault = FaultSpec("none")
        bmmb = sweep_stats(Sweep.seeds(bmmb_spec(bmmb_fault), SEEDS))
        fmmb = sweep_stats(Sweep.seeds(fmmb_spec(fmmb_fault), SEEDS))
        bmmb_rates.append(bmmb["solved rate"])
        rows.append(
            {
                "crash fraction": fraction,
                "BMMB solved": bmmb["solved rate"],
                "BMMB completion": bmmb["mean completion"],
                "FMMB solved": fmmb["solved rate"],
                "FMMB completion": fmmb["mean completion"],
                "crashed/run": max(bmmb["mean crashed"], fmmb["mean crashed"]),
            }
        )
    # Fault-free baselines must solve outright.
    assert rows[0]["BMMB solved"] == 1.0
    assert rows[0]["FMMB solved"] == 1.0
    # Crashes only remove delivery paths: survivor solved rate cannot
    # improve as the crash fraction grows.
    assert bmmb_rates == sorted(bmmb_rates, reverse=True)
    report(
        "E-fault BMMB vs FMMB solved-rate/completion (among survivors) "
        "vs crash fraction",
        render_table(rows),
    )
    benchmark.pedantic(
        run,
        args=(bmmb_spec(crash_fault(0.15, horizon=5.0)),),
        kwargs={"keep_raw": False},
        rounds=3,
        iterations=1,
    )


def bench_flap_rate_scaling(benchmark, report):
    rows = []
    for period in (20.0, 8.0, 3.0):
        fault = FaultSpec(
            "flap_periodic", {"fraction": 0.8, "period": period, "duty": 0.5}
        )
        bmmb = sweep_stats(Sweep.seeds(bmmb_spec(fault), SEEDS))
        fmmb = sweep_stats(Sweep.seeds(fmmb_spec(fault), SEEDS))
        # Flapping only promotes grey edges to reliable; it never removes
        # connectivity, so both algorithms must keep solving.
        assert bmmb["solved rate"] == 1.0
        assert fmmb["solved rate"] == 1.0
        rows.append(
            {
                "flap period": period,
                "BMMB completion": bmmb["mean completion"],
                "FMMB completion": fmmb["mean completion"],
            }
        )
    report(
        "E-fault completion (among survivors) vs link-flap period "
        "(smaller period = faster flapping)",
        render_table(rows),
    )
    # Determinism is what makes these numbers reportable: one faulted
    # spec, run twice, must agree exactly.
    probe = fmmb_spec(FaultSpec("flap_periodic", {"fraction": 0.8}), seed=1)
    assert run(probe, keep_raw=False) == run(probe, keep_raw=False)
    benchmark.pedantic(
        run,
        args=(fmmb_spec(FaultSpec("flap_periodic", {"fraction": 0.8})),),
        kwargs={"keep_raw": False},
        rounds=3,
        iterations=1,
    )
