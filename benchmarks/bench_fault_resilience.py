"""E-fault — BMMB vs FMMB under crashes and link flapping.

The paper's guarantees assume fault-free nodes on a static dual graph.
This benchmark measures what its two algorithms actually deliver when the
``repro.faults`` engine relaxes that: node crash fractions scaling from 0
to 0.3, and grey-zone link flapping at increasing rates.

Regeneration: a thin wrapper over the ``fault_resilience`` campaign.
Its declarative checks carry the measured claims — fault-free baselines
solve outright, BMMB's among-survivors solved rate is non-increasing in
the crash fraction, link flapping alone never breaks solvability — and
the zip-axis expansion keeps the replication seeds paired across fault
scales.  Seed-determinism (one faulted spec run twice agrees exactly) is
asserted here directly, since it is what makes the numbers reportable.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.campaigns import (
    build_campaign,
    campaign_summary_rows,
    evaluate_checks,
    results_by_sweep,
    run_campaign,
)
from repro.experiments import run


def bench_fault_resilience(benchmark, report):
    campaign = build_campaign("fault_resilience")
    outcome = run_campaign(campaign, store=None)
    points = results_by_sweep(outcome)
    checks = evaluate_checks(campaign, points)
    failures = [f for check in checks for f in check.failures]
    assert not failures, failures
    report(
        "E-fault BMMB vs FMMB among-survivors solved rate and completion "
        "under crashes and link flapping",
        render_table(campaign_summary_rows(campaign, points)),
    )
    # Determinism is what makes these numbers reportable: one faulted
    # spec, run twice, must agree exactly.
    probe = campaign.sweep("fmmb_flap").expand()[0]
    assert run(probe, keep_raw=False) == run(probe, keep_raw=False)
    representative = campaign.sweep("bmmb_crash").expand()[-1]
    benchmark.pedantic(
        run,
        args=(representative,),
        kwargs={"keep_raw": False},
        rounds=3,
        iterations=1,
    )
