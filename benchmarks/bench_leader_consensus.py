"""E14 — §5 future work: leader election and consensus on the same stack.

The paper's conclusion proposes studying leader election and consensus in
the dual-graph abstract MAC setting.  This bench runs the package's
FloodMax and flood-consensus extensions across topologies and schedulers,
checks their postconditions (max-id leader per component; agreement +
validity), and records completion-time scaling with the diameter.
"""

from __future__ import annotations

from repro import (
    ContentionScheduler,
    RandomSource,
    UniformDelayScheduler,
    WorstCaseAckScheduler,
    line_network,
)
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table
from repro.core.consensus import FloodConsensusNode, consensus_reached
from repro.core.leader import FloodMaxNode, elected_correctly
from repro.runtime.runner import run_protocol

FACK = 20.0
FPROG = 1.0


def run_leader(n: int, scheduler_kind: str, seed: int = 0):
    rng = RandomSource(seed, f"e14-{n}-{scheduler_kind}")
    dual = line_network(n)
    scheduler = {
        "uniform": lambda: UniformDelayScheduler(rng.child("s")),
        "contention": lambda: ContentionScheduler(rng.child("s")),
        "worstcase": lambda: WorstCaseAckScheduler(),
    }[scheduler_kind]()
    run = run_protocol(dual, lambda _: FloodMaxNode(), scheduler, FACK, FPROG)
    assert run.quiesced
    assert elected_correctly(dual, run.automata)
    return dual, run


def bench_leader_election(benchmark, report):
    rows = []
    series = []
    for n in (8, 16, 32, 64):
        dual, run = run_leader(n, "uniform")
        series.append((dual.diameter(), run.end_time))
        rows.append(
            {
                "n": n,
                "D": dual.diameter(),
                "scheduler": "uniform",
                "stabilized at": run.end_time,
                "broadcasts": run.broadcast_count,
            }
        )
    for kind in ("contention", "worstcase"):
        dual, run = run_leader(16, kind)
        rows.append(
            {
                "n": 16,
                "D": dual.diameter(),
                "scheduler": kind,
                "stabilized at": run.end_time,
                "broadcasts": run.broadcast_count,
            }
        )
    fit = linear_fit([x for x, _ in series], [y for _, y in series])
    assert fit.r_squared > 0.9  # stabilization scales with the diameter
    rows.append({"n": "fit", "scheduler": "slope/D", "stabilized at": fit.slope})
    report(
        "E14a Leader election (FloodMax) on the abstract MAC layer",
        render_table(rows),
    )
    benchmark.extra_info["slope_per_hop"] = fit.slope
    benchmark.pedantic(run_leader, args=(32, "uniform"), rounds=3, iterations=1)


def run_consensus(n: int, seed: int = 0):
    rng = RandomSource(seed, f"e14c-{n}")
    dual = line_network(n)
    run = run_protocol(
        dual,
        lambda v: FloodConsensusNode(f"v{v}"),
        UniformDelayScheduler(rng.child("s")),
        FACK,
        FPROG,
    )
    assert run.quiesced
    assert consensus_reached(dual, run.automata)
    return dual, run


def bench_consensus(benchmark, report):
    rows = []
    for n in (6, 12, 24):
        dual, run = run_consensus(n)
        rows.append(
            {
                "n": n,
                "decided": f"v{max(dual.nodes)}",
                "stabilized at": run.end_time,
                "broadcasts": run.broadcast_count,
                "broadcasts = n^2": run.broadcast_count == n * n,
            }
        )
    report(
        "E14b Flood consensus: agreement + validity via n-proposal flooding",
        render_table(rows),
    )
    benchmark.pedantic(run_consensus, args=(12,), rounds=3, iterations=1)
