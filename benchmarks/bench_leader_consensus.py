"""E14 — §5 future work: leader election and consensus on the same stack.

The paper's conclusion proposes studying leader election and consensus in
the dual-graph abstract MAC setting.  This bench runs the package's
FloodMax and flood-consensus extensions across topologies and schedulers,
checks their postconditions (max-id leader per component; agreement +
validity), and records completion-time scaling with the diameter.
"""

from __future__ import annotations

from repro import (
    AlgorithmSpec,
    ExperimentSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    materialize_topology,
    run,
)
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table

FACK = 20.0
FPROG = 1.0


def _protocol_spec(algorithm: str, n: int, scheduler_kind: str, seed: int):
    return ExperimentSpec(
        name=f"e14-{algorithm}-n{n}-{scheduler_kind}",
        topology=TopologySpec("line", {"n": n}),
        algorithm=AlgorithmSpec(algorithm),
        scheduler=SchedulerSpec(scheduler_kind),
        workload=None,
        model=ModelSpec(fack=FACK, fprog=FPROG),
        substrate="protocol",
        seed=seed,
    )


def run_leader(n: int, scheduler_kind: str, seed: int = 0):
    spec = _protocol_spec("flood_max", n, scheduler_kind, seed)
    result = run(spec, keep_raw=False)
    # solved == quiesced + elected_correctly (the registry postcondition).
    assert result.solved
    return materialize_topology(spec), result


def bench_leader_election(benchmark, report):
    rows = []
    series = []
    for n in (8, 16, 32, 64):
        dual, result = run_leader(n, "uniform")
        series.append((dual.diameter(), result.completion_time))
        rows.append(
            {
                "n": n,
                "D": dual.diameter(),
                "scheduler": "uniform",
                "stabilized at": result.completion_time,
                "broadcasts": result.broadcast_count,
            }
        )
    for kind in ("contention", "worstcase"):
        dual, result = run_leader(16, kind)
        rows.append(
            {
                "n": 16,
                "D": dual.diameter(),
                "scheduler": kind,
                "stabilized at": result.completion_time,
                "broadcasts": result.broadcast_count,
            }
        )
    fit = linear_fit([x for x, _ in series], [y for _, y in series])
    assert fit.r_squared > 0.9  # stabilization scales with the diameter
    rows.append({"n": "fit", "scheduler": "slope/D", "stabilized at": fit.slope})
    report(
        "E14a Leader election (FloodMax) on the abstract MAC layer",
        render_table(rows),
    )
    benchmark.extra_info["slope_per_hop"] = fit.slope
    benchmark.pedantic(run_leader, args=(32, "uniform"), rounds=3, iterations=1)


def run_consensus(n: int, seed: int = 0):
    spec = _protocol_spec("flood_consensus", n, "uniform", seed)
    result = run(spec, keep_raw=False)
    # solved == quiesced + consensus_reached (the registry postcondition).
    assert result.solved
    return materialize_topology(spec), result


def bench_consensus(benchmark, report):
    rows = []
    for n in (6, 12, 24):
        dual, result = run_consensus(n)
        rows.append(
            {
                "n": n,
                "decided": f"v{max(dual.nodes)}",
                "stabilized at": result.completion_time,
                "broadcasts": result.broadcast_count,
                "broadcasts = n^2": result.broadcast_count == n * n,
            }
        )
    report(
        "E14b Flood consensus: agreement + validity via n-proposal flooding",
        render_table(rows),
    )
    benchmark.pedantic(run_consensus, args=(12,), rounds=3, iterations=1)
