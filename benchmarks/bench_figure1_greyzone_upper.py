"""E3 — Figure 1, cell (Standard model, grey zone / arbitrary G'), upper half.

Claim (Theorem 3.1): BMMB solves MMB within ``(D + k)·Fack`` for *any*
``G'`` — in particular for grey-zone networks — under every admissible
scheduler.

Regeneration: sweep D and k on grey-zone random geometric networks with the
worst-case-acknowledgment scheduler (the slowest benign regime) and verify
the ``(D + k)·Fack`` envelope always holds.
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    RandomSource,
    WorstCaseAckScheduler,
    bmmb_arbitrary_bound,
    random_geometric_network,
    run_standard,
)
from repro.analysis.tables import render_table
from repro.ids import MessageAssignment

FACK = 20.0
FPROG = 1.0


def run_grey(n: int, side: float, k: int, seed: int = 0):
    rng = RandomSource(seed, f"e3-{n}-{k}")
    dual = random_geometric_network(
        n, side=side, c=1.6, grey_edge_probability=0.4, rng=rng.child("topo")
    )
    assignment = MessageAssignment.one_each(dual.nodes[:k])
    result = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        WorstCaseAckScheduler(rng.child("sched"), p_unreliable=0.5),
        FACK,
        FPROG,
        keep_instances=False,
    )
    return dual, result


def bench_greyzone_upper(benchmark, report):
    rows = []
    for n, side, k in ((30, 2.5, 2), (30, 2.5, 8), (60, 3.5, 4), (90, 4.5, 4)):
        dual, result = run_grey(n, side, k)
        d = dual.diameter()
        bound = bmmb_arbitrary_bound(d, k, FACK)
        assert result.solved
        assert result.completion_time <= bound + 1e-9
        rows.append(
            {
                "n": n,
                "D": d,
                "k": k,
                "|E'\\E|": dual.unreliable_edge_count,
                "measured": result.completion_time,
                "(D+k)*Fack": bound,
                "ratio": result.completion_time / bound,
            }
        )
    report(
        "E3 Figure 1 (Standard, grey zone) upper: BMMB <= (D+k)*Fack (Thm 3.1)",
        render_table(rows),
    )
    benchmark.pedantic(run_grey, args=(60, 3.5, 4), rounds=3, iterations=1)
