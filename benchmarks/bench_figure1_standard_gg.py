"""E1 — Figure 1, cell (Standard model, G' = G).

Claim: BMMB solves MMB in ``O(D·Fprog + k·Fack)`` when there are no
unreliable links [30]; the explicit Theorem 3.16 constant (r = 1) is
``t1 = (D + 2k − 2)·Fprog + (k − 1)·Fack``.

Regeneration: this is now a thin wrapper over the ``figure1`` campaign
(``python -m repro campaign run figure1``) — the sweep grid, the t1 bound
validation, and the Fprog-vs-Fack slope claims all live in the campaign's
declarative checks; the benchmark just executes the campaign in-memory,
asserts its checks pass, and reports the aggregated table.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.campaigns import (
    build_campaign,
    campaign_summary_rows,
    evaluate_checks,
    results_by_sweep,
    run_campaign,
)
from repro.experiments import run


def bench_standard_gg_scaling(benchmark, report):
    campaign = build_campaign("figure1")
    outcome = run_campaign(campaign, store=None)
    points = results_by_sweep(outcome)
    checks = evaluate_checks(campaign, points)
    failures = [f for check in checks for f in check.failures]
    assert not failures, failures
    report(
        "E1 Figure 1 (Standard, G'=G): BMMB = O(D*Fprog + k*Fack)",
        render_table(campaign_summary_rows(campaign, points)),
    )
    representative = campaign.sweep("d_scaling").expand()[-1]
    benchmark.pedantic(
        run,
        args=(representative,),
        kwargs={"keep_raw": False},
        rounds=3,
        iterations=1,
    )
