"""E1 — Figure 1, cell (Standard model, G' = G).

Claim: BMMB solves MMB in ``O(D·Fprog + k·Fack)`` when there are no
unreliable links [30]; the explicit Theorem 3.16 constant (r = 1) is
``t1 = (D + 2k − 2)·Fprog + (k − 1)·Fack``.

Regeneration: sweep the diameter (k fixed) and the message count (D fixed)
on reliable lines under worst-case acknowledgments (the regime the bound's
``k·Fack`` term addresses), verify every run meets the bound, and fit the
scaling: time vs D must have ``Fprog``-scale slope, time vs k must have
``Fack``-scale slope.  A contention-scheduler row shows the friendly-MAC
case is faster still.
"""

from __future__ import annotations

from repro import (
    ExperimentSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
    bmmb_gg_bound,
    run,
)
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table

FACK = 20.0
FPROG = 1.0


def run_line(n: int, k: int, scheduler_kind: str = "worstcase", seed: int = 0):
    spec = ExperimentSpec(
        name=f"e1-line-{n}-k{k}",
        topology=TopologySpec("line", {"n": n}),
        workload=WorkloadSpec("single_source", {"node": 0, "count": k}),
        scheduler=SchedulerSpec(scheduler_kind),
        model=ModelSpec(fack=FACK, fprog=FPROG),
        seed=seed,
    )
    return run(spec, keep_raw=False)


def bench_standard_gg_scaling(benchmark, report):
    rows = []
    d_series: list[tuple[float, float]] = []
    for n in (11, 21, 41, 61):
        result = run_line(n, k=2)
        bound = bmmb_gg_bound(n - 1, 2, FACK, FPROG)
        assert result.solved
        assert result.completion_time <= bound + 1e-9
        d_series.append((n - 1, result.completion_time))
        rows.append(
            {
                "sweep": "D",
                "D": n - 1,
                "k": 2,
                "measured": result.completion_time,
                "bound t1": bound,
                "ratio": result.completion_time / bound,
            }
        )
    k_series: list[tuple[float, float]] = []
    for k in (1, 4, 8, 16):
        result = run_line(21, k=k)
        bound = bmmb_gg_bound(20, k, FACK, FPROG)
        assert result.solved
        assert result.completion_time <= bound + 1e-9
        k_series.append((k, result.completion_time))
        rows.append(
            {
                "sweep": "k",
                "D": 20,
                "k": k,
                "measured": result.completion_time,
                "bound t1": bound,
                "ratio": result.completion_time / bound,
            }
        )
    # Friendly-MAC reference point: same workload, contention scheduler.
    friendly = run_line(21, k=8, scheduler_kind="contention")
    rows.append(
        {
            "sweep": "contention",
            "D": 20,
            "k": 8,
            "measured": friendly.completion_time,
            "bound t1": bmmb_gg_bound(20, 8, FACK, FPROG),
            "ratio": friendly.completion_time / bmmb_gg_bound(20, 8, FACK, FPROG),
        }
    )

    d_fit = linear_fit([x for x, _ in d_series], [y for _, y in d_series])
    k_fit = linear_fit([x for x, _ in k_series], [y for _, y in k_series])
    # D-scaling rides on Fprog (slope ≪ Fack); k-scaling rides on Fack.
    assert d_fit.r_squared > 0.95
    assert d_fit.slope < FACK / 2
    assert k_fit.r_squared > 0.95
    assert k_fit.slope > FACK / 2
    rows.append({"sweep": "fit", "D": "slope/D", "measured": d_fit.slope})
    rows.append({"sweep": "fit", "D": "slope/k", "measured": k_fit.slope})
    report(
        "E1 Figure 1 (Standard, G'=G): BMMB = O(D*Fprog + k*Fack)",
        render_table(rows),
    )
    benchmark.extra_info["d_slope"] = d_fit.slope
    benchmark.extra_info["k_slope"] = k_fit.slope
    benchmark.pedantic(run_line, args=(41, 8), rounds=3, iterations=1)
