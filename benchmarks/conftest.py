"""Benchmark-harness plumbing.

Each benchmark regenerates one experiment from the paper (see DESIGN.md's
per-experiment index): it sweeps the experiment's parameters in simulation,
assembles a paper-style table comparing measured values against the paper's
bound, registers the table for the terminal summary, and hands one
representative configuration to pytest-benchmark for wall-time tracking.

The tables are what the harness is *for* — the pass/fail assertions inside
each bench check the paper's claims (who wins, what scales with what), and
the tables record the numbers behind EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture
def report():
    """Register a (title, table) pair for the end-of-run summary."""

    def _register(title: str, table: str) -> None:
        _REPORTS.append((title, table))

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper-reproduction tables")
    for title, table in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
