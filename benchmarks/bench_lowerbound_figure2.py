"""E4 — Figure 2 + Theorem 3.17/Lemma 3.20: the ``Ω(D·Fack)`` lower bound.

Claim: on the two-parallel-lines network with grey-zone ``G'``, an
adversarial message scheduler can legally delay any MMB algorithm for
``Ω(D·Fack)`` by starving the message frontier while satisfying the
progress bound via long unreliable edges.

Regeneration: a thin wrapper over the ``figure2_lowerbound`` campaign —
the depth ladder, the ``(D−1)·Fack`` floor, the exact per-hop ``Fack``
slope, and the benign-scheduler contrast live in its checks; this
benchmark additionally keeps the five-axiom certificate on the smallest
depth (the campaign's spec-level runs discard per-instance logs).
"""

from __future__ import annotations

from repro import check_axioms
from repro.analysis.tables import render_table
from repro.campaigns import (
    build_campaign,
    campaign_summary_rows,
    evaluate_checks,
    results_by_sweep,
    run_campaign,
)
from repro.experiments import materialize_topology, run

FACK = 20.0
FPROG = 1.0


def bench_lowerbound_figure2(benchmark, report):
    campaign = build_campaign("figure2_lowerbound")
    outcome = run_campaign(campaign, store=None)
    points = results_by_sweep(outcome)
    checks = evaluate_checks(campaign, points)
    failures = [f for check in checks for f in check.failures]
    assert not failures, failures
    # Axiom-certify the smallest adversarial execution (raw instances).
    smallest = campaign.sweep("adversarial").expand()[0]
    certified = run(smallest, keep_raw=True)
    cert = check_axioms(
        certified.raw.instances, materialize_topology(smallest), FACK, FPROG
    )
    assert cert.ok, cert.violations[:3]
    report(
        "E4 Figure 2 lower bound: adversary forces (D-1)*Fack (axiom-certified)",
        render_table(campaign_summary_rows(campaign, points)),
    )
    representative = campaign.sweep("adversarial").expand()[-1]
    benchmark.pedantic(
        run,
        args=(representative,),
        kwargs={"keep_raw": False},
        rounds=3,
        iterations=1,
    )
