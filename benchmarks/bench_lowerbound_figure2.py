"""E4 — Figure 2 + Theorem 3.17/Lemma 3.20: the ``Ω(D·Fack)`` lower bound.

Claim: on the two-parallel-lines network with grey-zone ``G'``, an
adversarial message scheduler can legally delay any MMB algorithm for
``Ω(D·Fack)`` by starving the message frontier while satisfying the
progress bound via long unreliable edges.

Regeneration: run BMMB against the proof's scheduler across depths; the
measured completion equals the ``(D−1)·Fack`` floor exactly, the execution
is certified against all five MAC axioms, and a benign scheduler on the
*same network* finishes an order of magnitude faster (the gap is the
scheduler's doing, not the topology's).
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    GreyZoneAdversary,
    RandomSource,
    UniformDelayScheduler,
    check_axioms,
    figure2_lower_bound,
    run_standard,
)
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table
from repro.topology.adversarial import parallel_lines_network

FACK = 20.0
FPROG = 1.0


def run_adversarial(depth: int, keep_instances: bool = False):
    net = parallel_lines_network(depth)
    return net, run_standard(
        net.dual,
        net.assignment,
        lambda _: BMMBNode(),
        GreyZoneAdversary(net),
        FACK,
        FPROG,
        keep_instances=keep_instances,
    )


def bench_lowerbound_figure2(benchmark, report):
    rows = []
    series: list[tuple[float, float]] = []
    for depth in (10, 20, 40, 80):
        net, adv = run_adversarial(depth, keep_instances=(depth == 10))
        floor = figure2_lower_bound(depth, FACK)
        assert adv.solved
        assert adv.completion_time >= floor - 1e-9
        if depth == 10:
            cert = check_axioms(adv.instances, net.dual, FACK, FPROG)
            assert cert.ok, cert.violations[:3]
        rng = RandomSource(depth, "benign")
        benign = run_standard(
            net.dual,
            net.assignment,
            lambda _: BMMBNode(),
            UniformDelayScheduler(rng),
            FACK,
            FPROG,
            keep_instances=False,
        )
        series.append((depth, adv.completion_time))
        rows.append(
            {
                "D": depth,
                "adversarial": adv.completion_time,
                "floor (D-1)*Fack": floor,
                "benign": benign.completion_time,
                "slowdown": adv.completion_time / benign.completion_time,
            }
        )
    fit = linear_fit([x for x, _ in series], [y for _, y in series])
    assert fit.r_squared > 0.999
    assert abs(fit.slope - FACK) < 0.5  # one Fack per hop, exactly
    rows.append({"D": "fit", "adversarial": fit.slope, "floor (D-1)*Fack": "slope"})
    report(
        "E4 Figure 2 lower bound: adversary forces (D-1)*Fack (axiom-certified)",
        render_table(rows),
    )
    benchmark.extra_info["slope_vs_fack"] = fit.slope / FACK
    benchmark.pedantic(run_adversarial, args=(40,), rounds=3, iterations=1)
