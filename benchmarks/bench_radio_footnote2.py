"""E13 — footnote 2 from below: the decay MAC's emergent Fprog ≪ Fack.

Claim (footnote 2): decay-style back-off gives ``Fprog`` polylogarithmic in
the maximum contention while ``Fack`` is linear (or worse) in it; the star
network makes the gap concrete.

Regeneration: run BMMB **over the implemented radio MAC** (slotted
collision radio + decay schedules) on stars of growing size; extract each
execution's *empirical* ``Fack``/``Fprog`` (the smallest constants for
which the execution satisfies the abstract-MAC timing axioms) and show the
ratio growing roughly linearly with contention.
"""

from __future__ import annotations

from repro import (
    AlgorithmSpec,
    ExperimentSpec,
    ModelSpec,
    TopologySpec,
    WorkloadSpec,
    run,
)
from repro.analysis.fitting import linear_fit
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table

SEEDS = range(3)


def run_radio_star(n: int, seed: int):
    spec = ExperimentSpec(
        name=f"e13-star-{n}",
        topology=TopologySpec("star", {"n": n}),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"nodes": list(range(1, n))}),
        model=ModelSpec(params={"max_slots": 500_000}),
        substrate="radio",
        seed=seed,
    )
    result = run(spec, keep_raw=False)
    assert result.solved
    return result.metrics


def bench_radio_footnote2(benchmark, report):
    rows = []
    fack_series = []
    fprog_series = []
    for n in (6, 12, 24, 48):
        bounds = [run_radio_star(n, seed) for seed in SEEDS]
        fack = summarize([b["empirical_fack"] for b in bounds])
        fprog = summarize([b["empirical_fprog"] for b in bounds])
        assert all(b["delivery_success_rate"] == 1.0 for b in bounds)
        fack_series.append((n, fack.mean))
        fprog_series.append((n, fprog.mean))
        rows.append(
            {
                "star n": n,
                "empirical Fack (slots)": fack.mean,
                "empirical Fprog (slots)": fprog.mean,
                "Fack/Fprog": fack.mean / max(fprog.mean, 1e-9),
            }
        )
    fack_fit = linear_fit([x for x, _ in fack_series], [y for _, y in fack_series])
    # Fack grows strongly with contention; Fprog grows far slower.
    fack_growth = fack_series[-1][1] / fack_series[0][1]
    fprog_growth = fprog_series[-1][1] / max(fprog_series[0][1], 1e-9)
    assert fack_growth > 4.0
    assert fprog_growth < fack_growth / 2.0
    rows.append(
        {
            "star n": "growth 6->48",
            "empirical Fack (slots)": fack_growth,
            "empirical Fprog (slots)": fprog_growth,
        }
    )
    report(
        "E13 Footnote 2 from below: decay-over-radio yields Fprog ~ polylog, "
        "Fack ~ linear in contention",
        render_table(rows),
    )
    benchmark.extra_info["fack_slope"] = fack_fit.slope
    benchmark.pedantic(run_radio_star, args=(24, 0), rounds=3, iterations=1)
