"""E13 — footnote 2 from below: the decay MAC's emergent Fprog ≪ Fack.

Claim (footnote 2): decay-style back-off gives ``Fprog`` polylogarithmic in
the maximum contention while ``Fack`` is linear (or worse) in it; the star
network makes the gap concrete.

Regeneration: a thin wrapper over the ``radio_footnote2`` campaign —
BMMB runs **over the implemented radio MAC** on stars of growing size,
each execution's *empirical* ``Fack``/``Fprog`` is extracted (the
smallest constants satisfying the abstract-MAC timing axioms), and the
campaign's ``growth_gap`` check enforces the linear-vs-polylog split.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.campaigns import (
    build_campaign,
    campaign_summary_rows,
    evaluate_checks,
    results_by_sweep,
    run_campaign,
)
from repro.experiments import run


def bench_radio_footnote2(benchmark, report):
    campaign = build_campaign("radio_footnote2")
    outcome = run_campaign(campaign, store=None)
    points = results_by_sweep(outcome)
    checks = evaluate_checks(campaign, points)
    failures = [f for check in checks for f in check.failures]
    assert not failures, failures
    assert all(
        p.result.metrics["delivery_success_rate"] == 1.0
        for p in points["stars"]
    )
    report(
        "E13 Footnote 2 from below: decay-over-radio yields Fprog ~ polylog, "
        "Fack ~ linear in contention",
        render_table(campaign_summary_rows(campaign, points)),
    )
    # Representative point: the n=24 star, one seed.
    specs = campaign.sweep("stars").expand()
    representative = next(
        s for s in specs if s.topology.params["n"] == 24
    )
    benchmark.pedantic(
        run,
        args=(representative,),
        kwargs={"keep_raw": False},
        rounds=3,
        iterations=1,
    )
