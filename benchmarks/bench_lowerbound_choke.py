"""E5 — Lemma 3.18: the ``Ω(k·Fack)`` choke-point lower bound.

Claim: with a singleton assignment of ``k`` messages behind a single
reliable edge, any algorithm needs ``Ω(k·Fack)`` — the bridge node can push
only a constant number of messages per ``Fack``.

Regeneration: run BMMB on the choke-star gadget with the
full-``Fack``-acknowledgment adversary across ``k``; measured completion
tracks ``(k−1)·Fack`` with slope ``Fack`` per message, and the combined
choke+lines network realizes ``max(D−1, k−2)·Fack ≥ Ω((D+k)·Fack)``.
"""

from __future__ import annotations

from repro import (
    BMMBNode,
    ChokeAdversary,
    CombinedAdversary,
    check_axioms,
    choke_lower_bound,
    run_standard,
)
from repro.analysis.bounds import combined_lower_bound
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table
from repro.topology.adversarial import (
    choke_star_network,
    combined_lower_bound_network,
)

FACK = 20.0
FPROG = 1.0


def run_choke(k: int, keep_instances: bool = False):
    net = choke_star_network(k)
    return net, run_standard(
        net.dual,
        net.assignment,
        lambda _: BMMBNode(),
        ChokeAdversary(),
        FACK,
        FPROG,
        keep_instances=keep_instances,
    )


def bench_lowerbound_choke(benchmark, report):
    rows = []
    series = []
    for k in (8, 16, 32, 64):
        net, result = run_choke(k, keep_instances=(k == 8))
        floor = choke_lower_bound(k, FACK)
        assert result.solved
        assert result.completion_time >= floor - 1e-9
        if k == 8:
            cert = check_axioms(result.instances, net.dual, FACK, FPROG)
            assert cert.ok, cert.violations[:3]
        series.append((k, result.completion_time))
        rows.append(
            {
                "k": k,
                "measured": result.completion_time,
                "floor (k-1)*Fack": floor,
                "ratio": result.completion_time / floor,
            }
        )
    fit = linear_fit([x for x, _ in series], [y for _, y in series])
    assert fit.r_squared > 0.999
    assert abs(fit.slope - FACK) < 1.0  # one Fack per message through the choke

    # The Theorem 3.17 composition.
    comb_rows = []
    for depth, k in ((10, 10), (20, 10), (10, 20)):
        net = combined_lower_bound_network(depth, k)
        result = run_standard(
            net.dual,
            net.assignment,
            lambda _: BMMBNode(),
            CombinedAdversary(net),
            FACK,
            FPROG,
            keep_instances=False,
        )
        floor = combined_lower_bound(depth, k, FACK)
        assert result.solved
        assert result.completion_time >= floor - 1e-9
        comb_rows.append(
            {
                "D": depth,
                "k": k,
                "measured": result.completion_time,
                "floor max(D-1,k-2)*Fack": floor,
            }
        )
    report(
        "E5 Lemma 3.18 choke point: Omega(k*Fack)",
        render_table(rows),
    )
    report(
        "E5b Theorem 3.17 composition: Omega((D+k)*Fack) via max(D,k)",
        render_table(comb_rows),
    )
    benchmark.extra_info["slope_vs_fack"] = fit.slope / FACK
    benchmark.pedantic(run_choke, args=(32,), rounds=3, iterations=1)
