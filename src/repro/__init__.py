"""repro — reproduction of *Multi-Message Broadcast with Abstract MAC
Layers and Unreliable Links* (Ghaffari, Kantor, Lynch, Newport; PODC 2014).

The package implements the paper's model and algorithms end to end:

* a discrete-event simulation kernel (:mod:`repro.sim`),
* dual-graph topologies with reliable and unreliable links
  (:mod:`repro.topology`), including the paper's lower-bound networks,
* the standard and enhanced abstract MAC layers with pluggable message
  schedulers — benign, contention-driven, and the paper's lower-bound
  adversaries — plus an axiom checker that certifies executions against
  the model (:mod:`repro.mac`),
* the BMMB and FMMB algorithms and baselines (:mod:`repro.core`),
* an experiment runtime and analysis helpers
  (:mod:`repro.runtime`, :mod:`repro.analysis`),
* a declarative experiment API — specs, registries, one ``run``
  dispatcher, and a process-parallel sweep engine
  (:mod:`repro.experiments`),
* resumable reproduction campaigns — sharded, checkpointed sweeps with
  figure/report generation that regenerate the paper's result set
  (:mod:`repro.campaigns`; CLI ``python -m repro campaign``).

Quickstart::

    from repro import (
        ExperimentSpec, ModelSpec, SchedulerSpec, TopologySpec,
        WorkloadSpec, run,
    )

    spec = ExperimentSpec(
        topology=TopologySpec("random_geometric", {
            "n": 40, "side": 3.0, "c": 1.6, "grey_edge_probability": 0.4,
        }),
        workload=WorkloadSpec("single_source", {"count": 4}),
        scheduler=SchedulerSpec("contention"),
        model=ModelSpec(fack=20.0, fprog=1.0),
        seed=7,
    )
    result = run(spec)
    print(result.solved, result.completion_time)

Specs are frozen and JSON-round-trippable (``ExperimentSpec.from_json(
spec.to_json()) == spec``), every random stream derives from ``spec.seed``,
and ``run_sweep(Sweep.grid(spec, axes), workers=N)`` fans a parameter grid
out over processes.  ``list_topologies()`` / ``list_schedulers()`` /
``list_algorithms()`` enumerate what a spec can name; the imperative
entry points (:func:`run_standard`, :func:`run_protocol`,
:func:`repro.core.fmmb.run_fmmb`) remain available underneath.
"""

from repro.version import __version__
from repro.errors import (
    AlgorithmError,
    AxiomViolation,
    ExperimentError,
    MACError,
    ReproError,
    SchedulerError,
    SimulationError,
    TopologyError,
    WellFormednessError,
)
from repro.ids import Message, MessageAssignment
from repro.sim import RandomSource, Simulator
from repro.topology import (
    DualGraph,
    choke_star_network,
    combined_lower_bound_network,
    grid_network,
    grey_zone_network,
    line_network,
    parallel_lines_network,
    random_geometric_network,
    reliable_only,
    ring_network,
    star_network,
    tree_network,
    with_arbitrary_unreliable,
    with_r_restricted_unreliable,
)
from repro.mac import (
    EnhancedMACLayer,
    StandardMACLayer,
    check_axioms,
)
from repro.mac.axioms import assert_axioms
from repro.mac.rounds import (
    AdversarialRoundScheduler,
    RandomRoundScheduler,
    SlottedRoundEngine,
)
from repro.mac.schedulers import (
    ChokeAdversary,
    CombinedAdversary,
    ContentionScheduler,
    GreyZoneAdversary,
    UniformDelayScheduler,
    WorstCaseAckScheduler,
)
from repro.core import BMMBNode, SequentialFloodingCoordinator
from repro.core.baselines import RedundantFloodingNode
from repro.core.consensus import FloodConsensusNode, consensus_reached
from repro.core.fmmb import FMMBConfig, run_fmmb
from repro.core.leader import FloodMaxNode, elected_correctly
from repro.core.problem import Arrival, ArrivalSchedule
from repro.core.structuring import build_cds, cds_broadcast_schedule, validate_cds
from repro.radio import RadioMACLayer, SINRRadioNetwork, SlottedRadioNetwork
from repro.runtime import Observation, Probe, RunResult, run_standard
from repro.runtime.runner import ProtocolRun, run_protocol
from repro.analysis import (
    bmmb_arbitrary_bound,
    bmmb_gg_bound,
    bmmb_r_restricted_bound,
    choke_lower_bound,
    figure2_lower_bound,
    fmmb_bound_time,
)
from repro.experiments import (
    AlgorithmSpec,
    ExperimentResult,
    ExperimentSpec,
    FaultSpec,
    ModelSpec,
    SchedulerSpec,
    Substrate,
    SubstrateBase,
    Sweep,
    SweepResult,
    TopologySpec,
    WorkloadSpec,
    list_algorithms,
    list_faults,
    list_macs,
    list_schedulers,
    list_substrates,
    list_topologies,
    list_workloads,
    materialize_topology,
    register_algorithm,
    register_fault,
    register_mac,
    register_scheduler,
    register_substrate,
    register_topology,
    register_workload,
    run,
    run_sweep,
)
from repro.campaigns import (
    CampaignSpec,
    ResultStore,
    build_campaign,
    list_campaigns,
    register_campaign,
    run_campaign,
    verify_campaign,
    write_artifacts,
)
from repro.faults import (
    FaultEngine,
    FaultEvent,
    FaultKind,
    FaultPlan,
    survivor_outcome,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SimulationError",
    "TopologyError",
    "MACError",
    "WellFormednessError",
    "AxiomViolation",
    "SchedulerError",
    "AlgorithmError",
    "ExperimentError",
    # primitives
    "Message",
    "MessageAssignment",
    "RandomSource",
    "Simulator",
    # topology
    "DualGraph",
    "line_network",
    "ring_network",
    "star_network",
    "grid_network",
    "tree_network",
    "reliable_only",
    "with_arbitrary_unreliable",
    "with_r_restricted_unreliable",
    "grey_zone_network",
    "random_geometric_network",
    "parallel_lines_network",
    "choke_star_network",
    "combined_lower_bound_network",
    # MAC
    "StandardMACLayer",
    "EnhancedMACLayer",
    "check_axioms",
    "assert_axioms",
    "UniformDelayScheduler",
    "ContentionScheduler",
    "WorstCaseAckScheduler",
    "ChokeAdversary",
    "GreyZoneAdversary",
    "CombinedAdversary",
    "RandomRoundScheduler",
    "AdversarialRoundScheduler",
    "SlottedRoundEngine",
    # algorithms
    "BMMBNode",
    "SequentialFloodingCoordinator",
    "RedundantFloodingNode",
    "FMMBConfig",
    "run_fmmb",
    # extensions (paper §5 future work, footnotes 2 and 4)
    "FloodMaxNode",
    "elected_correctly",
    "FloodConsensusNode",
    "consensus_reached",
    "Arrival",
    "ArrivalSchedule",
    "build_cds",
    "validate_cds",
    "cds_broadcast_schedule",
    "RadioMACLayer",
    "SlottedRadioNetwork",
    "SINRRadioNetwork",
    # runtime & analysis
    "RunResult",
    "run_standard",
    "Observation",
    "Probe",
    "ProtocolRun",
    "run_protocol",
    "bmmb_gg_bound",
    "bmmb_r_restricted_bound",
    "bmmb_arbitrary_bound",
    "figure2_lower_bound",
    "choke_lower_bound",
    "fmmb_bound_time",
    # declarative experiment API
    "ExperimentSpec",
    "TopologySpec",
    "SchedulerSpec",
    "AlgorithmSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ModelSpec",
    "ExperimentResult",
    "run",
    "run_sweep",
    "Sweep",
    "SweepResult",
    "materialize_topology",
    "list_topologies",
    "list_schedulers",
    "list_algorithms",
    "list_macs",
    "list_workloads",
    "list_faults",
    "list_substrates",
    "register_topology",
    "register_scheduler",
    "register_algorithm",
    "register_mac",
    "register_workload",
    "register_fault",
    "register_substrate",
    "Substrate",
    "SubstrateBase",
    # fault & dynamics injection
    "FaultEngine",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "survivor_outcome",
    # reproduction campaigns
    "CampaignSpec",
    "ResultStore",
    "build_campaign",
    "list_campaigns",
    "register_campaign",
    "run_campaign",
    "verify_campaign",
    "write_artifacts",
]
