"""Version information for the ``repro`` package."""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER = (
    "Ghaffari, Kantor, Lynch, Newport. "
    "Multi-Message Broadcast with Abstract MAC Layers and Unreliable Links. "
    "PODC 2014 (arXiv:1405.1671)."
)
