"""Command-line interface: explore the paper's experiments from a shell.

Subcommands:

* ``info`` — generate a topology and print its summary.
* ``bmmb`` — run BMMB on a generated topology with a chosen scheduler and
  print completion vs the paper's bound.
* ``fmmb`` — run FMMB on a grey-zone network and print per-subroutine
  round counts vs the Theorem 4.1 budget.
* ``lowerbound`` — run the Figure 2 adversary (or the Lemma 3.18 choke)
  and print the measured floor plus the axiom certificate.
* ``radio`` — run BMMB over the decay-backed radio MAC on a star and print
  the realized (empirical) ``Fack``/``Fprog`` gap.

All subcommands accept ``--seed`` and print plain tables; exit status 0
means the run solved/validated.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.bounds import (
    bmmb_arbitrary_bound,
    choke_lower_bound,
    figure2_lower_bound,
    fmmb_bound_rounds,
)
from repro.analysis.tables import render_table
from repro.core.bmmb import BMMBNode
from repro.core.fmmb import run_fmmb
from repro.ids import MessageAssignment
from repro.mac.axioms import check_axioms
from repro.mac.schedulers import (
    ChokeAdversary,
    ContentionScheduler,
    GreyZoneAdversary,
    UniformDelayScheduler,
    WorstCaseAckScheduler,
)
from repro.radio import RadioMACLayer
from repro.runtime.runner import run_standard
from repro.sim.rng import RandomSource
from repro.topology import random_geometric_network
from repro.topology.adversarial import choke_star_network, parallel_lines_network
from repro.topology.metrics import summarize


def _make_network(args: argparse.Namespace):
    rng = RandomSource(args.seed, "cli")
    return random_geometric_network(
        args.n,
        side=args.side,
        c=args.c,
        grey_edge_probability=args.grey_probability,
        rng=rng.child("net"),
    )


def _make_scheduler(name: str, rng: RandomSource):
    if name == "uniform":
        return UniformDelayScheduler(rng, p_unreliable=0.5)
    if name == "contention":
        return ContentionScheduler(rng)
    if name == "worstcase":
        return WorstCaseAckScheduler(rng, p_unreliable=0.5)
    raise ValueError(f"unknown scheduler {name!r}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    dual = _make_network(args)
    print(render_table([summarize(dual).as_dict()], title="topology summary"))
    return 0


def cmd_bmmb(args: argparse.Namespace) -> int:
    dual = _make_network(args)
    rng = RandomSource(args.seed, "cli-bmmb")
    assignment = MessageAssignment.one_each(dual.nodes[: args.k])
    result = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        _make_scheduler(args.scheduler, rng.child("sched")),
        args.fack,
        args.fprog,
        keep_instances=False,
    )
    bound = bmmb_arbitrary_bound(dual.diameter(), args.k, args.fack)
    print(render_table(
        [
            {
                "solved": result.solved,
                "completion": result.completion_time,
                "(D+k)*Fack bound": bound,
                "broadcasts": result.broadcast_count,
            }
        ],
        title=f"BMMB on n={dual.n} grey-zone network, k={args.k}, "
              f"scheduler={args.scheduler}",
    ))
    return 0 if result.solved else 1


def cmd_fmmb(args: argparse.Namespace) -> int:
    dual = _make_network(args)
    assignment = MessageAssignment.one_each(dual.nodes[: args.k])
    result = run_fmmb(dual, assignment, fprog=args.fprog, seed=args.seed)
    budget = fmmb_bound_rounds(dual.diameter(), args.k, dual.n, c=args.c)
    print(render_table(
        [
            {
                "solved": result.solved,
                "MIS valid": result.mis_valid,
                "rounds MIS": result.mis_result.rounds_used,
                "rounds gather": result.gather_result.rounds_used,
                "rounds spread": result.spread_result.rounds_used,
                "rounds total": result.total_rounds,
                "budget": round(budget),
            }
        ],
        title=f"FMMB on n={dual.n} grey-zone network, k={args.k}",
    ))
    return 0 if result.solved else 1


def cmd_lowerbound(args: argparse.Namespace) -> int:
    if args.gadget == "figure2":
        net = parallel_lines_network(args.depth)
        scheduler = GreyZoneAdversary(net)
        floor = figure2_lower_bound(args.depth, args.fack)
        dual, assignment = net.dual, net.assignment
        title = f"Figure 2 adversary, D={args.depth}"
    else:
        choke = choke_star_network(args.k)
        scheduler = ChokeAdversary()
        floor = choke_lower_bound(args.k, args.fack)
        dual, assignment = choke.dual, choke.assignment
        title = f"Lemma 3.18 choke, k={args.k}"
    result = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        scheduler,
        args.fack,
        args.fprog,
    )
    report = check_axioms(result.instances, dual, args.fack, args.fprog)
    print(render_table(
        [
            {
                "solved": result.solved,
                "completion": result.completion_time,
                "floor": floor,
                "axiom-clean": report.ok,
            }
        ],
        title=title,
    ))
    return 0 if (result.solved and report.ok) else 1


def cmd_radio(args: argparse.Namespace) -> int:
    from repro.topology import star_network

    dual = star_network(args.n)
    layer = RadioMACLayer(dual, RandomSource(args.seed, "cli-radio"))
    for v in dual.nodes:
        layer.register(v, BMMBNode())
    assignment = MessageAssignment.one_each(list(range(1, args.n)))
    for node, msgs in sorted(assignment.messages.items()):
        for m in msgs:
            layer.inject_arrival(node, m)
    slots = layer.run(max_slots=args.max_slots)
    bounds = layer.empirical_bounds()
    solved = all(
        (v, m.mid) in layer.deliveries
        for v in dual.nodes
        for m in assignment.all_messages()
    )
    print(render_table(
        [
            {
                "solved": solved,
                "slots": slots,
                "empirical Fack": bounds.fack,
                "empirical Fprog": bounds.fprog,
                "Fack/Fprog": bounds.fack / max(bounds.fprog, 1e-9),
                "delivery rate": bounds.delivery_success_rate,
            }
        ],
        title=f"BMMB over decay radio MAC, star n={args.n} (footnote 2)",
    ))
    return 0 if solved else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_network_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=40, help="node count")
    parser.add_argument("--side", type=float, default=3.0, help="box side length")
    parser.add_argument("--c", type=float, default=1.6, help="grey-zone constant")
    parser.add_argument(
        "--grey-probability",
        type=float,
        default=0.4,
        help="probability of each grey-band G' edge",
    )


def _add_model_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fack", type=float, default=20.0, help="Fack bound")
    parser.add_argument("--fprog", type=float, default=1.0, help="Fprog bound")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multi-Message Broadcast with Abstract "
        "MAC Layers and Unreliable Links' (PODC 2014)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print a generated topology summary")
    _add_network_options(p_info)
    p_info.set_defaults(func=cmd_info)

    p_bmmb = sub.add_parser("bmmb", help="run BMMB on a grey-zone network")
    _add_network_options(p_bmmb)
    _add_model_options(p_bmmb)
    p_bmmb.add_argument("--k", type=int, default=4, help="message count")
    p_bmmb.add_argument(
        "--scheduler",
        choices=["uniform", "contention", "worstcase"],
        default="contention",
    )
    p_bmmb.set_defaults(func=cmd_bmmb)

    p_fmmb = sub.add_parser("fmmb", help="run FMMB on a grey-zone network")
    _add_network_options(p_fmmb)
    p_fmmb.add_argument("--k", type=int, default=4, help="message count")
    p_fmmb.add_argument("--fprog", type=float, default=1.0, help="Fprog bound")
    p_fmmb.set_defaults(func=cmd_fmmb)

    p_lb = sub.add_parser("lowerbound", help="run a lower-bound adversary")
    _add_model_options(p_lb)
    p_lb.add_argument(
        "--gadget", choices=["figure2", "choke"], default="figure2"
    )
    p_lb.add_argument("--depth", type=int, default=10, help="Figure 2 line depth")
    p_lb.add_argument("--k", type=int, default=16, help="choke message count")
    p_lb.set_defaults(func=cmd_lowerbound)

    p_radio = sub.add_parser(
        "radio", help="run BMMB over the decay radio MAC (footnote 2)"
    )
    p_radio.add_argument("--n", type=int, default=12, help="star size")
    p_radio.add_argument(
        "--max-slots", type=int, default=500_000, help="slot budget"
    )
    p_radio.set_defaults(func=cmd_radio)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
