"""Command-line interface: explore the paper's experiments from a shell.

Subcommands:

* ``info`` — generate a topology, print its summary, and list the
  experiment registries.
* ``registry`` — list every registered topology, scheduler, algorithm,
  MAC layer, workload, arrival process, fault scenario, substrate, and
  reception engine.
* ``bmmb`` — run BMMB on a generated topology with a chosen scheduler and
  print completion vs the paper's bound.
* ``fmmb`` — run FMMB on a grey-zone network and print per-subroutine
  round counts vs the Theorem 4.1 budget.
* ``sweep`` — replicate a BMMB experiment over derived seeds (and optional
  ``--param`` axes), optionally across worker processes, and print
  aggregate percentiles; ``--json`` dumps the per-run rows (with each
  run's spec) for external analysis.
* ``campaign`` — list/run/resume/report/verify/diff the built-in
  reproduction campaigns (``figure1``, ``figure2_lowerbound``,
  ``crossover``, ``fault_resilience``, ``radio_footnote2``,
  ``sinr_contention``, ``saturation``, and the ``all_figures``
  meta-campaign): sharded, checkpointed sweeps that regenerate the
  paper's figures into ``artifacts/`` and validate them with machine
  checks.  ``--store`` takes a directory *or* an ``http(s)://`` store
  URL served by ``repro store serve``, so many workers can share one
  store across machines.
* ``store`` — result-store backend tools: ``serve`` a store directory
  over HTTP for distributed campaigns, ``sync`` two stores, ``verify``
  every entry's document-level integrity, ``gc`` entries no campaign
  claims.
* ``trace`` — inspect persisted observation journals (see
  :mod:`repro.runtime.journal`): ``dump`` prints decoded events, ``summary``
  aggregates per journal, ``check`` re-runs trace-level checks against a
  journal's embedded spec, ``diff`` compares two journals event by event,
  and ``grep`` scans rendered events with a regex.
* ``lowerbound`` — run the Figure 2 adversary (or the Lemma 3.18 choke)
  and print the measured floor plus the axiom certificate.
* ``radio`` — run BMMB over the decay-backed radio MAC on a star and print
  the realized (empirical) ``Fack``/``Fprog`` gap.

Run-style subcommands accept ``--fault kind:param=value,...`` to inject a
registered fault scenario (crashes, churn, link flapping) into the
execution; under faults, "solved" means solved among the surviving nodes.

All run-style subcommands build an :class:`~repro.experiments.ExperimentSpec`
and hand it to :func:`repro.experiments.run` — the CLI contains no
simulator plumbing of its own.  Exit status 0 means the run
solved/validated.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
from typing import Any, Sequence

from repro.analysis.bounds import (
    bmmb_arbitrary_bound,
    choke_lower_bound,
    figure2_lower_bound,
    fmmb_bound_rounds,
)
from repro.analysis.tables import render_table
from repro.core.bmmb import BMMBNode
from repro.errors import ExperimentError
from repro.experiments import (
    ALGORITHMS,
    FAULTS,
    MACS,
    SCHEDULERS,
    SUBSTRATES,
    TOPOLOGIES,
    WORKLOADS,
    AlgorithmSpec,
    ExperimentSpec,
    FaultSpec,
    ModelSpec,
    RunOptions,
    SchedulerSpec,
    Sweep,
    TopologySpec,
    WorkloadSpec,
    materialize_topology,
    run,
    run_sweep,
)
from repro.experiments.overrides import (
    parse_assignment,
    parse_assignments,
    parse_axes,
    parse_scalar,
)
from repro.mac.axioms import check_axioms
from repro.mac.schedulers import ChokeAdversary, GreyZoneAdversary
from repro.radio import RECEPTION_ENGINES
from repro.runtime.runner import run_standard
from repro.topology.adversarial import choke_star_network, parallel_lines_network
from repro.topology.metrics import summarize
from repro.traffic import ARRIVALS


def _topology_spec(args: argparse.Namespace) -> TopologySpec:
    """The grey-zone network every generative subcommand shares."""
    return TopologySpec(
        "random_geometric",
        {
            "n": args.n,
            "side": args.side,
            "c": args.c,
            "grey_edge_probability": args.grey_probability,
        },
    )


_REGISTRIES = (
    ("topology", TOPOLOGIES),
    ("scheduler", SCHEDULERS),
    ("algorithm", ALGORITHMS),
    ("mac", MACS),
    ("workload", WORKLOADS),
    ("arrival", ARRIVALS),
    ("fault", FAULTS),
    ("substrate", SUBSTRATES),
    ("engine", RECEPTION_ENGINES),
)


def _substrate_capabilities(substrate) -> str:
    """Compact capability summary for the registry table."""
    flags = []
    if substrate.supports_faults:
        flags.append("faults")
    if substrate.supports_arrivals:
        flags.append("arrivals")
    if getattr(substrate, "supports_reception_engines", False):
        flags.append("engines")
    flags.append(f"scheduler={substrate.scheduler_role}")
    return ",".join(flags)


def _engine_capabilities(engine) -> str:
    """Compact availability summary for a reception engine row."""
    if not engine.requires:
        return "pure-python"
    state = "available" if engine.available() else "unavailable"
    return f"requires={engine.requires},{state}"


def _substrate_doc(substrate) -> str:
    """One-line doc for the registry table.

    ``describe()`` comes from :class:`SubstrateBase`, not the
    :class:`Substrate` protocol, so a protocol-only third-party
    registration must not crash the table — fall back to its docstring.
    """
    describe = getattr(substrate, "describe", None)
    if callable(describe):
        return describe()
    doc = (getattr(substrate, "__doc__", "") or "").strip()
    return doc.splitlines()[0] if doc else ""


def _parse_fault(text: str | None) -> FaultSpec:
    """Parse ``--fault kind[:param=value,...]`` into a :class:`FaultSpec`."""
    if not text:
        return FaultSpec("none")
    kind, _, rest = text.partition(":")
    if kind not in FAULTS:
        raise SystemExit(
            f"--fault: unknown fault scenario {kind!r}; registered: "
            f"{', '.join(FAULTS.names())}"
        )
    params = parse_assignments(
        rest.split(",") if rest else None, flag="--fault", require_value=True
    )
    return FaultSpec(kind, params)


def _fault_columns(result) -> dict[str, object]:
    """Extra table columns for a faulted run (empty when fault-free)."""
    if not result.spec.fault.enabled:
        return {}
    metrics = result.metrics
    return {
        "survivors": int(metrics.get("survivors", 0)),
        "crashed": int(
            metrics.get("nodes_crashed", 0) + metrics.get("nodes_left", 0)
        ),
        "msgs lost": int(metrics.get("messages_lost", 0)),
    }


def _registry_rows() -> list[dict[str, object]]:
    return [
        {"registry": label, "entries": ", ".join(registry.names())}
        for label, registry in _REGISTRIES
    ]


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(topology=_topology_spec(args), seed=args.seed)
    dual = materialize_topology(spec)
    print(render_table([summarize(dual).as_dict()], title="topology summary"))
    print()
    print(render_table(_registry_rows(), title="experiment registries"))
    return 0


def cmd_registry(args: argparse.Namespace) -> int:
    rows = []
    for label, registry in _REGISTRIES:
        for name in registry.names():
            row: dict[str, object] = {"registry": label, "name": name}
            if label == "algorithm":
                row["substrates"] = ", ".join(registry.get(name).substrates)
            if label == "substrate":
                substrate = registry.get(name)
                row["capabilities"] = _substrate_capabilities(substrate)
                row["description"] = _substrate_doc(substrate)
            if label == "engine":
                engine = registry.get(name)
                row["capabilities"] = _engine_capabilities(engine)
                row["description"] = engine.describe()
            rows.append(row)
    print(render_table(rows, title="registered experiment components"))
    return 0


def _bmmb_spec(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec(
        name="cli-bmmb",
        topology=_topology_spec(args),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec(args.scheduler),
        workload=WorkloadSpec("one_each", {"k": args.k}),
        fault=_parse_fault(getattr(args, "fault", None)),
        model=ModelSpec(fack=args.fack, fprog=args.fprog),
        substrate=getattr(args, "substrate", "standard"),
        seed=args.seed,
    )


def cmd_bmmb(args: argparse.Namespace) -> int:
    spec = _bmmb_spec(args)
    dual = materialize_topology(spec)
    result = run(spec, RunOptions.summary())
    bound = bmmb_arbitrary_bound(dual.diameter(), args.k, args.fack)
    print(render_table(
        [
            {
                "solved": result.solved,
                "completion": result.completion_time,
                "(D+k)*Fack bound": bound,
                "broadcasts": result.broadcast_count,
                **_fault_columns(result),
            }
        ],
        title=f"BMMB on n={dual.n} grey-zone network, k={args.k}, "
              f"scheduler={args.scheduler}"
              + (f", fault={spec.fault.kind}" if spec.fault.enabled else ""),
    ))
    return 0 if result.solved else 1


def cmd_fmmb(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        name="cli-fmmb",
        topology=_topology_spec(args),
        algorithm=AlgorithmSpec("fmmb", {"c": args.c}),
        workload=WorkloadSpec("one_each", {"k": args.k}),
        fault=_parse_fault(getattr(args, "fault", None)),
        model=ModelSpec(fprog=args.fprog, fack=max(args.fprog, 20.0)),
        substrate="rounds",
        seed=args.seed,
    )
    dual = materialize_topology(spec)
    result = run(spec, RunOptions.summary())
    budget = fmmb_bound_rounds(dual.diameter(), args.k, dual.n, c=args.c)
    print(render_table(
        [
            {
                "solved": result.solved,
                "MIS valid": bool(result.metrics["mis_valid"]),
                "rounds MIS": int(result.metrics["rounds_mis"]),
                "rounds gather": int(result.metrics["rounds_gather"]),
                "rounds spread": int(result.metrics["rounds_spread"]),
                "rounds total": int(result.metrics["rounds_total"]),
                "budget": round(budget),
                **_fault_columns(result),
            }
        ],
        title=f"FMMB on n={dual.n} grey-zone network, k={args.k}"
              + (f", fault={spec.fault.kind}" if spec.fault.enabled else ""),
    ))
    return 0 if result.solved else 1


def _json_safe(value: Any) -> Any:
    """Strict-JSON value: non-finite floats become None, containers recurse."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _sweep_json_payload(base, sweep) -> dict:
    """The ``--json`` document: base spec + per-run rows with spec/metrics.

    Non-scalar gauges ride along in each row's ``series`` object (name →
    ``[[x, y], ...]``) so windowed steady-state data is never dropped
    from the export.
    """
    runs = []
    for row, result in zip(sweep.table_rows(), sweep):
        runs.append(
            {
                **row,
                "metrics": result.metrics,
                "series": {
                    name: [list(point) for point in points]
                    for name, points in sorted(result.series.items())
                },
                "spec": result.spec.to_dict(),
            }
        )
    return _json_safe(
        {
            "base_spec": base.to_dict(),
            "solved_rate": sweep.solved_rate,
            "runs": runs,
        }
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    # --substrate is validated against the live substrate registry by
    # spec construction itself (ExperimentSpec.validate); the resulting
    # ExperimentError lists the registered names and main() converts it
    # to exit status 2.
    base = _bmmb_spec(args)
    axes = parse_axes(args.param, flag="--param")
    journal_dir = getattr(args, "journal_dir", None)
    try:
        specs = Sweep.grid(base, axes=axes, repeats=args.seeds)
        sweep = run_sweep(
            specs,
            workers=args.workers,
            chunksize=args.chunksize,
            keep_observations=journal_dir is not None,
        )
    except (ExperimentError, TypeError) as exc:
        # TypeError: a --param axis fed a builder a kwarg it doesn't take.
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    if not len(sweep):
        # An empty sweep has a vacuous solved rate; CI smoke jobs must
        # not read "ran nothing" as "every point validated".
        print("sweep error: no points to run", file=sys.stderr)
        return 2
    if journal_dir is not None:
        # Journals are named by store key so they line up with (and are
        # byte-identical to) what a journaling campaign would persist.
        if "://" in journal_dir:
            # A store URL: persist through the store backend (campaign
            # layout, shared cache) instead of a flat directory.
            from repro.campaigns.store import ResultStore

            journal_store = ResultStore(journal_dir)
            for result in sweep:
                journal_store.put_journal(result.spec, result.observations)
            print(
                f"wrote {len(sweep)} journals to store {journal_dir}",
                file=sys.stderr,
            )
        else:
            from repro.campaigns.store import spec_key
            from repro.runtime.journal import write_journal

            os.makedirs(journal_dir, exist_ok=True)
            for result in sweep:
                key = spec_key(result.spec)
                write_journal(
                    os.path.join(journal_dir, f"{key}.obs.jsonl.gz"),
                    result.observations,
                    meta={"spec": result.spec.to_dict(), "spec_key": key},
                )
            print(
                f"wrote {len(sweep)} journals under {journal_dir}/",
                file=sys.stderr,
            )
    json_dest = args.json
    if json_dest is not None:
        payload = json.dumps(_sweep_json_payload(base, sweep), sort_keys=True)
        if json_dest == "-":
            # JSON mode owns stdout: no tables, just the document.
            print(payload)
            return 0 if sweep.solved_rate == 1.0 else 1
        with open(json_dest, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    pcts = (
        sweep.completion_percentiles((50.0, 90.0, 100.0))
        if any(r.solved for r in sweep)
        else {50.0: float("inf"), 90.0: float("inf"), 100.0: float("inf")}
    )
    print(render_table(
        [
            {
                "runs": len(sweep),
                "workers": args.workers,
                "solved rate": sweep.solved_rate,
                "p50 completion": pcts[50.0],
                "p90 completion": pcts[90.0],
                "max completion": pcts[100.0],
            }
        ],
        title=f"BMMB sweep: {len(specs)} runs "
              f"({args.seeds} seeds x {max(1, len(specs) // args.seeds)} "
              f"grid points), scheduler={args.scheduler}",
    ))
    if args.verbose:
        print()
        print(render_table(sweep.table_rows(), title="per-run results"))
    return 0 if sweep.solved_rate == 1.0 else 1


def _campaign_rows() -> list[dict[str, object]]:
    from repro.campaigns import CAMPAIGNS, build_campaign, expand_points

    rows = []
    for name in CAMPAIGNS.names():
        campaign = build_campaign(name)
        rows.append(
            {
                "campaign": name,
                "points": len(expand_points(campaign)),
                "sweeps": len(campaign.sweeps),
                "figures": len(campaign.figures),
                "checks": len(campaign.checks),
                "description": CAMPAIGNS.get(name).description,
            }
        )
    return rows


def _campaign_params(args: argparse.Namespace) -> dict[str, Any]:
    params: dict[str, Any] = {}
    if getattr(args, "n_max", None) is not None:
        params["n_max"] = args.n_max
    params.update(parse_assignments(getattr(args, "set", None), flag="--set"))
    return params


def _print_verify(report) -> int:
    """Render a VerifyReport; the exit status is the campaign's verdict."""
    rows = [
        {
            "points": report.total,
            "present": report.present,
            "missing": len(report.missing),
            "checks": len(report.checks),
            "failed checks": sum(1 for c in report.checks if not c.ok),
            "verdict": "ok" if report.ok else "FAIL",
        }
    ]
    print(render_table(rows, title=f"campaign {report.campaign.name} verification"))
    if report.missing:
        print(
            f"missing {len(report.missing)} points (run the remaining "
            f"shards, or `campaign run` to fill in)",
            file=sys.stderr,
        )
        for point in report.missing[:5]:
            print(f"  missing: {point.sweep}[{point.index}]", file=sys.stderr)
    for outcome in report.checks:
        for failure in outcome.failures:
            print(f"CHECK FAIL [{outcome.kind}] {failure}", file=sys.stderr)
    return 0 if report.ok else 1


def _verify_and_report(
    campaigns_mod, campaign, store, artifacts_dir, health=None
) -> int:
    """Shared tail of `campaign run` and `campaign report`: one store
    read drives the verdict, the checks, and the artifact write.  An
    incomplete store still writes (partial) artifacts — report.md then
    enumerates the missing points — but keeps the failing status."""
    report = campaigns_mod.verify_campaign(campaign, store)
    status = _print_verify(report)
    written = campaigns_mod.write_artifacts(
        campaign,
        report.points_by_sweep,
        report.checks,
        artifacts_dir,
        missing=report.missing,
        health=health,
    )
    label = "partial artifacts" if report.missing else "artifacts"
    print(f"wrote {len(written)} {label} under {artifacts_dir}/")
    return status


def _campaign_diff(campaigns_mod, campaign, store, args: argparse.Namespace) -> int:
    """`campaign diff`: point-by-point store comparison, nonzero on drift."""
    if not args.against:
        raise SystemExit(
            "campaign diff needs --against STORE (the store to compare "
            "--store with)"
        )
    store_b = campaigns_mod.ResultStore(args.against)
    report = campaigns_mod.diff_campaign(campaign, store, store_b)
    print(report.describe())
    shown = 0
    for point in report.drifted:
        if shown >= args.diff_limit:
            remaining = len(report.drifted) - shown
            print(f"... {remaining} more drifted points", file=sys.stderr)
            break
        print(f"DRIFT {point.describe()}", file=sys.stderr)
        shown += 1
    return 0 if report.ok else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro import campaigns

    if args.action == "list":
        print(render_table(_campaign_rows(), title="registered campaigns"))
        return 0
    if not args.name:
        raise SystemExit(f"campaign {args.action} needs a campaign name")
    campaign = campaigns.build_campaign(args.name, **_campaign_params(args))
    store = campaigns.ResultStore(args.store)
    if args.action == "diff":
        return _campaign_diff(campaigns, campaign, store, args)
    if args.action in ("run", "resume"):
        if args.action == "resume" and not store.backend.exists():
            raise SystemExit(
                f"campaign resume: no store at {args.store!r} (nothing to "
                f"resume; use `campaign run` to start one)"
            )
        shard = campaigns.parse_shard(args.shard)
        chaos = tuple(campaigns.parse_chaos(text) for text in (args.chaos or []))
        supervised_flags = (
            chaos
            or args.timeout is not None
            or args.wall_budget is not None
            or args.point_budget is not None
        )
        if args.direct and supervised_flags:
            raise SystemExit(
                "--direct bypasses the supervised fabric; drop --chaos/"
                "--timeout/--wall-budget/--point-budget"
            )
        if chaos:
            campaign = dataclasses.replace(campaign, chaos=chaos)
        fabric = campaigns.FabricConfig(
            workers=args.workers or 1,
            point_timeout=args.timeout,
            max_retries=args.retries,
            backoff_base=args.backoff,
            straggler_factor=args.straggler_factor,
            wall_budget=args.wall_budget,
            point_budget=args.point_budget,
        )
        outcome = campaigns.run_campaign(
            campaign,
            store,
            workers=args.workers,
            shard=shard,
            fabric=None if args.direct else fabric,
            direct=args.direct,
        )
        print(outcome.describe())
        status = 0
        if outcome.failed:
            for point, error in outcome.failed:
                print(
                    f"FAILED {point.sweep}[{point.index}]: {error}",
                    file=sys.stderr,
                )
            status = 1
        if outcome.exhausted:
            # Distinct resumable status: everything completed is already
            # checkpointed, so automation can retry with `resume`.
            print(
                f"{outcome.exhausted} exhausted: completed points are "
                f"checkpointed; `repro campaign resume {args.name}` "
                f"continues",
                file=sys.stderr,
            )
            status = campaigns.RESUMABLE_EXIT
        if shard[1] > 1 or args.no_report:
            # A partial shard computes and checkpoints; verdicts belong
            # to the merge step (`campaign verify`/`report`), which sees
            # every shard's results.
            return status
        report_status = _verify_and_report(
            campaigns, campaign, store, args.artifacts, health=outcome.health
        )
        return status or report_status
    if args.action == "verify":
        return _print_verify(campaigns.verify_campaign(campaign, store))
    if args.action == "report":
        return _verify_and_report(campaigns, campaign, store, args.artifacts)
    raise SystemExit(f"unknown campaign action {args.action!r}")


def cmd_store_serve(args: argparse.Namespace) -> int:
    from repro.store import serve

    serve(args.root, host=args.host, port=args.port, quiet=args.quiet)
    return 0


def cmd_store_sync(args: argparse.Namespace) -> int:
    from repro.store import open_backend, sync_stores

    source = open_backend(args.source)
    destination = open_backend(args.dest)
    report = sync_stores(source, destination)
    print(
        f"store sync {source.describe()} -> {destination.describe()}: "
        f"{report.describe()}"
    )
    return 0


def cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store import open_backend, verify_store

    backend = open_backend(args.target)
    report = verify_store(backend, delete=args.delete)
    print(f"store verify {backend.describe()}: {report.describe()}")
    for problem in report.problems:
        print(
            f"BAD [{problem.kind}] {problem.key}: {problem.reason}",
            file=sys.stderr,
        )
    # --delete heals the store (bad entries become cache misses that the
    # next campaign run recomputes), so a healed store exits clean.
    return 0 if not report.problems or args.delete else 1


def cmd_store_gc(args: argparse.Namespace) -> int:
    from repro import campaigns
    from repro.store import gc_store, open_backend

    backend = open_backend(args.target)
    params = _campaign_params(args)
    keep_keys: set[str] = set()
    for name in args.campaign:
        campaign = campaigns.build_campaign(name, **params)
        keep_keys |= {
            campaigns.spec_key(point.spec)
            for point in campaigns.expand_points(campaign)
        }
    report = gc_store(backend, keep_keys, dry_run=not args.apply)
    print(
        f"store gc {backend.describe()} "
        f"(keeping {', '.join(args.campaign)}): {report.describe()}"
        + ("" if args.apply else " [dry run; pass --apply to delete]")
    )
    return 0


# Trace checks a plain `repro trace check` runs.  ``mac_axioms`` is
# opt-in (--check mac_axioms): journals of faulted or budget-capped runs
# truncate legitimately, and full re-certification is the slowest check.
DEFAULT_TRACE_CHECKS = ("ack_latency", "abort_accounting", "delivery_order")


def _observation_dict(obs) -> dict[str, Any]:
    return {
        "time": obs.time,
        "kind": obs.kind,
        "node": obs.node,
        "key": obs.key,
        "ref": obs.ref,
        "value": obs.value,
    }


def _journal_spec(journal, path: str) -> ExperimentSpec:
    """The spec a campaign/sweep journal embeds in its header meta."""
    spec_dict = journal.meta.get("spec")
    if not isinstance(spec_dict, dict):
        raise ExperimentError(
            f"{path}: journal meta carries no embedded spec (hand-written "
            f"journals need a meta {{'spec': <spec dict>}} to be checkable)"
        )
    return ExperimentSpec.from_dict(spec_dict)


def _parse_trace_check(text: str) -> tuple[str, dict[str, Any]]:
    """Parse ``name`` or ``name:key=value,key=value`` into (name, params)."""
    name, sep, rest = text.partition(":")
    params: dict[str, Any] = {}
    if sep:
        for item in rest.split(","):
            key, value = parse_assignment(item, flag="--check")
            params[key] = value
    return name, params


def cmd_trace_dump(args: argparse.Namespace) -> int:
    from repro.runtime.journal import read_journal

    journal = read_journal(args.journal)
    if args.meta:
        print(json.dumps(journal.meta, sort_keys=True, indent=1))
        return 0
    kinds = set(args.kind or [])
    emitted = 0
    for obs in journal.observations:
        if kinds and obs.kind not in kinds:
            continue
        if args.limit is not None and emitted >= args.limit:
            break
        print(json.dumps(_observation_dict(obs), sort_keys=True))
        emitted += 1
    return 0


def cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.runtime.journal import read_journal
    from repro.runtime.trace import from_observations, summarize_trace

    rows = []
    for path in args.journals:
        journal = read_journal(path)
        kind_counts: dict[str, int] = {}
        for obs in journal.observations:
            kind_counts[obs.kind] = kind_counts.get(obs.kind, 0) + 1
        row: dict[str, object] = {
            "journal": os.path.basename(path),
            "events": len(journal.observations),
            "kinds": " ".join(
                f"{kind}:{count}" for kind, count in sorted(kind_counts.items())
            ),
        }
        mac_events = from_observations(journal.observations)
        if mac_events:
            summary = summarize_trace(mac_events)
            row.update(
                {
                    "instances": summary.instances,
                    "aborted": summary.aborted,
                    "span": summary.last_time - summary.first_time,
                    "mean ack latency": summary.mean_ack_latency,
                }
            )
        rows.append(row)
    print(render_table(rows, title=f"{len(rows)} observation journals"))
    return 0


def cmd_trace_check(args: argparse.Namespace) -> int:
    from repro.campaigns.trace_checks import run_trace_check
    from repro.runtime.journal import read_journal

    checks = [
        _parse_trace_check(text)
        for text in (args.check or list(DEFAULT_TRACE_CHECKS))
    ]
    failures = 0
    for path in args.journals:
        journal = read_journal(path)
        spec = _journal_spec(journal, path)
        for kind, params in checks:
            found = run_trace_check(kind, spec, journal.observations, **params)
            for failure in found:
                print(f"CHECK FAIL [{kind}] {path}: {failure}", file=sys.stderr)
            failures += len(found)
    checked = len(args.journals) * len(checks)
    verdict = "ok" if not failures else f"{failures} failures"
    print(
        f"trace check: {checked} check runs over "
        f"{len(args.journals)} journals: {verdict}"
    )
    return 0 if not failures else 1


def cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.runtime.journal import read_journal

    left = read_journal(args.a)
    right = read_journal(args.b)
    if left.meta != right.meta:
        print("meta differs", file=sys.stderr)
    differences = 0
    shown = 0
    for index in range(max(len(left), len(right))):
        lhs = left.observations[index] if index < len(left) else None
        rhs = right.observations[index] if index < len(right) else None
        if lhs == rhs:
            continue
        differences += 1
        if shown < args.limit:
            lhs_text = "-" if lhs is None else json.dumps(_observation_dict(lhs))
            rhs_text = "-" if rhs is None else json.dumps(_observation_dict(rhs))
            print(f"@{index}  a: {lhs_text}")
            print(f"@{index}  b: {rhs_text}")
            shown += 1
    if differences:
        print(
            f"journals differ: {differences} event positions "
            f"({len(left)} vs {len(right)} events)"
        )
        return 1
    identical = left.meta == right.meta
    print("journals identical" if identical else "events identical, meta differs")
    return 0 if identical else 1


def cmd_trace_grep(args: argparse.Namespace) -> int:
    import re

    from repro.runtime.journal import read_journal

    try:
        pattern = re.compile(args.pattern)
    except re.error as exc:
        raise SystemExit(f"bad pattern {args.pattern!r}: {exc}")
    matched = 0
    for path in args.journals:
        journal = read_journal(path)
        for index, obs in enumerate(journal.observations):
            line = json.dumps(_observation_dict(obs), sort_keys=True)
            if pattern.search(line):
                print(f"{path}:@{index}: {line}")
                matched += 1
    # grep semantics: success means something matched.
    return 0 if matched else 1


def cmd_perf(args: argparse.Namespace) -> int:
    """Run the performance suite and emit/compare ``BENCH_PERF.json``."""
    from repro import perf

    # Validate every input before the (multi-second) calibration runs, so
    # usage errors fail fast with a clean message like other subcommands.
    suites = ("micro", "macro") if args.suite == "all" else (args.suite,)
    sizes = dict(perf.DEFAULT_SIZES)
    if args.macro_sizes:
        try:
            wanted = tuple(
                int(tok) for tok in args.macro_sizes.split(",") if tok
            )
        except ValueError:
            raise SystemExit(
                f"--macro-sizes needs comma-separated integers, got "
                f"{args.macro_sizes!r}"
            )
        if args.macro_filter:
            # Intersect with each family's defaults; families with no
            # matching size are skipped entirely.
            sizes = {
                family: tuple(n for n in wanted if n in ns)
                for family, ns in sizes.items()
            }
        else:
            sizes = {family: wanted for family in sizes}

    def _load(path: str, flag: str):
        try:
            return perf.load_report(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{flag}: cannot read report {path!r}: {exc}")

    before = _load(args.embed_before, "--embed-before") if args.embed_before else None
    baseline = _load(args.baseline, "--baseline") if args.baseline else None

    records = []
    print("calibrating host ...", file=sys.stderr)
    calibration = perf.calibrate()
    from repro.perf.micro import micro_available

    if "micro" in suites:
        for name, bench in perf.MICRO_BENCHMARKS.items():
            if not micro_available(name):
                print(
                    f"micro/{name} skipped (needs numpy; install the "
                    f"'fast' extra)",
                    file=sys.stderr,
                )
                continue
            print(f"micro/{name} ...", file=sys.stderr)
            records.append(bench(args.repeats))
    if "macro" in suites:
        for family in perf.SCENARIOS:
            if not perf.scenario_available(family):
                print(
                    f"macro/{family} skipped (needs numpy; install the "
                    f"'fast' extra)",
                    file=sys.stderr,
                )
                continue
            for n in sizes.get(family, ()):
                print(f"macro/{family}_n{n} ...", file=sys.stderr)
                records.append(
                    perf.run_macro_scenario(family, n, args.repeats)
                )
    report = perf.build_report(
        records, calibration, note=args.note, before=before
    )
    rows = [
        {
            "benchmark": f"{r.suite}/{r.name}",
            "wall s": round(r.wall_seconds, 4),
            "events/s": (
                round(r.events_per_second) if r.events_per_second else "-"
            ),
        }
        for r in records
    ]
    print(render_table(rows, title="performance suite"))
    if args.out:
        perf.write_report(args.out, report)
        print(f"report written to {args.out}")
    if baseline is not None:
        regressions, ratios, uncovered = perf.compare_reports(
            report, baseline, max_regression=args.max_regression
        )
        print(render_table(
            [
                {"benchmark": key, "normalized ratio": value}
                for key, value in sorted(ratios.items())
            ],
            title=f"vs baseline {args.baseline} "
                  f"(fail above {1.0 + args.max_regression:.2f}x)",
        ))
        for key in uncovered:
            print(
                f"WARNING: {key} is not in the baseline — regenerate "
                f"{args.baseline} to regression-gate it",
                file=sys.stderr,
            )
        if regressions:
            for reg in regressions:
                print(f"REGRESSION {reg.describe()}", file=sys.stderr)
            return 1
    return 0


def cmd_lowerbound(args: argparse.Namespace) -> int:
    # The lower-bound adversaries are bound to their gadget networks
    # (the Figure 2 scheduler needs the line structure), so this command
    # stays on the imperative runner rather than the registries.
    if args.gadget == "figure2":
        net = parallel_lines_network(args.depth)
        scheduler = GreyZoneAdversary(net)
        floor = figure2_lower_bound(args.depth, args.fack)
        dual, assignment = net.dual, net.assignment
        title = f"Figure 2 adversary, D={args.depth}"
    else:
        choke = choke_star_network(args.k)
        scheduler = ChokeAdversary()
        floor = choke_lower_bound(args.k, args.fack)
        dual, assignment = choke.dual, choke.assignment
        title = f"Lemma 3.18 choke, k={args.k}"
    result = run_standard(
        dual,
        assignment,
        lambda _: BMMBNode(),
        scheduler,
        args.fack,
        args.fprog,
    )
    report = check_axioms(result.instances, dual, args.fack, args.fprog)
    print(render_table(
        [
            {
                "solved": result.solved,
                "completion": result.completion_time,
                "floor": floor,
                "axiom-clean": report.ok,
            }
        ],
        title=title,
    ))
    return 0 if (result.solved and report.ok) else 1


def cmd_radio(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        name="cli-radio",
        topology=TopologySpec("star", {"n": args.n}),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"nodes": list(range(1, args.n))}),
        fault=_parse_fault(getattr(args, "fault", None)),
        model=ModelSpec(params={"max_slots": args.max_slots}),
        substrate="radio",
        seed=args.seed,
    )
    result = run(spec, RunOptions.summary())
    fack = result.metrics["empirical_fack"]
    fprog = result.metrics["empirical_fprog"]
    print(render_table(
        [
            {
                "solved": result.solved,
                "slots": int(result.metrics["slots"]),
                "empirical Fack": fack,
                "empirical Fprog": fprog,
                "Fack/Fprog": fack / max(fprog, 1e-9),
                "delivery rate": result.metrics["delivery_success_rate"],
                **_fault_columns(result),
            }
        ],
        title=f"BMMB over decay radio MAC, star n={args.n} (footnote 2)"
              + (f", fault={spec.fault.kind}" if spec.fault.enabled else ""),
    ))
    return 0 if result.solved else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_network_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=40, help="node count")
    parser.add_argument("--side", type=float, default=3.0, help="box side length")
    parser.add_argument("--c", type=float, default=1.6, help="grey-zone constant")
    parser.add_argument(
        "--grey-probability",
        type=float,
        default=0.4,
        help="probability of each grey-band G' edge",
    )


def _add_model_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fack", type=float, default=20.0, help="Fack bound")
    parser.add_argument("--fprog", type=float, default=1.0, help="Fprog bound")


def _add_fault_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault",
        metavar="KIND[:P=V,...]",
        help="inject a fault scenario, e.g. --fault crash_random:fraction=0.2 "
        f"(registered: {', '.join(FAULTS.names())})",
    )


def _add_bmmb_options(parser: argparse.ArgumentParser) -> None:
    _add_network_options(parser)
    _add_model_options(parser)
    _add_fault_option(parser)
    parser.add_argument("--k", type=int, default=4, help="message count")
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULERS.names(),
        default="contention",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multi-Message Broadcast with Abstract "
        "MAC Layers and Unreliable Links' (PODC 2014)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser(
        "info", help="print a generated topology summary and the registries"
    )
    _add_network_options(p_info)
    p_info.set_defaults(func=cmd_info)

    p_registry = sub.add_parser(
        "registry", help="list registered experiment components"
    )
    p_registry.set_defaults(func=cmd_registry)

    p_bmmb = sub.add_parser("bmmb", help="run BMMB on a grey-zone network")
    _add_bmmb_options(p_bmmb)
    p_bmmb.set_defaults(func=cmd_bmmb)

    p_fmmb = sub.add_parser("fmmb", help="run FMMB on a grey-zone network")
    _add_network_options(p_fmmb)
    _add_fault_option(p_fmmb)
    p_fmmb.add_argument("--k", type=int, default=4, help="message count")
    p_fmmb.add_argument("--fprog", type=float, default=1.0, help="Fprog bound")
    p_fmmb.set_defaults(func=cmd_fmmb)

    p_sweep = sub.add_parser(
        "sweep", help="replicate a BMMB experiment over seeds and axes"
    )
    _add_bmmb_options(p_sweep)
    p_sweep.add_argument(
        "--substrate",
        default="standard",
        metavar="NAME",
        help="execution substrate for every point (validated against the "
        "substrate registry; see `repro registry`)",
    )
    p_sweep.add_argument(
        "--seeds", type=int, default=8, help="replications per grid point"
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    p_sweep.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="specs handed to a worker per task (default: jobs/(4*workers); "
        "larger chunks amortize per-point pickling and worker setup)",
    )
    p_sweep.add_argument(
        "--param",
        action="append",
        metavar="PATH=V1,V2,...",
        help="sweep axis, e.g. --param workload.k=2,4,8 or "
        "--param model.fack=10,20,40 (repeatable); for an arrival-rate "
        "sweep combine --param workload.kind=open_arrivals with "
        "--param workload.rate=0.005,0.02,0.08 (steady-state gauges "
        "such as metric latency_p95 land in the --json rows)",
    )
    p_sweep.add_argument(
        "--verbose", action="store_true", help="also print per-run rows"
    )
    p_sweep.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="FILE",
        help="dump per-run rows + specs as JSON to FILE ('-' or no value: "
        "stdout only, suppressing the tables)",
    )
    p_sweep.add_argument(
        "--journal-dir",
        metavar="DIR|URL",
        help="persist every run's observation journal under DIR, one "
        "<store-key>.obs.jsonl.gz per run (inspect with `repro trace`); "
        "an http(s):// store URL persists through the store backend "
        "instead (campaign layout, shared across machines)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_campaign = sub.add_parser(
        "campaign",
        help="run resumable reproduction campaigns (paper figures/tables)",
    )
    p_campaign.add_argument(
        "action",
        choices=["list", "run", "resume", "report", "verify", "diff"],
        help="list campaigns; run/resume (checkpointed, cache-hitting) a "
        "campaign; report regenerates artifacts from the store; verify "
        "checks completeness + validation without running; diff compares "
        "what two stores hold point by point (nonzero exit on drift)",
    )
    p_campaign.add_argument(
        "name", nargs="?", help="campaign name (see `campaign list`)"
    )
    p_campaign.add_argument(
        "--n-max",
        type=int,
        default=None,
        help="trim the campaign's size ladders to n <= N (reduced/CI mode; "
        "trimmed points keep their full-campaign store keys)",
    )
    p_campaign.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="extra campaign builder parameter (repeatable), e.g. --set seeds=3",
    )
    p_campaign.add_argument(
        "--store",
        default=os.path.join("artifacts", "store"),
        metavar="DIR|URL",
        help="checkpoint store: a directory, or an http(s):// store URL "
        "served by `repro store serve` (shared across campaigns, shards, "
        "and machines; content-addressed by spec hash; URL options: "
        "?cache=DIR&retries=N&backoff=S&timeout=S)",
    )
    p_campaign.add_argument(
        "--against",
        metavar="DIR|URL",
        help="(diff) the second store to compare --store with",
    )
    p_campaign.add_argument(
        "--diff-limit",
        type=int,
        default=20,
        metavar="N",
        help="(diff) drifted points to print before truncating",
    )
    p_campaign.add_argument(
        "--artifacts",
        default="artifacts",
        metavar="DIR",
        help="where report/run write CSV, ASCII, SVG, and report.md",
    )
    p_campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    p_campaign.add_argument(
        "--shard",
        default="0/1",
        metavar="I/N",
        help="run only shard I of N (split one campaign across CI jobs or "
        "machines sharing/merging a store); partial shards skip the "
        "report step",
    )
    p_campaign.add_argument(
        "--no-report",
        action="store_true",
        help="compute + checkpoint only; skip verification and artifacts",
    )
    p_campaign.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock timeout: an over-budget point's worker "
        "is killed and the point retried",
    )
    p_campaign.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="max retries per point before it is marked failed",
    )
    p_campaign.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="retry backoff base; the exponential schedule is hashed from "
        "the spec key (not wall clock) so reruns retry identically",
    )
    p_campaign.add_argument(
        "--straggler-factor",
        type=float,
        default=4.0,
        metavar="X",
        help="work-steal an in-flight point onto an idle worker once it "
        "runs X times the median point runtime",
    )
    p_campaign.add_argument(
        "--wall-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="campaign wall-clock budget; on exhaustion completed points "
        "stay checkpointed, the report marks missing points, exit is 75 "
        "(resumable)",
    )
    p_campaign.add_argument(
        "--point-budget",
        type=int,
        default=None,
        metavar="N",
        help="max points executed this invocation; exit 75 when work "
        "remains (resumable)",
    )
    p_campaign.add_argument(
        "--chaos",
        action="append",
        metavar="KIND[:P=V,...]",
        help="inject deterministic faults into the fabric (repeatable): "
        "worker_kill, point_hang, transient_error, store_corrupt; e.g. "
        "--chaos worker_kill:fraction=0.5,times=1,seed=0",
    )
    p_campaign.add_argument(
        "--direct",
        action="store_true",
        help="bypass the supervised fabric (legacy batch path: no "
        "retries, timeouts, budgets, or chaos)",
    )
    p_campaign.set_defaults(func=cmd_campaign)

    p_store = sub.add_parser(
        "store",
        help="result-store backend tools: serve a store over HTTP, sync "
        "two stores, verify entry integrity, gc unclaimed entries",
    )
    store_sub = p_store.add_subparsers(dest="action", required=True)

    p_serve = store_sub.add_parser(
        "serve",
        help="serve a store directory over HTTP (the layout stays a "
        "plain local store: openable, rsyncable, diffable)",
    )
    p_serve.add_argument(
        "--root",
        default=os.path.join("artifacts", "store"),
        metavar="DIR",
        help="store directory to serve (created if missing)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8750,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )
    p_serve.set_defaults(func=cmd_store_serve)

    p_ssync = store_sub.add_parser(
        "sync",
        help="one-way sync: copy/overwrite entries so DEST covers SOURCE",
    )
    p_ssync.add_argument("source", metavar="SOURCE", help="store dir or URL")
    p_ssync.add_argument("dest", metavar="DEST", help="store dir or URL")
    p_ssync.set_defaults(func=cmd_store_sync)

    p_sverify = store_sub.add_parser(
        "verify",
        help="document-level integrity check of every entry (checksums, "
        "spec round-trips, journal headers)",
    )
    p_sverify.add_argument("target", metavar="STORE", help="store dir or URL")
    p_sverify.add_argument(
        "--delete",
        action="store_true",
        help="remove invalid entries (they become cache misses that the "
        "next campaign run recomputes)",
    )
    p_sverify.set_defaults(func=cmd_store_verify)

    p_sgc = store_sub.add_parser(
        "gc",
        help="prune entries not claimed by the named campaigns (dry run "
        "by default)",
    )
    p_sgc.add_argument("target", metavar="STORE", help="store dir or URL")
    p_sgc.add_argument(
        "--campaign",
        action="append",
        required=True,
        metavar="NAME",
        help="campaign whose points to keep (repeatable)",
    )
    p_sgc.add_argument(
        "--n-max",
        type=int,
        default=None,
        help="build the keep-set campaigns with this n_max",
    )
    p_sgc.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="extra builder parameter for the keep-set campaigns",
    )
    p_sgc.add_argument(
        "--apply", action="store_true", help="actually delete (not a dry run)"
    )
    p_sgc.set_defaults(func=cmd_store_gc)

    p_trace = sub.add_parser(
        "trace",
        help="inspect persisted observation journals (dump/summary/check/"
        "diff/grep)",
    )
    tsub = p_trace.add_subparsers(dest="action", required=True)

    p_dump = tsub.add_parser("dump", help="print a journal's decoded events")
    p_dump.add_argument("journal", help="journal file (.obs.jsonl.gz or .jsonl)")
    p_dump.add_argument(
        "--kind", action="append", metavar="KIND", help="keep only these kinds"
    )
    p_dump.add_argument(
        "--limit", type=int, default=None, help="print at most N events"
    )
    p_dump.add_argument(
        "--meta",
        action="store_true",
        help="print only the header meta (embedded spec + store key)",
    )
    p_dump.set_defaults(func=cmd_trace_dump)

    p_summary = tsub.add_parser(
        "summary", help="aggregate event/instance counts per journal"
    )
    p_summary.add_argument("journals", nargs="+", help="journal files")
    p_summary.set_defaults(func=cmd_trace_summary)

    p_check = tsub.add_parser(
        "check",
        help="run trace-level checks against each journal's embedded spec",
    )
    p_check.add_argument("journals", nargs="+", help="journal files")
    p_check.add_argument(
        "--check",
        action="append",
        metavar="NAME[:K=V,...]",
        help="trace check to run, e.g. ack_latency or ack_latency:fack=40 "
        "(repeatable; default: %s; mac_axioms is opt-in)"
        % ", ".join(DEFAULT_TRACE_CHECKS),
    )
    p_check.set_defaults(func=cmd_trace_check)

    p_diff = tsub.add_parser(
        "diff", help="compare two journals event by event"
    )
    p_diff.add_argument("a", help="left journal")
    p_diff.add_argument("b", help="right journal")
    p_diff.add_argument(
        "--limit", type=int, default=10, help="differing positions to print"
    )
    p_diff.set_defaults(func=cmd_trace_diff)

    p_grep = tsub.add_parser(
        "grep", help="regex-search rendered events across journals"
    )
    p_grep.add_argument("pattern", help="regular expression")
    p_grep.add_argument("journals", nargs="+", help="journal files")
    p_grep.set_defaults(func=cmd_trace_grep)

    p_perf = sub.add_parser(
        "perf", help="run the performance suite and emit BENCH_PERF.json"
    )
    p_perf.add_argument(
        "--suite", choices=["micro", "macro", "all"], default="all"
    )
    p_perf.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per benchmark"
    )
    p_perf.add_argument(
        "--out", metavar="FILE", help="write the report JSON here"
    )
    p_perf.add_argument(
        "--baseline",
        metavar="FILE",
        help="compare against a committed report (calibration-normalized)",
    )
    p_perf.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed normalized slowdown fraction before failing (0.25 = 25%%)",
    )
    p_perf.add_argument(
        "--macro-sizes",
        metavar="N1,N2,...",
        help="override macro sizes (applied to every scenario family)",
    )
    p_perf.add_argument(
        "--macro-filter",
        action="store_true",
        help="with --macro-sizes, intersect with each family's defaults "
        "instead of replacing them",
    )
    p_perf.add_argument(
        "--embed-before",
        metavar="FILE",
        help="embed a previously recorded report as the 'before' section "
        "and compute per-benchmark speedups",
    )
    p_perf.add_argument("--note", default="", help="provenance note")
    p_perf.set_defaults(func=cmd_perf)

    p_lb = sub.add_parser("lowerbound", help="run a lower-bound adversary")
    _add_model_options(p_lb)
    p_lb.add_argument(
        "--gadget", choices=["figure2", "choke"], default="figure2"
    )
    p_lb.add_argument("--depth", type=int, default=10, help="Figure 2 line depth")
    p_lb.add_argument("--k", type=int, default=16, help="choke message count")
    p_lb.set_defaults(func=cmd_lowerbound)

    p_radio = sub.add_parser(
        "radio", help="run BMMB over the decay radio MAC (footnote 2)"
    )
    p_radio.add_argument("--n", type=int, default=12, help="star size")
    p_radio.add_argument(
        "--max-slots", type=int, default=500_000, help="slot budget"
    )
    _add_fault_option(p_radio)
    p_radio.set_defaults(func=cmd_radio)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ExperimentError as exc:
        # Bad spec composition (unknown registry key, invalid scenario
        # parameter): report it like the sweep subcommand does instead of
        # dumping a traceback.  Deliberately narrow — anything else is a
        # bug and should keep its stack trace.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Ctrl-C mid-campaign/sweep: everything already checkpointed is
        # safe on disk (the fabric checkpoints per point), so exit with
        # the conventional SIGINT status instead of a traceback and point
        # at the resume path.
        print(
            "interrupted: checkpointed results are kept; "
            "`repro campaign resume` continues a campaign",
            file=sys.stderr,
        )
        return 130
    except BrokenPipeError:
        # A downstream consumer (head, jq, ...) closed the pipe early;
        # that truncates our output but is not an error on our side.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
