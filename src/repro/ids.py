"""Shared primitive types and identifiers used across the package.

The simulation deals in three kinds of identifiers:

* :data:`NodeId` — integer identifier of a wireless device (a vertex of the
  dual graph).  The paper assumes unique ids; we use ``0..n-1``.
* :data:`MessageId` — string identifier of an MMB payload message.  The MMB
  problem treats messages as unique black boxes, so equality on the id is
  equality on the message.
* :data:`InstanceId` — integer identifier of a *message instance*: one
  ``bcast`` event together with all the ``rcv``/``ack``/``abort`` events the
  cause function maps to it (paper §3.2.1).

Time is a float number of abstract seconds.  ``Fack`` and ``Fprog`` are
expressed in the same unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

NodeId = int
MessageId = str
InstanceId = int
Time = float

#: Time tolerance used when comparing event times against model bounds.
#: Float arithmetic on sums of delays can wobble by a few ULPs; every bound
#: check in the package uses this single shared tolerance.
TIME_EPS: Time = 1e-9


@dataclass(frozen=True, slots=True)
class Message:
    """An MMB payload message.

    The MMB problem injects ``k`` unique messages at time 0.  Messages are
    black boxes that cannot be combined (no network coding), and only a
    constant number fit into one local broadcast; we broadcast exactly one
    payload message per local broadcast, plus constant-size protocol headers.

    Attributes:
        mid: Globally unique message identifier.
        origin: Node at which the environment injected the message.
        payload: Opaque application payload (unused by the algorithms).
    """

    mid: MessageId
    origin: NodeId
    payload: Any = None

    def __str__(self) -> str:
        return f"Message({self.mid}@{self.origin})"


@dataclass(frozen=True)
class MessageAssignment:
    """Initial placement of MMB messages on nodes.

    ``messages`` maps each node to the (possibly empty) tuple of messages the
    environment hands it at time 0 via ``arrive`` events.  The paper allows
    multiple messages at the same node; a *singleton assignment* (used by the
    lower bound of Lemma 3.18) gives each source at most one message.
    """

    messages: dict[NodeId, tuple[Message, ...]] = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Total number of injected messages."""
        return sum(len(msgs) for msgs in self.messages.values())

    def all_messages(self) -> list[Message]:
        """All injected messages, ordered by node id then injection order."""
        out: list[Message] = []
        for node in sorted(self.messages):
            out.extend(self.messages[node])
        return out

    def is_singleton(self) -> bool:
        """True if no node starts with more than one message."""
        return all(len(msgs) <= 1 for msgs in self.messages.values())

    @staticmethod
    def single_source(node: NodeId, count: int, prefix: str = "m") -> "MessageAssignment":
        """All ``count`` messages injected at one node."""
        msgs = tuple(Message(f"{prefix}{i}", node) for i in range(count))
        return MessageAssignment({node: msgs})

    @staticmethod
    def one_each(nodes: list[NodeId], prefix: str = "m") -> "MessageAssignment":
        """A singleton assignment: one fresh message per listed node."""
        return MessageAssignment(
            {node: (Message(f"{prefix}{i}", node),) for i, node in enumerate(nodes)}
        )
