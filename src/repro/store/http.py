"""The HTTP store backend: minimal content-addressed GET/PUT/HEAD.

Speaks the protocol served by :mod:`repro.store.server`:

* ``GET    /v1/<kind>/<key>`` — entry bytes; ``X-Repro-SHA256`` header
  carries the transport digest, verified on read (mismatch or truncation
  is never trusted).
* ``PUT    /v1/<kind>/<key>`` — store bytes; the client sends the digest
  so the server can reject a body mangled in transit.
* ``HEAD   /v1/<kind>/<key>`` — existence probe, no byte transfer.
* ``DELETE /v1/<kind>/<key>`` — remove an entry (tools only).
* ``GET    /v1/list`` — JSON inventory; ``GET /v1/ping`` — liveness.

Failure discipline:

* **Integrity** (digest mismatch, on a complete body) raises
  :class:`StoreIntegrityError` immediately — retrying a corrupt read
  would just re-download the same bad bytes; the caller treats the entry
  as corrupt and heals it by re-running.
* **Transient** errors (connection refused/reset, timeout, truncated
  body, HTTP 5xx) are retried on the bounded deterministic backoff
  schedule shared with the campaign fabric
  (:func:`repro.store.retry.deterministic_backoff`), then raise
  :class:`StoreUnavailableError`.

An optional **write-through local cache** (``cache=DIR`` in the store
URL) makes remote campaigns resumable offline: every verified read and
acknowledged write also lands in a :class:`LocalBackend`, and reads
check the cache first — sound because entries are content-addressed, so
a cached copy is as authoritative as the remote one.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ExperimentError
from repro.store.backend import (
    StoreError,
    StoreIntegrityError,
    StoreUnavailableError,
    check_kind,
)
from repro.store.local import LocalBackend
from repro.store.retry import deterministic_backoff

#: Transport digest header; covers exactly the bytes on the wire.
DIGEST_HEADER = "X-Repro-SHA256"

_KNOWN_OPTIONS = ("cache", "retries", "backoff", "timeout")


class _Transient(Exception):
    """Internal marker: this attempt failed retryably."""


@dataclass
class HttpBackend:
    """Byte storage behind a ``repro store serve`` endpoint.

    Args:
        base_url: Server base URL (no trailing slash, no query).
        cache: Optional write-through local cache backend.
        retries: Extra attempts after the first, per operation.
        backoff: Base backoff in seconds (0 disables sleeping, for tests).
        timeout: Per-request socket timeout in seconds.
    """

    base_url: str
    cache: LocalBackend | None = None
    retries: int = 4
    backoff: float = 0.05
    timeout: float = 10.0
    scheme: str = field(default="http", repr=False)

    @classmethod
    def from_url(cls, url: str) -> HttpBackend:
        """Build a backend from a ``--store`` URL.

        Query options: ``cache=DIR`` (write-through local cache),
        ``retries=N``, ``backoff=SECONDS``, ``timeout=SECONDS``.  Unknown
        options are rejected rather than ignored — a typo'd ``cache``
        would otherwise silently drop offline resumability.
        """
        parts = urllib.parse.urlsplit(url)
        options = urllib.parse.parse_qs(parts.query, keep_blank_values=True)
        unknown = sorted(set(options) - set(_KNOWN_OPTIONS))
        if unknown:
            raise ExperimentError(
                f"unknown store URL option(s) {', '.join(unknown)} in {url!r} "
                f"(known: {', '.join(_KNOWN_OPTIONS)})"
            )

        def scalar(name: str) -> str | None:
            values = options.get(name)
            return values[-1] if values else None

        kwargs: dict = {}
        cache_dir = scalar("cache")
        if cache_dir:
            kwargs["cache"] = LocalBackend(cache_dir)
        try:
            if scalar("retries") is not None:
                kwargs["retries"] = int(scalar("retries"))
            if scalar("backoff") is not None:
                kwargs["backoff"] = float(scalar("backoff"))
            if scalar("timeout") is not None:
                kwargs["timeout"] = float(scalar("timeout"))
        except ValueError as exc:
            raise ExperimentError(f"bad store URL option in {url!r}: {exc}") from exc
        base = urllib.parse.urlunsplit(
            (parts.scheme, parts.netloc, parts.path.rstrip("/"), "", "")
        )
        backend = cls(base_url=base, **kwargs)
        backend.scheme = parts.scheme
        return backend

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def describe(self) -> str:
        return self.base_url

    def location(self, kind: str, key: str) -> str:
        check_kind(kind)
        return f"{self.base_url}/v1/{kind}/{key}"

    def _attempt(
        self,
        method: str,
        url: str,
        data: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request; returns ``(status, headers, body)``.

        Raises ``_Transient`` for anything worth retrying.  A 404 is a
        normal answer (absent entry), returned rather than raised.
        """
        request = urllib.request.Request(
            url, data=data, headers=dict(headers or {}), method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                info = {k.lower(): v for k, v in response.headers.items()}
                length = info.get("content-length")
                if method != "HEAD" and length is not None:
                    if len(body) != int(length):
                        raise _Transient(
                            f"truncated body from {url}: "
                            f"{len(body)} of {length} bytes"
                        )
                return response.status, info, body
        except urllib.error.HTTPError as exc:
            info = {k.lower(): v for k, v in exc.headers.items()} if exc.headers else {}
            if exc.code == 404:
                return 404, info, b""
            if exc.code >= 500:
                raise _Transient(f"HTTP {exc.code} from {url}") from exc
            raise StoreError(f"store server rejected {method} {url}: HTTP {exc.code}")
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            OSError,
        ) as exc:
            raise _Transient(f"{type(exc).__name__}: {exc} ({method} {url})") from exc

    def _request(
        self,
        method: str,
        url: str,
        schedule_key: str,
        data: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """``_attempt`` under the bounded deterministic retry schedule."""
        last = "unreachable"
        for attempt in range(self.retries + 1):
            if attempt:
                delay = deterministic_backoff(schedule_key, attempt, self.backoff)
                if delay > 0:
                    time.sleep(delay)
            try:
                return self._attempt(method, url, data=data, headers=headers)
            except _Transient as exc:
                last = str(exc)
        raise StoreUnavailableError(
            f"store {self.base_url} unavailable after "
            f"{self.retries + 1} attempts: {last}"
        )

    # ------------------------------------------------------------------
    # StoreBackend protocol
    # ------------------------------------------------------------------
    def get(self, kind: str, key: str) -> bytes | None:
        if self.cache is not None:
            cached = self.cache.get(kind, key)
            if cached is not None:
                return cached
        url = self.location(kind, key)
        status, info, body = self._request("GET", url, f"{kind}/{key}")
        if status == 404:
            return None
        expected = info.get(DIGEST_HEADER.lower())
        if expected is not None:
            actual = hashlib.sha256(body).hexdigest()
            if actual != expected:
                raise StoreIntegrityError(
                    f"checksum mismatch reading {url}: "
                    f"got {actual[:12]}…, server declared {expected[:12]}…"
                )
        if self.cache is not None:
            self.cache.put(kind, key, body)
        return body

    def put(self, kind: str, key: str, data: bytes) -> str:
        url = self.location(kind, key)
        digest = hashlib.sha256(data).hexdigest()
        self._request(
            "PUT",
            url,
            f"{kind}/{key}",
            data=data,
            headers={
                DIGEST_HEADER: digest,
                "Content-Type": "application/octet-stream",
            },
        )
        if self.cache is not None:
            self.cache.put(kind, key, data)
        return url

    def head(self, kind: str, key: str) -> bool:
        if self.cache is not None and self.cache.head(kind, key):
            return True
        url = self.location(kind, key)
        status, _info, _body = self._request("HEAD", url, f"{kind}/{key}")
        return status != 404

    def delete(self, kind: str, key: str) -> bool:
        if self.cache is not None:
            self.cache.delete(kind, key)
        url = self.location(kind, key)
        status, _info, _body = self._request("DELETE", url, f"{kind}/{key}")
        return status != 404

    def list_entries(self) -> Iterator[tuple[str, str]]:
        status, _info, body = self._request("GET", f"{self.base_url}/v1/list", "list")
        if status == 404:
            raise StoreError(f"store server at {self.base_url} has no /v1/list")
        try:
            inventory = json.loads(body.decode("utf-8"))
            entries = [
                (str(entry["kind"]), str(entry["key"]))
                for entry in inventory["entries"]
            ]
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"malformed /v1/list reply from {self.base_url}: {exc}"
            ) from exc
        return iter(entries)

    def exists(self) -> bool:
        try:
            status, _info, _body = self._request(
                "GET", f"{self.base_url}/v1/ping", "ping"
            )
        except StoreUnavailableError:
            return False
        return status != 404

    def sweep_stale_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Temp-file hygiene is the server's (single writer's) concern."""
        if self.cache is not None:
            return self.cache.sweep_stale_tmp(max_age_seconds)
        return 0
