"""The local directory store backend — the historical layout, verbatim.

Entries live at ``root/<key[:2]>/<key><suffix>`` with the same two-level
fan-out, atomic ``mkstemp`` + ``os.replace`` writes, and temp-file naming
(``.{key[:8]}-*.tmp``) the pre-backend ResultStore used, so existing
stores open unchanged and golden store entries keep their bytes.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Iterator

from repro.store.backend import (
    entry_relpath,
    parse_entry_filename,
)


@dataclass
class LocalBackend:
    """Byte storage in a local directory (created lazily on first write)."""

    root: str
    scheme: str = "local"

    def describe(self) -> str:
        return self.root

    def location(self, kind: str, key: str) -> str:
        return os.path.join(self.root, *entry_relpath(kind, key).split("/"))

    def get(self, kind: str, key: str) -> bytes | None:
        try:
            with open(self.location(kind, key), "rb") as fh:
                return fh.read()
        except (FileNotFoundError, NotADirectoryError):
            return None

    def put(self, kind: str, key: str, data: bytes) -> str:
        path = self.location(kind, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, tmp_path = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(handle, "wb") as fh:
                fh.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def head(self, kind: str, key: str) -> bool:
        return os.path.exists(self.location(kind, key))

    def delete(self, kind: str, key: str) -> bool:
        try:
            os.unlink(self.location(kind, key))
        except (FileNotFoundError, NotADirectoryError):
            return False
        return True

    def list_entries(self) -> Iterator[tuple[str, str]]:
        """Every stored ``(kind, key)``, sorted by key then kind."""
        found = []
        if not os.path.isdir(self.root):
            return iter(())
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            for name in sorted(filenames):
                parsed = parse_entry_filename(name)
                if parsed is None:
                    continue
                kind, key = parsed
                if dirpath == os.path.join(self.root, key[:2]):
                    found.append((key, kind))
        return iter((kind, key) for key, kind in sorted(found))

    def exists(self) -> bool:
        return os.path.isdir(self.root)

    def sweep_stale_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Remove orphaned atomic-write temp files; returns the count.

        A writer killed mid-``put`` leaves its ``.*.tmp`` file behind
        (``os.replace`` never ran).  Such orphans are garbage — the entry
        either landed under its final name or it didn't — but only files
        older than ``max_age_seconds`` are swept so a concurrent writer's
        in-flight temp file is never touched.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        cutoff = time.time() - max_age_seconds
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not (name.startswith(".") and name.endswith(".tmp")):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.path.getmtime(path) < cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    continue
        return removed
