"""Pluggable result-store backends.

The campaign layer's content-addressed store
(:class:`repro.campaigns.store.ResultStore`) speaks to byte storage
through the :class:`~repro.store.backend.StoreBackend` protocol defined
here.  ``local`` is the historical directory layout, byte for byte;
``http`` speaks the minimal content-addressed protocol served by
:mod:`repro.store.server` (``repro store serve``), with checksum
self-verification, deterministic retry, and an optional write-through
local cache.  :func:`open_backend` maps ``--store`` arguments (paths or
``http(s)://`` URLs) onto backends; :mod:`repro.store.tools` holds the
``repro store {sync,verify,gc}`` implementations.
"""

from repro.store.backend import (
    KIND_SUFFIXES,
    KINDS,
    StoreBackend,
    StoreError,
    StoreIntegrityError,
    StoreUnavailableError,
    entry_filename,
    entry_relpath,
    open_backend,
    parse_entry_filename,
    valid_key,
)
from repro.store.http import HttpBackend
from repro.store.local import LocalBackend
from repro.store.retry import deterministic_backoff
from repro.store.server import make_server, serve
from repro.store.tools import (
    GcReport,
    StoreVerifyReport,
    SyncReport,
    gc_store,
    sync_stores,
    verify_store,
)

__all__ = [
    "KINDS",
    "KIND_SUFFIXES",
    "GcReport",
    "HttpBackend",
    "LocalBackend",
    "StoreBackend",
    "StoreError",
    "StoreIntegrityError",
    "StoreUnavailableError",
    "StoreVerifyReport",
    "SyncReport",
    "deterministic_backoff",
    "entry_filename",
    "entry_relpath",
    "gc_store",
    "make_server",
    "open_backend",
    "parse_entry_filename",
    "serve",
    "sync_stores",
    "valid_key",
    "verify_store",
]
