"""Store maintenance tools: sync, verify, gc (``repro store ...``).

These operate on any :class:`~repro.store.backend.StoreBackend`, so the
same command moves entries between two directories, a directory and a
server, or two servers.  Verification re-checks the *document* layer
(format, embedded checksum, spec round-trip) — the layer the campaign
executor trusts — not just transport digests.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.store.backend import StoreBackend


@dataclass
class SyncReport:
    """What :func:`sync_stores` did, per entry disposition."""

    copied: int = 0
    overwritten: int = 0
    skipped: int = 0

    def describe(self) -> str:
        return (
            f"copied {self.copied}, overwrote {self.overwritten}, "
            f"skipped {self.skipped} identical"
        )


def sync_stores(source: StoreBackend, destination: StoreBackend) -> SyncReport:
    """One-way sync: make ``destination`` cover ``source``.

    Entries missing from the destination are copied; entries present
    with different bytes are overwritten (the source is authoritative);
    byte-identical entries are skipped.  Extra destination entries are
    left alone — use :func:`gc_store` to prune.
    """
    report = SyncReport()
    for kind, key in source.list_entries():
        data = source.get(kind, key)
        if data is None:
            continue
        existing = destination.get(kind, key) if destination.head(kind, key) else None
        if existing == data:
            report.skipped += 1
            continue
        destination.put(kind, key, data)
        if existing is None:
            report.copied += 1
        else:
            report.overwritten += 1
    return report


@dataclass
class VerifyEntryProblem:
    """One entry that failed document-level verification."""

    kind: str
    key: str
    reason: str


@dataclass
class StoreVerifyReport:
    """What :func:`verify_store` found."""

    checked: int = 0
    ok: int = 0
    problems: list[VerifyEntryProblem] = field(default_factory=list)
    deleted: int = 0

    def describe(self) -> str:
        text = f"checked {self.checked}, ok {self.ok}, bad {len(self.problems)}"
        if self.deleted:
            text += f", deleted {self.deleted}"
        return text


def _check_summary(document: Any, key: str) -> str | None:
    """Why a summary document is invalid, or ``None`` when it verifies."""
    from repro.campaigns.store import STORE_FORMAT, _payload_digest, spec_key
    from repro.experiments.runner import ExperimentResult

    if not isinstance(document, dict):
        return "not a JSON object"
    if document.get("format") != STORE_FORMAT:
        return f"format {document.get('format')!r} != {STORE_FORMAT}"
    payload = document.get("payload")
    if not isinstance(payload, dict):
        return "missing payload"
    if document.get("sha256") != _payload_digest(payload):
        return "payload checksum mismatch"
    if payload.get("key") != key:
        return f"payload key {str(payload.get('key'))[:12]}… != entry key"
    try:
        result = ExperimentResult.from_dict(payload["result"])
    except (KeyError, TypeError, ValueError) as exc:
        return f"result does not decode: {exc}"
    if spec_key(result.spec) != key:
        return "spec does not hash to entry key"
    return None


def _check_journal(raw: bytes, key: str) -> str | None:
    """Why a journal blob is invalid, or ``None`` when it verifies."""
    from repro.errors import ExperimentError
    from repro.runtime.journal import loads_journal

    try:
        if raw[:2] == b"\x1f\x8b":
            raw = gzip.decompress(raw)
        journal = loads_journal(raw.decode("utf-8"), where=f"journal {key[:12]}…")
    except (ExperimentError, OSError, EOFError, UnicodeDecodeError) as exc:
        return f"journal does not decode: {exc}"
    if journal.meta.get("spec_key") != key:
        return "journal spec_key does not match entry key"
    return None


def verify_store(
    backend: StoreBackend,
    delete: bool = False,
) -> StoreVerifyReport:
    """Document-level verification of every entry in ``backend``.

    With ``delete=True``, invalid entries are removed — the next
    campaign run treats them as misses and re-runs the points, healing
    the store.
    """
    report = StoreVerifyReport()
    for kind, key in backend.list_entries():
        report.checked += 1
        data = backend.get(kind, key)
        if data is None:
            reason: str | None = "listed but unreadable"
        elif kind == "summary":
            try:
                document = json.loads(data.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                document = None
                reason = f"not JSON: {exc}"
            else:
                reason = None
            if document is not None:
                reason = _check_summary(document, key)
        else:
            reason = _check_journal(data, key)
        if reason is None:
            report.ok += 1
            continue
        report.problems.append(VerifyEntryProblem(kind=kind, key=key, reason=reason))
        if delete:
            backend.delete(kind, key)
            report.deleted += 1
    return report


@dataclass
class GcReport:
    """What :func:`gc_store` removed (or would remove)."""

    kept: int = 0
    removed: int = 0
    dry_run: bool = True

    def describe(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return f"kept {self.kept}, {verb} {self.removed}"


def gc_store(
    backend: StoreBackend,
    keep_keys: set[str],
    dry_run: bool = True,
) -> GcReport:
    """Prune entries whose key is not in ``keep_keys``.

    Content addressing makes this safe: a key outside the keep set
    belongs to no point of the campaigns that produced the set, so
    removing it can only cost a re-run, never correctness.
    """
    report = GcReport(dry_run=dry_run)
    for kind, key in list(backend.list_entries()):
        if key in keep_keys:
            report.kept += 1
            continue
        report.removed += 1
        if not dry_run:
            backend.delete(kind, key)
    return report


def entry_digest(data: bytes) -> str:
    """SHA-256 of raw entry bytes (the transport/diff digest)."""
    return hashlib.sha256(data).hexdigest()
