"""The pluggable result-store backend protocol.

A campaign's :class:`~repro.campaigns.store.ResultStore` owns *what* an
entry means (document format, checksums, spec round-trips); a backend
owns *where the bytes live*.  Every backend stores opaque byte blobs
addressed by ``(kind, key)``:

* ``kind`` — ``"summary"`` (the checkpointed result document) or
  ``"journal"`` (the gzip-framed observation stream).
* ``key`` — the SHA-256 spec key (64 hex chars); content addressing is
  inherited from the spec hash, so equal keys imply equal intended bytes
  and a backend may serve either copy of a replicated entry.

Two backends ship: :class:`~repro.store.local.LocalBackend` (the
historical on-disk layout, byte for byte) and
:class:`~repro.store.http.HttpBackend` (a minimal content-addressed
GET/PUT/HEAD protocol with checksum self-verification and deterministic
retry, served by :mod:`repro.store.server`).  :func:`open_backend` maps a
``--store`` argument — a directory path or an ``http(s)://`` URL — onto
the right one, so every CLI surface that accepts a store path accepts a
URL.

Error taxonomy (all :class:`~repro.errors.ExperimentError` subclasses, so
the CLI converts them to exit status 2 with a clean message):

* :class:`StoreError` — base class for backend failures.
* :class:`StoreIntegrityError` — the bytes read back failed checksum or
  length self-verification.  Callers treat the entry as corrupt (a miss
  that re-runs and heals), never trust it.
* :class:`StoreUnavailableError` — the backend stayed unreachable after
  its bounded retry schedule (server down, connection refused).
"""

from __future__ import annotations

import string
from typing import Iterator, Protocol, runtime_checkable

from repro.errors import ExperimentError

#: Entry kinds every backend must store, with their filename suffixes
#: (the suffixes are the historical local layout and are shared by every
#: backend so stores stay rsync/sync-compatible).
KIND_SUFFIXES = {
    "summary": ".json",
    "journal": ".obs.jsonl.gz",
}

KINDS = tuple(KIND_SUFFIXES)

_HEX = set(string.hexdigits.lower())

#: Length of a store key: SHA-256 hex digest of the spec's canonical JSON.
KEY_LENGTH = 64


class StoreError(ExperimentError):
    """A result-store backend operation failed."""


class StoreIntegrityError(StoreError):
    """Bytes read from a backend failed checksum/length verification."""


class StoreUnavailableError(StoreError):
    """The backend stayed unreachable after its bounded retries."""


def valid_key(key: str) -> bool:
    """Whether ``key`` is a well-formed store key (64 lowercase hex)."""
    return len(key) == KEY_LENGTH and set(key) <= _HEX


def check_kind(kind: str) -> None:
    """Reject unknown entry kinds with a clean error."""
    if kind not in KIND_SUFFIXES:
        raise StoreError(
            f"unknown store entry kind {kind!r} (known: {', '.join(KINDS)})"
        )


def entry_filename(kind: str, key: str) -> str:
    """The entry's file name, e.g. ``<key>.json`` / ``<key>.obs.jsonl.gz``."""
    check_kind(kind)
    return f"{key}{KIND_SUFFIXES[kind]}"


def entry_relpath(kind: str, key: str) -> str:
    """The entry's path relative to the store root (two-level fan-out)."""
    return f"{key[:2]}/{entry_filename(kind, key)}"


def parse_entry_filename(name: str) -> tuple[str, str] | None:
    """Invert :func:`entry_filename`: ``(kind, key)`` or ``None``.

    Journal before summary: ``.obs.jsonl.gz`` must win over a bare
    ``.json`` suffix probe, and unknown or malformed names (tmp files,
    stray dotfiles) parse to ``None`` instead of raising.
    """
    for kind in ("journal", "summary"):
        suffix = KIND_SUFFIXES[kind]
        if name.endswith(suffix):
            key = name[: -len(suffix)]
            if valid_key(key):
                return kind, key
            return None
    return None


@runtime_checkable
class StoreBackend(Protocol):
    """Byte storage addressed by ``(kind, key)``.

    Implementations must make ``put`` atomic (a concurrent or crashed
    writer never leaves a partial entry under the final name) and make
    ``get`` self-verifying where the transport can corrupt or truncate
    (raise :class:`StoreIntegrityError` rather than return bad bytes).
    """

    #: Scheme label for error messages (``"local"``, ``"http"``).
    scheme: str

    def describe(self) -> str:
        """Human-readable store location (directory path or URL)."""
        ...

    def location(self, kind: str, key: str) -> str:
        """Where the entry lives (file path or URL) — for messages/tools."""
        ...

    def get(self, kind: str, key: str) -> bytes | None:
        """The entry's bytes, or ``None`` when absent."""
        ...

    def put(self, kind: str, key: str, data: bytes) -> str:
        """Store ``data`` atomically; returns :meth:`location`."""
        ...

    def head(self, kind: str, key: str) -> bool:
        """Whether the entry exists (no byte transfer)."""
        ...

    def delete(self, kind: str, key: str) -> bool:
        """Remove the entry; ``True`` when something was deleted."""
        ...

    def list_entries(self) -> Iterator[tuple[str, str]]:
        """Every stored ``(kind, key)``, in deterministic order."""
        ...

    def exists(self) -> bool:
        """Whether the store is present/reachable at all."""
        ...

    def sweep_stale_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Remove orphaned atomic-write temp files; returns the count."""
        ...


def open_backend(target: str) -> StoreBackend:
    """Open the backend a ``--store`` argument names.

    * a plain path (or ``file://`` URL) → the local directory backend;
    * ``http://`` / ``https://`` → the HTTP backend (URL query options:
      ``cache=DIR`` write-through local cache, ``retries=N``,
      ``backoff=SECONDS``, ``timeout=SECONDS``);
    * anything else → :class:`~repro.errors.ExperimentError` naming the
      registered backends (the CLI turns this into exit status 2).
    """
    from repro.store.local import LocalBackend

    if "://" not in target:
        return LocalBackend(target)
    scheme = target.split("://", 1)[0].lower()
    if scheme == "file":
        return LocalBackend(target[len("file://") :])
    if scheme in ("http", "https"):
        from repro.store.http import HttpBackend

        return HttpBackend.from_url(target)
    raise ExperimentError(
        f"unknown store scheme {scheme + '://'!r} in {target!r}; "
        f"registered backends: local (a directory path or file://), "
        f"http://, https://"
    )
