"""Stdlib-only reference store server (``repro store serve``).

A thin HTTP face over :class:`~repro.store.local.LocalBackend`: the
on-disk layout it serves is exactly a local store directory, so the
served root can be opened with ``--store <dir>`` on the host, rsync'd,
or diffed against any other store.  Writes go through the same atomic
tmp+rename path as the local backend, serialized by a single writer
lock, so concurrent workers PUTting the same content-addressed entry
race harmlessly — last rename wins and both wrote identical bytes.

Endpoints (see :mod:`repro.store.http` for the client contract):

* ``GET/HEAD/PUT/DELETE /v1/<kind>/<key>``
* ``GET /v1/list`` — JSON inventory with per-entry size and digest.
* ``GET /v1/ping`` — liveness probe.

A PUT carrying an ``X-Repro-SHA256`` header is verified against the
received body and rejected with 400 on mismatch, so bytes mangled in
transit never land in the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.store.backend import KINDS, valid_key
from repro.store.http import DIGEST_HEADER
from repro.store.local import LocalBackend

#: Reject absurd bodies outright (a store entry is KB, not GB).
MAX_BODY_BYTES = 256 * 1024 * 1024


def _parse_entry_url(path: str) -> tuple[str, str] | None:
    """``/v1/<kind>/<key>`` → ``(kind, key)``, else ``None``."""
    parts = path.strip("/").split("/")
    if len(parts) != 3 or parts[0] != "v1":
        return None
    kind, key = parts[1], parts[2]
    if kind not in KINDS or not valid_key(key):
        return None
    return kind, key


class StoreRequestHandler(BaseHTTPRequestHandler):
    """One request against the served LocalBackend."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-store/1"

    # Set by make_server:
    backend: LocalBackend
    write_lock: threading.Lock
    quiet: bool = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Reply helpers
    # ------------------------------------------------------------------
    def _reply(
        self,
        status: int,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
        head_only: bool = False,
    ) -> None:
        self.send_response(status)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body and not head_only:
            self.wfile.write(body)

    def _reply_error(self, status: int, message: str) -> None:
        self._reply(
            status,
            (message + "\n").encode("utf-8"),
            headers={"Content-Type": "text/plain; charset=utf-8"},
        )

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    def _serve_entry(self, head_only: bool) -> None:
        parsed = _parse_entry_url(self.path)
        if parsed is None:
            self._handle_meta(head_only)
            return
        kind, key = parsed
        data = self.backend.get(kind, key)
        if data is None:
            self._reply_error(404, f"no {kind} entry {key}")
            return
        self._reply(
            200,
            data,
            headers={
                "Content-Type": "application/octet-stream",
                DIGEST_HEADER: hashlib.sha256(data).hexdigest(),
            },
            head_only=head_only,
        )

    def _handle_meta(self, head_only: bool) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/v1/ping":
            self._reply(200, b"ok\n", head_only=head_only)
            return
        if path == "/v1/list":
            entries = []
            for kind, key in self.backend.list_entries():
                data = self.backend.get(kind, key)
                if data is None:
                    continue
                entries.append(
                    {
                        "kind": kind,
                        "key": key,
                        "size": len(data),
                        "sha256": hashlib.sha256(data).hexdigest(),
                    }
                )
            body = json.dumps({"entries": entries}, sort_keys=True).encode("utf-8")
            self._reply(
                200,
                body,
                headers={"Content-Type": "application/json"},
                head_only=head_only,
            )
            return
        self._reply_error(404, f"unknown path {path}")

    def do_GET(self) -> None:  # noqa: N802
        self._serve_entry(head_only=False)

    def do_HEAD(self) -> None:  # noqa: N802
        self._serve_entry(head_only=True)

    def do_PUT(self) -> None:  # noqa: N802
        parsed = _parse_entry_url(self.path)
        if parsed is None:
            self._reply_error(404, f"unknown path {self.path}")
            return
        kind, key = parsed
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply_error(411, "Content-Length required")
            return
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply_error(413, f"body of {length} bytes refused")
            return
        data = self.rfile.read(length)
        if len(data) != length:
            self._reply_error(400, "short body")
            return
        declared = self.headers.get(DIGEST_HEADER)
        if declared is not None:
            actual = hashlib.sha256(data).hexdigest()
            if actual != declared:
                self._reply_error(
                    400,
                    f"digest mismatch: body is {actual}, header said {declared}",
                )
                return
        with self.write_lock:
            self.backend.put(kind, key, data)
        self._reply(201, b"stored\n")

    def do_DELETE(self) -> None:  # noqa: N802
        parsed = _parse_entry_url(self.path)
        if parsed is None:
            self._reply_error(404, f"unknown path {self.path}")
            return
        kind, key = parsed
        with self.write_lock:
            removed = self.backend.delete(kind, key)
        if removed:
            self._reply(200, b"deleted\n")
        else:
            self._reply_error(404, f"no {kind} entry {key}")


def make_server(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-run store server over directory ``root``.

    ``port=0`` binds an ephemeral port (see ``server.server_address``) —
    the shape tests and in-process fixtures want.  The caller owns the
    server lifecycle (``serve_forever`` / ``shutdown``).
    """
    backend = LocalBackend(root)
    lock = threading.Lock()

    class _Handler(StoreRequestHandler):
        pass

    _Handler.backend = backend
    _Handler.write_lock = lock
    _Handler.quiet = quiet
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    return server


def serve(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8750,
    quiet: bool = False,
) -> None:
    """Run the reference server until interrupted (CLI entry point)."""
    os.makedirs(root, exist_ok=True)
    server = make_server(root, host=host, port=port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro store serve: http://{bound_host}:{bound_port} -> {root}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
