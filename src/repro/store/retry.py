"""Deterministic retry/backoff shared by the fabric and store backends.

One backoff discipline serves both the campaign supervisor (worker
retries) and the HTTP store backend (transient transport errors): an
exponential schedule whose jitter is *hashed from the schedule key*, so
re-running the same campaign retries on exactly the same schedule —
byte-identical runs stay byte-identical even through retries.
"""

from __future__ import annotations

import hashlib


def deterministic_backoff(key: str, attempt: int, base: float) -> float:
    """Deterministic exponential backoff for retry ``attempt`` (>= 1).

    ``base * 2**(attempt-1) * (0.5 + u)`` where ``u in [0, 1)`` is hashed
    from the schedule key and attempt — jittered like production backoff,
    but a pure function of its inputs so reruns retry on the same
    schedule.
    """
    if attempt < 1 or base <= 0:
        return 0.0
    digest = hashlib.sha256(f"backoff/{key}/{attempt}".encode()).digest()
    u = int.from_bytes(digest[:8], "big") / 2**64
    return base * 2.0 ** (attempt - 1) * (0.5 + u)
