"""Dual-graph network topologies.

The paper's networks are pairs ``(G, G')`` over the same vertex set with
``E ⊆ E'``: ``G`` carries the reliable links (always delivered), and
``G' \\ G`` carries the unreliable links (delivered at the whim of the
message scheduler).  This subpackage provides:

* :class:`~repro.topology.dualgraph.DualGraph` — the validated container
  with reliable/unreliable neighbor queries, distances, power graphs, and
  constraint predicates (``r``-restricted, grey-zone).
* :mod:`~repro.topology.generators` — reliable-graph families plus
  unreliable-edge augmentations (arbitrary / ``r``-restricted).
* :mod:`~repro.topology.geometric` — embedded unit-disk graphs and grey-zone
  networks (``G`` = unit disk at radius 1, ``G'`` edges up to distance ``c``).
* :mod:`~repro.topology.adversarial` — the lower-bound constructions of
  §3.3: the Figure 2 parallel-lines network and the Lemma 3.18 choke star.
* :mod:`~repro.topology.metrics` — diameters, eccentricities, component
  structure helpers shared by the analysis code.
"""

from repro.topology.dualgraph import DualGraph
from repro.topology.generators import (
    grid_network,
    line_network,
    reliable_only,
    ring_network,
    star_network,
    tree_network,
    with_arbitrary_unreliable,
    with_r_restricted_unreliable,
)
from repro.topology.geometric import grey_zone_network, random_geometric_network
from repro.topology.adversarial import (
    choke_star_network,
    combined_lower_bound_network,
    parallel_lines_network,
)

__all__ = [
    "DualGraph",
    "line_network",
    "ring_network",
    "star_network",
    "grid_network",
    "tree_network",
    "reliable_only",
    "with_arbitrary_unreliable",
    "with_r_restricted_unreliable",
    "grey_zone_network",
    "random_geometric_network",
    "parallel_lines_network",
    "choke_star_network",
    "combined_lower_bound_network",
]
