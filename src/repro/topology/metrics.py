"""Topology summary metrics used by the analysis and reporting layers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.dualgraph import DualGraph


@dataclass(frozen=True)
class TopologySummary:
    """Summary of a dual graph for experiment reports.

    Attributes mirror the paper's parameters: ``n`` devices, diameter ``D``
    of ``G``, edge counts of both layers, the smallest restriction radius
    ``r`` of ``G'`` (None when no finite radius exists), and the worst-case
    receiver contention (max ``G'`` degree + 1), which lower-bounds the
    ``Fack/Fprog`` ratio needed by contention-style schedulers.
    """

    name: str
    n: int
    diameter: int
    reliable_edges: int
    unreliable_edges: int
    restriction_radius: int | None
    max_contention: int
    components: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for table rendering and ``extra_info``."""
        return {
            "name": self.name,
            "n": self.n,
            "D": self.diameter,
            "|E|": self.reliable_edges,
            "|E'\\E|": self.unreliable_edges,
            "r": self.restriction_radius,
            "contention": self.max_contention,
            "components": self.components,
        }


def summarize(dual: DualGraph) -> TopologySummary:
    """Compute the :class:`TopologySummary` of a dual graph."""
    return TopologySummary(
        name=dual.name,
        n=dual.n,
        diameter=dual.diameter(),
        reliable_edges=dual.reliable_edge_count,
        unreliable_edges=dual.unreliable_edge_count,
        restriction_radius=dual.restriction_radius(),
        max_contention=dual.max_gprime_degree() + 1,
        components=len(dual.components()),
    )


def minimum_fack_for_contention(dual: DualGraph, fprog: float) -> float:
    """Smallest sound ``Fack`` for the contention scheduler on this graph.

    The contention scheduler serializes each receiver at one delivery per
    ``Fprog`` slot, so a specific message may wait behind every other
    contending ``G'``-neighbor; ``(Δ' + 1)·Fprog`` is always sufficient.
    """
    return (dual.max_gprime_degree() + 1) * fprog
