"""Dual-graph serialization: share topologies between runs and tools.

A :class:`~repro.topology.dualgraph.DualGraph` round-trips through a plain
dictionary (and therefore JSON): vertex count, reliable edges, unreliable
extra edges, optional embedding, and name.  Experiment scripts use this to
pin the exact network behind a recorded result.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import TopologyError
from repro.topology.dualgraph import DualGraph

#: Schema version written into every serialized topology.
SCHEMA_VERSION = 1


def to_dict(dual: DualGraph) -> dict[str, Any]:
    """Serialize a dual graph to a JSON-compatible dictionary."""
    reliable = sorted(tuple(sorted(e)) for e in dual.reliable_graph.edges)
    extra = sorted(
        tuple(sorted((u, v)))
        for u, v in dual.unreliable_graph.edges
        if not dual.is_reliable_edge(u, v)
    )
    record: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "name": dual.name,
        "n": dual.n,
        "reliable_edges": [list(e) for e in reliable],
        "unreliable_extra_edges": [list(e) for e in extra],
    }
    if dual.positions is not None:
        record["positions"] = {
            str(node): list(pos) for node, pos in sorted(dual.positions.items())
        }
    return record


def from_dict(record: dict[str, Any]) -> DualGraph:
    """Rebuild a dual graph from :func:`to_dict` output."""
    schema = record.get("schema")
    if schema != SCHEMA_VERSION:
        raise TopologyError(f"unsupported topology schema: {schema!r}")
    for key in ("n", "reliable_edges", "unreliable_extra_edges"):
        if key not in record:
            raise TopologyError(f"topology record missing field {key!r}")
    positions = None
    if "positions" in record:
        positions = {
            int(node): (float(pos[0]), float(pos[1]))
            for node, pos in record["positions"].items()
        }
    return DualGraph.from_edges(
        int(record["n"]),
        [tuple(e) for e in record["reliable_edges"]],
        [tuple(e) for e in record["unreliable_extra_edges"]],
        positions=positions,
        name=str(record.get("name", "loaded")),
    )


def save(dual: DualGraph, path: str | Path) -> None:
    """Write a dual graph to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(dual), indent=2, sort_keys=True))


def load(path: str | Path) -> DualGraph:
    """Read a dual graph from a JSON file."""
    try:
        record = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TopologyError(f"{path}: invalid topology JSON: {exc}") from exc
    return from_dict(record)
