"""The paper's lower-bound networks (§3.3).

Two gadgets drive Theorem 3.17's ``Ω((D + k)·Fack)`` bound:

* :func:`parallel_lines_network` — the Figure 2 network ``C``: two disjoint
  reliable lines ``A`` and ``B`` of ``D`` nodes each, with unreliable cross
  edges ``a_i — b_{i+1}`` and ``b_i — a_{i+1}``.  Message ``m0`` starts at
  ``a_1`` and must traverse line ``A``; ``m1`` starts at ``b_1``.  The long
  ``G'`` edges let an adversarial scheduler legally starve each frontier
  broadcast for the full ``Fack`` (Lemmas 3.19–3.20), giving ``Ω(D·Fack)``.
* :func:`choke_star_network` — the Lemma 3.18 gadget: ``k`` source nodes
  whose messages must all cross a single reliable edge ``hub — sink``;
  the constant-messages-per-broadcast restriction forces ``Ω(k·Fack)``.

Both gadgets come with plane embeddings certifying the grey-zone constraint
(the lines are separated by 1.2, so the cross edges have length
``√(1 + 1.2²) ≈ 1.562 ≤ c``; the choke gadget uses a tight clique blob,
which *is* a unit-disk graph, unlike the paper's literal star — see the
``clique_sources`` note below).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.ids import Message, MessageAssignment, NodeId
from repro.topology.dualgraph import DualGraph, Position

#: Vertical separation between the two lines of the Figure 2 network.
#: Must exceed 1 (so ``a_i — b_i`` is not a reliable edge) while keeping the
#: diagonal cross edges within the grey-zone constant.
LINE_GAP = 1.2

#: The smallest grey-zone constant c that admits the Figure 2 embedding.
FIGURE2_MIN_C = (1.0 + LINE_GAP**2) ** 0.5  # ≈ 1.562


@dataclass(frozen=True)
class ParallelLinesNetwork:
    """The Figure 2 network ``C`` plus its canonical MMB instance.

    Attributes:
        dual: The dual graph (two reliable lines + unreliable diagonals).
        a_nodes: Line ``A`` as node ids, ``a_nodes[i-1]`` is the paper's a_i.
        b_nodes: Line ``B`` likewise.
        assignment: ``m0`` at ``a_1`` and ``m1`` at ``b_1`` (the
            endpoint-oriented execution of §3.3).
    """

    dual: DualGraph
    a_nodes: tuple[NodeId, ...]
    b_nodes: tuple[NodeId, ...]
    assignment: MessageAssignment

    @property
    def depth(self) -> int:
        """Length ``D`` of each line."""
        return len(self.a_nodes)

    @property
    def m0(self) -> Message:
        """The message that must traverse line ``A``."""
        return self.assignment.messages[self.a_nodes[0]][0]

    @property
    def m1(self) -> Message:
        """The message that must traverse line ``B``."""
        return self.assignment.messages[self.b_nodes[0]][0]


def parallel_lines_network(depth: int) -> ParallelLinesNetwork:
    """Build the Figure 2 network ``C`` with lines of ``depth`` nodes.

    Node ids: line ``A`` is ``0..depth-1`` (left to right), line ``B`` is
    ``depth..2·depth-1``.  Reliable edges run along each line; unreliable
    edges are the diagonals ``a_i — b_{i+1}`` and ``b_i — a_{i+1}`` for
    ``i < depth``, exactly as drawn in the paper.
    """
    if depth < 2:
        raise TopologyError(f"parallel lines need depth >= 2, got {depth}")
    a_nodes = tuple(range(depth))
    b_nodes = tuple(range(depth, 2 * depth))
    reliable = [(a_nodes[i], a_nodes[i + 1]) for i in range(depth - 1)]
    reliable += [(b_nodes[i], b_nodes[i + 1]) for i in range(depth - 1)]
    cross = []
    for i in range(depth - 1):
        cross.append((a_nodes[i], b_nodes[i + 1]))
        cross.append((b_nodes[i], a_nodes[i + 1]))
    positions: dict[NodeId, Position] = {}
    for i in range(depth):
        positions[a_nodes[i]] = (float(i), 0.0)
        positions[b_nodes[i]] = (float(i), LINE_GAP)
    dual = DualGraph.from_edges(
        2 * depth,
        reliable,
        cross,
        positions=positions,
        name=f"figure2-lines-D{depth}",
    )
    assignment = MessageAssignment(
        {
            a_nodes[0]: (Message("m0", a_nodes[0]),),
            b_nodes[0]: (Message("m1", b_nodes[0]),),
        }
    )
    return ParallelLinesNetwork(dual, a_nodes, b_nodes, assignment)


@dataclass(frozen=True)
class ChokeStarNetwork:
    """The Lemma 3.18 choke gadget plus its singleton assignment.

    Attributes:
        dual: The dual graph (``G' = G``).
        sources: The ``k`` nodes that each start with one message (the
            paper's ``U ∪ {u_k}``).
        hub: The choke-point node ``u_k``.
        sink: The receiver ``v`` behind the choke point.
        assignment: One unique message per source (singleton assignment).
    """

    dual: DualGraph
    sources: tuple[NodeId, ...]
    hub: NodeId
    sink: NodeId
    assignment: MessageAssignment

    @property
    def k(self) -> int:
        """Number of messages."""
        return len(self.sources)


def choke_star_network(k: int, clique_sources: bool = True) -> ChokeStarNetwork:
    """Build the Lemma 3.18 network for ``k`` messages.

    Nodes ``0..k-2`` are the leaves ``u_1..u_{k-1}``, node ``k-1`` is the hub
    ``u_k``, node ``k`` is the sink ``v``.  Every source starts with one
    unique message; all ``k`` messages must cross the single reliable edge
    ``hub — sink``.

    Args:
        k: Number of messages (``k >= 2``); the network has ``k + 1`` nodes.
        clique_sources: If True (default) the sources form a clique (a tight
            geometric blob), which is unit-disk-embeddable and therefore
            satisfies the grey-zone constraint; the choke argument is
            unchanged since the hub—sink edge still serializes all traffic.
            If False, build the paper's literal star (leaves adjacent only to
            the hub) — same lower bound, but no unit-disk embedding for
            ``k > 6``, so no positions are attached.
    """
    if k < 2:
        raise TopologyError(f"choke star needs k >= 2, got {k}")
    leaves = tuple(range(k - 1))
    hub: NodeId = k - 1
    sink: NodeId = k
    sources = leaves + (hub,)
    edges: list[tuple[NodeId, NodeId]] = [(hub, sink)]
    positions: dict[NodeId, Position] | None = None
    if clique_sources:
        edges += [
            (sources[i], sources[j])
            for i in range(len(sources))
            for j in range(i + 1, len(sources))
        ]
        # Blob of leaves in [0, 0.02] x [0, 0.02]; hub slightly right of the
        # blob; sink within 1 of the hub but beyond 1 from every leaf.
        positions = {}
        for idx, node in enumerate(leaves):
            positions[node] = (0.02 * (idx % 7) / 7.0, 0.02 * (idx // 7) / 7.0)
        positions[hub] = (0.04, 0.0)
        positions[sink] = (1.035, 0.0)
    else:
        edges += [(leaf, hub) for leaf in leaves]
    dual = DualGraph.from_edges(
        k + 1,
        edges,
        (),
        positions=positions,
        name=f"choke-star-k{k}" + ("-clique" if clique_sources else ""),
    )
    assignment = MessageAssignment.one_each(list(sources))
    return ChokeStarNetwork(dual, sources, hub, sink, assignment)


@dataclass(frozen=True)
class CombinedLowerBoundNetwork:
    """Choke gadget composed with the Figure 2 lines (Theorem 3.17).

    The sink of the choke gadget *is* ``a_1`` of the parallel-lines network:
    all ``k−1`` blob messages plus ``m0`` must first serialize through the
    hub—a_1 edge (``Ω(k·Fack)``) and then traverse line ``A`` against the
    frontier-starving adversary (``Ω(D·Fack)``).
    """

    dual: DualGraph
    blob: tuple[NodeId, ...]
    hub: NodeId
    a_nodes: tuple[NodeId, ...]
    b_nodes: tuple[NodeId, ...]
    assignment: MessageAssignment


def combined_lower_bound_network(depth: int, k: int) -> CombinedLowerBoundNetwork:
    """Build the composed ``Ω((D + k)·Fack)`` network.

    Node layout: ``0..k-2`` blob sources (clique, includes hub ``k-2``),
    ``k-1 .. k-2+depth`` line ``A`` (``a_1`` adjacent to the hub),
    then ``depth`` more nodes for line ``B``.  ``m0`` starts at ``a_1``;
    ``m1`` starts at ``b_1``; ``k − 2`` further messages start in the blob.
    """
    if depth < 2 or k < 2:
        raise TopologyError(f"need depth >= 2 and k >= 2, got {depth}, {k}")
    blob = tuple(range(k - 1))
    hub = blob[-1]
    a_nodes = tuple(range(k - 1, k - 1 + depth))
    b_nodes = tuple(range(k - 1 + depth, k - 1 + 2 * depth))
    edges: list[tuple[NodeId, NodeId]] = []
    edges += [
        (blob[i], blob[j]) for i in range(len(blob)) for j in range(i + 1, len(blob))
    ]
    edges.append((hub, a_nodes[0]))
    edges += [(a_nodes[i], a_nodes[i + 1]) for i in range(depth - 1)]
    edges += [(b_nodes[i], b_nodes[i + 1]) for i in range(depth - 1)]
    cross = []
    for i in range(depth - 1):
        cross.append((a_nodes[i], b_nodes[i + 1]))
        cross.append((b_nodes[i], a_nodes[i + 1]))
    messages: dict[NodeId, tuple[Message, ...]] = {
        a_nodes[0]: (Message("m0", a_nodes[0]),),
        b_nodes[0]: (Message("m1", b_nodes[0]),),
    }
    for idx, node in enumerate(blob):
        if idx < k - 2:
            messages[node] = (Message(f"mb{idx}", node),)
    dual = DualGraph.from_edges(
        k - 1 + 2 * depth,
        edges,
        cross,
        name=f"combined-D{depth}-k{k}",
    )
    return CombinedLowerBoundNetwork(
        dual, blob, hub, a_nodes, b_nodes, MessageAssignment(messages)
    )
