"""Embedded geometric networks: unit-disk ``G`` and grey-zone ``G'``.

The grey-zone constraint (paper §2) requires a plane embedding ``p`` with:

1. ``(u, v) ∈ E``  iff  ``‖p(u) − p(v)‖ ≤ 1`` (``G`` is the unit-disk graph
   of the embedding), and
2. every ``(u, v) ∈ E'`` has ``‖p(u) − p(v)‖ ≤ c`` for a universal constant
   ``c ≥ 1``.

Clause (2) is an upper bound only — pairs within distance ``c`` need *not*
be ``G'``-neighbors, so we expose a sampling probability for the grey band.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import TopologyError
from repro.ids import NodeId
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph, Position


def _close_pairs(
    positions: dict[NodeId, Position], radius: float
) -> list[tuple[NodeId, NodeId, float]]:
    """All pairs ``u < v`` within ``radius`` (+eps), with their distance.

    Grid-bucketed: nodes land in cells of side ``radius`` and only pairs
    from the same or adjacent cells are compared, so the cost is
    O(n · local density) instead of the all-pairs O(n²).  The result is
    sorted lexicographically, which keeps every consumer's edge insertion
    and RNG draw order identical to the historical nested-loop scan.
    """
    # Cell side must cover the *matching* limit (radius + eps), not just
    # the radius: a pair right at the epsilon band can otherwise span
    # non-adjacent cells and be silently dropped.
    limit = radius + 1e-12
    cell = max(limit, 1e-9)
    buckets: dict[tuple[int, int], list[NodeId]] = {}
    for v, (x, y) in positions.items():
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(v)
    # Half neighborhood: each unordered cell pair is visited exactly once.
    half = ((1, -1), (1, 0), (1, 1), (0, 1))
    hypot = math.hypot
    pairs: list[tuple[NodeId, NodeId, float]] = []
    for (cx, cy), members in buckets.items():
        for i, u in enumerate(members):
            ux, uy = positions[u]
            for v in members[i + 1 :]:
                vx, vy = positions[v]
                dist = hypot(ux - vx, uy - vy)
                if dist <= limit:
                    pairs.append((u, v, dist) if u < v else (v, u, dist))
        for dx, dy in half:
            other = buckets.get((cx + dx, cy + dy))
            if not other:
                continue
            for u in members:
                ux, uy = positions[u]
                for v in other:
                    vx, vy = positions[v]
                    dist = hypot(ux - vx, uy - vy)
                    if dist <= limit:
                        pairs.append(
                            (u, v, dist) if u < v else (v, u, dist)
                        )
    pairs.sort()
    return pairs


def unit_disk_graph(positions: dict[NodeId, Position], radius: float = 1.0) -> nx.Graph:
    """The unit-disk graph of an embedding: edges at distance ≤ ``radius``."""
    g = nx.Graph()
    g.add_nodes_from(positions)
    g.add_edges_from((u, v) for u, v, _dist in _close_pairs(positions, radius))
    return g


def grey_zone_network(
    positions: dict[NodeId, Position],
    c: float,
    grey_edge_probability: float,
    rng: RandomSource,
    name: str | None = None,
) -> DualGraph:
    """A grey-zone dual graph from an explicit embedding.

    ``G`` is the unit-disk graph at radius 1; every node pair at distance in
    ``(1, c]`` is added to ``G'`` independently with probability
    ``grey_edge_probability``.

    Args:
        positions: Plane embedding of the nodes.
        c: Grey-zone constant (``c >= 1``).
        grey_edge_probability: Inclusion probability for grey-band pairs.
        rng: Random stream.
    """
    if c < 1.0:
        raise TopologyError(f"grey-zone constant must satisfy c >= 1, got {c}")
    if not 0.0 <= grey_edge_probability <= 1.0:
        raise TopologyError(
            f"probability must be in [0,1], got {grey_edge_probability}"
        )
    # One bucketed pass at radius c yields both layers: pairs at distance
    # ≤ 1 are E, pairs in the grey band (1, c] are G'-edge candidates.
    # _close_pairs returns lexicographically sorted pairs, so the
    # per-candidate Bernoulli draws happen in exactly the order the
    # historical all-pairs scan used.
    reliable_edges: list[tuple[NodeId, NodeId]] = []
    extra: list[tuple[NodeId, NodeId]] = []
    for u, v, dist in _close_pairs(positions, c):
        if dist <= 1.0 + 1e-12:
            reliable_edges.append((u, v))
        elif rng.bernoulli(grey_edge_probability):
            extra.append((u, v))
    return DualGraph.from_edges(
        len(positions),
        reliable_edges,
        extra,
        positions=positions,
        name=name or f"grey-zone-c{c}",
    )


def random_geometric_network(
    n: int,
    side: float,
    c: float,
    grey_edge_probability: float,
    rng: RandomSource,
    connect: bool = True,
    max_attempts: int = 200,
    name: str | None = None,
) -> DualGraph:
    """A random grey-zone network: ``n`` points uniform in a ``side×side`` box.

    With ``connect=True``, resamples until the unit-disk graph is connected
    (raising after ``max_attempts``); pick ``side ≲ sqrt(n)/2`` for easy
    connectivity.

    Returns a :class:`DualGraph` with the embedding attached, so the FMMB
    subroutines and the grey-zone predicate can use positions.
    """
    if n < 1:
        raise TopologyError(f"need n >= 1, got {n}")
    point_rng = rng.child("points")
    edge_rng = rng.child("grey-edges")
    for attempt in range(max_attempts):
        positions = {
            i: (point_rng.uniform(0.0, side), point_rng.uniform(0.0, side))
            for i in range(n)
        }
        g = unit_disk_graph(positions)
        if not connect or nx.is_connected(g):
            return grey_zone_network(
                positions,
                c,
                grey_edge_probability,
                edge_rng,
                name=name or f"rgg-n{n}-side{side}-c{c}",
            )
    raise TopologyError(
        f"failed to sample a connected unit-disk graph in {max_attempts} "
        f"attempts (n={n}, side={side}); reduce side or set connect=False"
    )


def cluster_line_positions(
    clusters: int, nodes_per_cluster: int, spacing: float = 0.9
) -> dict[NodeId, Position]:
    """Embedding of dense clusters spaced along a line.

    A convenient deterministic grey-zone workload: each cluster is a tight
    blob (mutual distance < 1), consecutive clusters are ``spacing`` apart so
    only adjacent blobs connect.  Produces diameter ≈ ``clusters`` with high
    local contention — the regime where ``Fprog ≪ Fack`` matters.
    """
    if clusters < 1 or nodes_per_cluster < 1:
        raise TopologyError("need at least one cluster and one node per cluster")
    positions: dict[NodeId, Position] = {}
    node = 0
    for ci in range(clusters):
        base_x = ci * spacing
        for j in range(nodes_per_cluster):
            # Tiny deterministic offsets keep intra-cluster distances < 0.1.
            angle = 2.0 * math.pi * j / max(nodes_per_cluster, 1)
            positions[node] = (
                base_x + 0.04 * math.cos(angle),
                0.04 * math.sin(angle),
            )
            node += 1
    return positions
