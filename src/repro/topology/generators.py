"""Reliable-graph families and unreliable-edge augmentations.

Reliable families (``G``): line, ring, star, 2-D grid, balanced tree, and —
via :mod:`repro.topology.geometric` — unit-disk graphs.  Augmentations add
the unreliable layer ``G' \\ G`` in the three regimes the paper studies:

* ``G' = G`` (:func:`reliable_only`),
* ``r``-restricted (:func:`with_r_restricted_unreliable`): extra edges only
  between nodes within ``r`` hops of each other in ``G``,
* arbitrary (:func:`with_arbitrary_unreliable`): extra edges anywhere.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.ids import NodeId
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph


# ----------------------------------------------------------------------
# Reliable families
# ----------------------------------------------------------------------
def line_graph(n: int) -> nx.Graph:
    """A path ``0 — 1 — ... — n-1`` (diameter ``n − 1``)."""
    if n < 1:
        raise TopologyError(f"line needs n >= 1, got {n}")
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from((i, i + 1) for i in range(n - 1))
    return g


def ring_graph(n: int) -> nx.Graph:
    """A cycle of ``n >= 3`` nodes (diameter ``⌊n/2⌋``)."""
    if n < 3:
        raise TopologyError(f"ring needs n >= 3, got {n}")
    g = line_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> nx.Graph:
    """A star: hub ``0`` connected to leaves ``1..n-1``."""
    if n < 2:
        raise TopologyError(f"star needs n >= 2, got {n}")
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from((0, i) for i in range(1, n))
    return g


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A ``rows × cols`` 2-D grid with integer node ids ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid needs positive dimensions, got {rows}x{cols}")
    g = nx.Graph()
    g.add_nodes_from(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def tree_graph(branching: int, height: int) -> nx.Graph:
    """A complete ``branching``-ary tree of the given height, ids in BFS order."""
    if branching < 1 or height < 0:
        raise TopologyError(
            f"tree needs branching >= 1 and height >= 0, got {branching}, {height}"
        )
    g = nx.Graph()
    g.add_node(0)
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                g.add_edge(parent, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return g


# ----------------------------------------------------------------------
# Dual-graph constructors
# ----------------------------------------------------------------------
def reliable_only(g: nx.Graph, name: str = "g-equals-gprime") -> DualGraph:
    """The ``G' = G`` regime of [29, 30]: no unreliable edges at all."""
    gp = nx.Graph()
    gp.add_nodes_from(g.nodes)
    gp.add_edges_from(g.edges)
    return DualGraph(g, gp, name=name)


def line_network(n: int) -> DualGraph:
    """Line with ``G' = G``."""
    return reliable_only(line_graph(n), name=f"line-{n}")


def ring_network(n: int) -> DualGraph:
    """Ring with ``G' = G``."""
    return reliable_only(ring_graph(n), name=f"ring-{n}")


def star_network(n: int) -> DualGraph:
    """Star with ``G' = G``."""
    return reliable_only(star_graph(n), name=f"star-{n}")


def grid_network(rows: int, cols: int) -> DualGraph:
    """Grid with ``G' = G``."""
    return reliable_only(grid_graph(rows, cols), name=f"grid-{rows}x{cols}")


def tree_network(branching: int, height: int) -> DualGraph:
    """Complete tree with ``G' = G``."""
    return reliable_only(
        tree_graph(branching, height), name=f"tree-{branching}^{height}"
    )


# ----------------------------------------------------------------------
# Unreliable augmentations
# ----------------------------------------------------------------------
def with_r_restricted_unreliable(
    g: nx.Graph,
    r: int,
    probability: float,
    rng: RandomSource,
    name: str | None = None,
) -> DualGraph:
    """Add each candidate ``G^r`` non-edge-of-``G`` pair to ``G'`` i.i.d.

    The result is ``r``-restricted by construction: every added edge joins
    nodes at ``G``-distance in ``[2, r]``.  With ``r = 1`` no edge can be
    added and the result degenerates to ``G' = G``, matching the paper's
    observation that 1-restriction is the reliable case.

    Args:
        g: The reliable graph.
        r: Restriction radius (``r >= 1``).
        probability: Inclusion probability per candidate pair.
        rng: Random stream for reproducibility.
    """
    if r < 1:
        raise TopologyError(f"r must be >= 1, got {r}")
    if not 0.0 <= probability <= 1.0:
        raise TopologyError(f"probability must be in [0,1], got {probability}")
    extra: list[tuple[NodeId, NodeId]] = []
    for v in sorted(g.nodes):
        lengths = nx.single_source_shortest_path_length(g, v, cutoff=r)
        for u, dist in sorted(lengths.items()):
            if u <= v or dist < 2:
                continue
            if rng.bernoulli(probability):
                extra.append((v, u))
    dual = DualGraph.from_edges(
        g.number_of_nodes(),
        g.edges,
        extra,
        name=name or f"r{r}-restricted",
    )
    return dual


def with_arbitrary_unreliable(
    g: nx.Graph,
    extra_edge_count: int,
    rng: RandomSource,
    name: str | None = None,
) -> DualGraph:
    """Add ``extra_edge_count`` uniformly random non-``G`` pairs to ``G'``.

    This realizes the "arbitrary ``G'``" regime: added edges may join nodes
    arbitrarily far apart in ``G`` (or even in different components).
    """
    nodes = sorted(g.nodes)
    n = len(nodes)
    candidates = [
        (nodes[i], nodes[j])
        for i in range(n)
        for j in range(i + 1, n)
        if not g.has_edge(nodes[i], nodes[j])
    ]
    if extra_edge_count > len(candidates):
        raise TopologyError(
            f"requested {extra_edge_count} extra edges but only "
            f"{len(candidates)} candidate pairs exist"
        )
    extra = rng.sample(candidates, extra_edge_count)
    return DualGraph.from_edges(
        n, g.edges, extra, name=name or f"arbitrary+{extra_edge_count}"
    )
