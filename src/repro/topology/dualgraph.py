"""The dual graph ``(G, G')`` — reliable and unreliable connectivity.

This is the package's central topology type.  It validates the model's
structural constraint ``E ⊆ E'`` at construction, precomputes adjacency
sets/tuples for the hot paths (the MAC layer queries neighbors on every
broadcast; the round and radio substrates iterate them every round/slot),
and offers the graph-theoretic helpers the paper's definitions use:
shortest-path distances in ``G``, the power graph ``G^r``, the
``r``-restriction predicate, and the grey-zone embedding predicate.

Performance notes:

* Every query the simulation loop touches — neighbor sets, sorted neighbor
  tuples, node lists, BFS distances, components, diameter, ``G^r`` — is
  answered from arrays/dicts precomputed at construction or from
  **per-instance** caches filled on first use.  networkx is used only to
  *build* and validate the graphs; no hot path calls into it.
* Caches are per-instance (plain dicts), not module-level ``lru_cache``:
  an ``lru_cache`` keyed on ``self`` would pin every :class:`DualGraph`
  (and its networkx graphs) alive process-wide — a real leak across the
  thousands of topologies a parallel sweep builds.
* Instances are treated as immutable after construction (mutating the
  underlying networkx graphs voids the caches); nothing in the package
  mutates them.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Mapping

import networkx as nx

from repro.errors import TopologyError
from repro.ids import NodeId

Position = tuple[float, float]

#: Cap on the number of cached BFS sources per instance (a full all-pairs
#: BFS on n=4096 stays bounded; the cache simply restarts when full).
_BFS_CACHE_MAX = 4096


class DualGraph:
    """A validated dual graph ``(G, G')`` with optional plane embedding.

    Args:
        reliable: The reliable graph ``G``.
        unreliable: The full communication graph ``G'``; must contain every
            vertex and edge of ``G``.  Edges of ``G' \\ G`` are the
            *unreliable* links.
        positions: Optional plane embedding ``p: V → R²`` (required by the
            grey-zone constraint predicate and by geometric generators).
        name: Human-readable label used in experiment reports.

    Raises:
        TopologyError: If the vertex sets differ, ``E ⊄ E'``, or positions
            are given for only part of the vertex set.
    """

    def __init__(
        self,
        reliable: nx.Graph,
        unreliable: nx.Graph,
        positions: Mapping[NodeId, Position] | None = None,
        name: str = "dual-graph",
    ):
        if set(reliable.nodes) != set(unreliable.nodes):
            raise TopologyError("G and G' must share the same vertex set")
        missing = [e for e in reliable.edges if not unreliable.has_edge(*e)]
        if missing:
            raise TopologyError(
                f"E ⊆ E' violated: {len(missing)} reliable edges missing from G' "
                f"(first: {missing[0]})"
            )
        if positions is not None:
            absent = set(reliable.nodes) - set(positions)
            if absent:
                raise TopologyError(
                    f"embedding missing positions for {len(absent)} nodes"
                )
        self.name = name
        self._g = reliable
        self._gp = unreliable
        self.positions: dict[NodeId, Position] | None = (
            dict(positions) if positions is not None else None
        )
        #: Sorted vertex tuple (hot paths iterate this; no per-call sort).
        self._nodes_sorted: tuple[NodeId, ...] = tuple(sorted(reliable.nodes))
        # Precomputed adjacency (hot path for the MAC layer): frozensets
        # for O(1) membership, sorted tuples for deterministic iteration
        # without per-broadcast sorting.
        self._g_adj: dict[NodeId, frozenset[NodeId]] = {
            v: frozenset(reliable.neighbors(v)) for v in reliable.nodes
        }
        self._gp_adj: dict[NodeId, frozenset[NodeId]] = {
            v: frozenset(unreliable.neighbors(v)) for v in unreliable.nodes
        }
        self._unreliable_only_adj: dict[NodeId, frozenset[NodeId]] = {
            v: self._gp_adj[v] - self._g_adj[v] for v in reliable.nodes
        }
        self._g_adj_sorted: dict[NodeId, tuple[NodeId, ...]] = {
            v: tuple(sorted(adj)) for v, adj in self._g_adj.items()
        }
        self._gp_adj_sorted: dict[NodeId, tuple[NodeId, ...]] = {
            v: tuple(sorted(adj)) for v, adj in self._gp_adj.items()
        }
        self._uo_adj_sorted: dict[NodeId, tuple[NodeId, ...]] = {
            v: tuple(sorted(adj))
            for v, adj in self._unreliable_only_adj.items()
        }
        # Per-instance lazy caches (see module docstring).
        self._bfs_cache: dict[NodeId, dict[NodeId, int]] = {}
        self._power_cache: dict[int, nx.Graph] = {}
        self._components_cache: list[frozenset[NodeId]] | None = None
        self._component_of_cache: dict[NodeId, frozenset[NodeId]] | None = None
        self._diameter_cache: int | None = None

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._nodes_sorted)

    @property
    def nodes(self) -> list[NodeId]:
        """Vertex list in sorted order (a fresh list; callers may mutate)."""
        return list(self._nodes_sorted)

    @property
    def nodes_sorted(self) -> tuple[NodeId, ...]:
        """Sorted vertex tuple — the allocation-free hot-path variant."""
        return self._nodes_sorted

    @property
    def reliable_graph(self) -> nx.Graph:
        """The reliable graph ``G`` (do not mutate)."""
        return self._g

    @property
    def unreliable_graph(self) -> nx.Graph:
        """The full graph ``G'`` (do not mutate)."""
        return self._gp

    def reliable_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Neighbors of ``v`` in ``G`` (links the MAC always delivers on)."""
        return self._g_adj[v]

    def gprime_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Neighbors of ``v`` in ``G'`` (all links, reliable or not)."""
        return self._gp_adj[v]

    def unreliable_only_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Neighbors of ``v`` in ``G' \\ G`` (purely unreliable links)."""
        return self._unreliable_only_adj[v]

    def reliable_neighbors_sorted(self, v: NodeId) -> tuple[NodeId, ...]:
        """``reliable_neighbors(v)`` as a precomputed sorted tuple."""
        return self._g_adj_sorted[v]

    def gprime_neighbors_sorted(self, v: NodeId) -> tuple[NodeId, ...]:
        """``gprime_neighbors(v)`` as a precomputed sorted tuple."""
        return self._gp_adj_sorted[v]

    def unreliable_only_neighbors_sorted(self, v: NodeId) -> tuple[NodeId, ...]:
        """``unreliable_only_neighbors(v)`` as a precomputed sorted tuple."""
        return self._uo_adj_sorted[v]

    def is_reliable_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if ``(u, v) ∈ E``."""
        return v in self._g_adj[u]

    def is_gprime_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if ``(u, v) ∈ E'``."""
        return v in self._gp_adj[u]

    @property
    def reliable_edge_count(self) -> int:
        """Number of edges in ``G``."""
        return self._g.number_of_edges()

    @property
    def unreliable_edge_count(self) -> int:
        """Number of edges in ``G' \\ G``."""
        return self._gp.number_of_edges() - self._g.number_of_edges()

    def max_gprime_degree(self) -> int:
        """Maximum degree in ``G'``; bounds worst-case receiver contention."""
        return max((len(adj) for adj in self._gp_adj.values()), default=0)

    # ------------------------------------------------------------------
    # Distances and diameter (w.r.t. G, as in the paper)
    # ------------------------------------------------------------------
    def distances_from(self, source: NodeId) -> dict[NodeId, int]:
        """Hop distances ``d_G(source, ·)`` for the reachable set."""
        return self._bfs(source)

    def _bfs(self, source: NodeId) -> dict[NodeId, int]:
        cached = self._bfs_cache.get(source)
        if cached is not None:
            return cached
        if source not in self._g_adj:
            raise TopologyError(f"unknown node {source}")
        adj = self._g_adj
        dist = {source: 0}
        frontier = deque((source,))
        while frontier:
            v = frontier.popleft()
            d = dist[v] + 1
            for u in adj[v]:
                if u not in dist:
                    dist[u] = d
                    frontier.append(u)
        if len(self._bfs_cache) >= _BFS_CACHE_MAX:
            self._bfs_cache.clear()
        self._bfs_cache[source] = dist
        return dist

    def distance(self, u: NodeId, v: NodeId) -> int:
        """``d_G(u, v)``; raises if disconnected."""
        dist = self._bfs(u).get(v)
        if dist is None:
            raise TopologyError(f"nodes {u} and {v} are not connected in G")
        return dist

    def diameter(self) -> int:
        """Diameter ``D`` of ``G``.

        For disconnected ``G`` (the MMB definition permits it), returns the
        maximum diameter over connected components — the quantity every
        per-component bound in the paper uses.
        """
        if self._diameter_cache is None:
            diam = 0
            for component in self.components():
                if len(component) > 1:
                    for v in component:
                        ecc = max(self._bfs(v).values())
                        if ecc > diam:
                            diam = ecc
            self._diameter_cache = diam
        return self._diameter_cache

    def components(self) -> list[frozenset[NodeId]]:
        """Connected components of ``G``, ordered by smallest member."""
        if self._components_cache is None:
            adj = self._g_adj
            seen: set[NodeId] = set()
            components: list[frozenset[NodeId]] = []
            for start in self._nodes_sorted:
                if start in seen:
                    continue
                component: set[NodeId] = {start}
                stack = [start]
                while stack:
                    v = stack.pop()
                    for u in adj[v]:
                        if u not in component:
                            component.add(u)
                            stack.append(u)
                seen |= component
                components.append(frozenset(component))
            self._components_cache = components
        return self._components_cache

    def component_of(self, v: NodeId) -> frozenset[NodeId]:
        """The connected component of ``v`` in ``G``."""
        if self._component_of_cache is None:
            self._component_of_cache = {
                node: component
                for component in self.components()
                for node in component
            }
        try:
            return self._component_of_cache[v]
        except KeyError:
            raise TopologyError(f"unknown node {v}") from None

    # ------------------------------------------------------------------
    # Paper constraint predicates
    # ------------------------------------------------------------------
    def power_graph(self, r: int) -> nx.Graph:
        """The ``r``-th power ``G^r``: edges between distinct nodes within
        ``r`` hops of each other in ``G`` (no self-loops, paper §3.2).

        Cached per instance and keyed by ``r`` — do not mutate the result.
        """
        if r < 1:
            raise TopologyError(f"power graph exponent must be >= 1, got {r}")
        cached = self._power_cache.get(r)
        if cached is not None:
            return cached
        adj = self._g_adj
        power = nx.Graph()
        power.add_nodes_from(self._g.nodes)
        for v in self._nodes_sorted:
            # Bounded BFS to depth r.
            dist = {v: 0}
            frontier = deque((v,))
            while frontier:
                w = frontier.popleft()
                d = dist[w] + 1
                if d > r:
                    break
                for u in adj[w]:
                    if u not in dist:
                        dist[u] = d
                        frontier.append(u)
            for u in dist:
                if u != v:
                    power.add_edge(v, u)
        self._power_cache[r] = power
        return power

    def is_g_equals_gprime(self) -> bool:
        """True under the original [29/30] assumption ``G' = G``."""
        return self.unreliable_edge_count == 0

    def is_r_restricted(self, r: int) -> bool:
        """True if every ``G'`` edge connects nodes within ``r`` hops in ``G``."""
        for u, v in self._gp.edges:
            if u in self._g_adj[v]:
                continue
            try:
                if self.distance(u, v) > r:
                    return False
            except TopologyError:
                return False
        return True

    def restriction_radius(self) -> int | None:
        """The smallest ``r`` for which ``G'`` is ``r``-restricted.

        Returns None if some ``G'`` edge joins different ``G``-components
        (no finite ``r`` exists — the "arbitrary G'" regime).
        """
        worst = 1
        for u, v in self._gp.edges:
            if u in self._g_adj[v]:
                continue
            try:
                worst = max(worst, self.distance(u, v))
            except TopologyError:
                return None
        return worst

    def is_grey_zone(self, c: float) -> bool:
        """Check the grey-zone constraint for parameter ``c ≥ 1``.

        Requires an embedding and verifies both clauses of the paper's
        definition: (1) ``(u,v) ∈ E`` iff ``‖p(u)−p(v)‖ ≤ 1``; (2) every
        ``(u,v) ∈ E'`` has ``‖p(u)−p(v)‖ ≤ c``.
        """
        if self.positions is None:
            raise TopologyError("grey-zone check requires an embedding")
        if c < 1:
            raise TopologyError(f"grey-zone constant must satisfy c >= 1, got {c}")
        nodes = self._nodes_sorted
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                dist = self.euclidean(u, v)
                in_e = v in self._g_adj[u]
                if in_e != (dist <= 1.0 + 1e-12):
                    return False
        for u, v in self._gp.edges:
            if self.euclidean(u, v) > c + 1e-12:
                return False
        return True

    def euclidean(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance between embedded nodes."""
        if self.positions is None:
            raise TopologyError("no embedding available")
        (ux, uy), (vx, vy) = self.positions[u], self.positions[v]
        return math.hypot(ux - vx, uy - vy)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        n: int,
        reliable_edges: Iterable[tuple[NodeId, NodeId]],
        unreliable_extra_edges: Iterable[tuple[NodeId, NodeId]] = (),
        positions: Mapping[NodeId, Position] | None = None,
        name: str = "dual-graph",
    ) -> "DualGraph":
        """Build a dual graph over nodes ``0..n-1`` from edge lists.

        ``unreliable_extra_edges`` lists only the edges of ``G' \\ G``; the
        reliable edges are included in ``G'`` automatically.
        """
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(reliable_edges)
        gp = nx.Graph()
        gp.add_nodes_from(range(n))
        gp.add_edges_from(g.edges)
        for u, v in unreliable_extra_edges:
            if u == v:
                raise TopologyError(f"self-loop ({u},{v}) not allowed")
            gp.add_edge(u, v)
        return DualGraph(g, gp, positions=positions, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DualGraph({self.name!r}, n={self.n}, "
            f"|E|={self.reliable_edge_count}, "
            f"|E'\\E|={self.unreliable_edge_count})"
        )
