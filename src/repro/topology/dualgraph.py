"""The dual graph ``(G, G')`` — reliable and unreliable connectivity.

This is the package's central topology type.  It validates the model's
structural constraint ``E ⊆ E'`` at construction, precomputes adjacency sets
for the hot paths (the MAC layer queries neighbors on every broadcast), and
offers the graph-theoretic helpers the paper's definitions use: shortest-path
distances in ``G``, the power graph ``G^r``, the ``r``-restriction predicate,
and the grey-zone embedding predicate.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Mapping

import networkx as nx

from repro.errors import TopologyError
from repro.ids import NodeId

Position = tuple[float, float]


class DualGraph:
    """A validated dual graph ``(G, G')`` with optional plane embedding.

    Args:
        reliable: The reliable graph ``G``.
        unreliable: The full communication graph ``G'``; must contain every
            vertex and edge of ``G``.  Edges of ``G' \\ G`` are the
            *unreliable* links.
        positions: Optional plane embedding ``p: V → R²`` (required by the
            grey-zone constraint predicate and by geometric generators).
        name: Human-readable label used in experiment reports.

    Raises:
        TopologyError: If the vertex sets differ, ``E ⊄ E'``, or positions
            are given for only part of the vertex set.
    """

    def __init__(
        self,
        reliable: nx.Graph,
        unreliable: nx.Graph,
        positions: Mapping[NodeId, Position] | None = None,
        name: str = "dual-graph",
    ):
        if set(reliable.nodes) != set(unreliable.nodes):
            raise TopologyError("G and G' must share the same vertex set")
        missing = [e for e in reliable.edges if not unreliable.has_edge(*e)]
        if missing:
            raise TopologyError(
                f"E ⊆ E' violated: {len(missing)} reliable edges missing from G' "
                f"(first: {missing[0]})"
            )
        if positions is not None:
            absent = set(reliable.nodes) - set(positions)
            if absent:
                raise TopologyError(
                    f"embedding missing positions for {len(absent)} nodes"
                )
        self.name = name
        self._g = reliable
        self._gp = unreliable
        self.positions: dict[NodeId, Position] | None = (
            dict(positions) if positions is not None else None
        )
        # Precomputed adjacency (hot path for the MAC layer).
        self._g_adj: dict[NodeId, frozenset[NodeId]] = {
            v: frozenset(reliable.neighbors(v)) for v in reliable.nodes
        }
        self._gp_adj: dict[NodeId, frozenset[NodeId]] = {
            v: frozenset(unreliable.neighbors(v)) for v in unreliable.nodes
        }
        self._unreliable_only_adj: dict[NodeId, frozenset[NodeId]] = {
            v: self._gp_adj[v] - self._g_adj[v] for v in reliable.nodes
        }

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._g.number_of_nodes()

    @property
    def nodes(self) -> list[NodeId]:
        """Vertex list in sorted order."""
        return sorted(self._g.nodes)

    @property
    def reliable_graph(self) -> nx.Graph:
        """The reliable graph ``G`` (do not mutate)."""
        return self._g

    @property
    def unreliable_graph(self) -> nx.Graph:
        """The full graph ``G'`` (do not mutate)."""
        return self._gp

    def reliable_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Neighbors of ``v`` in ``G`` (links the MAC always delivers on)."""
        return self._g_adj[v]

    def gprime_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Neighbors of ``v`` in ``G'`` (all links, reliable or not)."""
        return self._gp_adj[v]

    def unreliable_only_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Neighbors of ``v`` in ``G' \\ G`` (purely unreliable links)."""
        return self._unreliable_only_adj[v]

    def is_reliable_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if ``(u, v) ∈ E``."""
        return v in self._g_adj[u]

    def is_gprime_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if ``(u, v) ∈ E'``."""
        return v in self._gp_adj[u]

    @property
    def reliable_edge_count(self) -> int:
        """Number of edges in ``G``."""
        return self._g.number_of_edges()

    @property
    def unreliable_edge_count(self) -> int:
        """Number of edges in ``G' \\ G``."""
        return self._gp.number_of_edges() - self._g.number_of_edges()

    def max_gprime_degree(self) -> int:
        """Maximum degree in ``G'``; bounds worst-case receiver contention."""
        return max((len(adj) for adj in self._gp_adj.values()), default=0)

    # ------------------------------------------------------------------
    # Distances and diameter (w.r.t. G, as in the paper)
    # ------------------------------------------------------------------
    def distances_from(self, source: NodeId) -> dict[NodeId, int]:
        """Hop distances ``d_G(source, ·)`` for the reachable set."""
        return self._bfs(source)

    @lru_cache(maxsize=4096)
    def _bfs(self, source: NodeId) -> dict[NodeId, int]:
        return dict(nx.single_source_shortest_path_length(self._g, source))

    def distance(self, u: NodeId, v: NodeId) -> int:
        """``d_G(u, v)``; raises if disconnected."""
        dist = self._bfs(u).get(v)
        if dist is None:
            raise TopologyError(f"nodes {u} and {v} are not connected in G")
        return dist

    def diameter(self) -> int:
        """Diameter ``D`` of ``G``.

        For disconnected ``G`` (the MMB definition permits it), returns the
        maximum diameter over connected components — the quantity every
        per-component bound in the paper uses.
        """
        diam = 0
        for component in nx.connected_components(self._g):
            sub = self._g.subgraph(component)
            if sub.number_of_nodes() > 1:
                diam = max(diam, nx.diameter(sub))
        return diam

    def components(self) -> list[frozenset[NodeId]]:
        """Connected components of ``G``."""
        return [frozenset(c) for c in nx.connected_components(self._g)]

    def component_of(self, v: NodeId) -> frozenset[NodeId]:
        """The connected component of ``v`` in ``G``."""
        return frozenset(nx.node_connected_component(self._g, v))

    # ------------------------------------------------------------------
    # Paper constraint predicates
    # ------------------------------------------------------------------
    def power_graph(self, r: int) -> nx.Graph:
        """The ``r``-th power ``G^r``: edges between distinct nodes within
        ``r`` hops of each other in ``G`` (no self-loops, paper §3.2)."""
        if r < 1:
            raise TopologyError(f"power graph exponent must be >= 1, got {r}")
        power = nx.Graph()
        power.add_nodes_from(self._g.nodes)
        for v in self._g.nodes:
            lengths = nx.single_source_shortest_path_length(self._g, v, cutoff=r)
            for u, dist in lengths.items():
                if u != v and dist <= r:
                    power.add_edge(v, u)
        return power

    def is_g_equals_gprime(self) -> bool:
        """True under the original [29/30] assumption ``G' = G``."""
        return self.unreliable_edge_count == 0

    def is_r_restricted(self, r: int) -> bool:
        """True if every ``G'`` edge connects nodes within ``r`` hops in ``G``."""
        for u, v in self._gp.edges:
            if u in self._g_adj[v]:
                continue
            try:
                if self.distance(u, v) > r:
                    return False
            except TopologyError:
                return False
        return True

    def restriction_radius(self) -> int | None:
        """The smallest ``r`` for which ``G'`` is ``r``-restricted.

        Returns None if some ``G'`` edge joins different ``G``-components
        (no finite ``r`` exists — the "arbitrary G'" regime).
        """
        worst = 1
        for u, v in self._gp.edges:
            if u in self._g_adj[v]:
                continue
            try:
                worst = max(worst, self.distance(u, v))
            except TopologyError:
                return None
        return worst

    def is_grey_zone(self, c: float) -> bool:
        """Check the grey-zone constraint for parameter ``c ≥ 1``.

        Requires an embedding and verifies both clauses of the paper's
        definition: (1) ``(u,v) ∈ E`` iff ``‖p(u)−p(v)‖ ≤ 1``; (2) every
        ``(u,v) ∈ E'`` has ``‖p(u)−p(v)‖ ≤ c``.
        """
        if self.positions is None:
            raise TopologyError("grey-zone check requires an embedding")
        if c < 1:
            raise TopologyError(f"grey-zone constant must satisfy c >= 1, got {c}")
        nodes = self.nodes
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                dist = self.euclidean(u, v)
                in_e = v in self._g_adj[u]
                if in_e != (dist <= 1.0 + 1e-12):
                    return False
        for u, v in self._gp.edges:
            if self.euclidean(u, v) > c + 1e-12:
                return False
        return True

    def euclidean(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance between embedded nodes."""
        if self.positions is None:
            raise TopologyError("no embedding available")
        (ux, uy), (vx, vy) = self.positions[u], self.positions[v]
        return math.hypot(ux - vx, uy - vy)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        n: int,
        reliable_edges: Iterable[tuple[NodeId, NodeId]],
        unreliable_extra_edges: Iterable[tuple[NodeId, NodeId]] = (),
        positions: Mapping[NodeId, Position] | None = None,
        name: str = "dual-graph",
    ) -> "DualGraph":
        """Build a dual graph over nodes ``0..n-1`` from edge lists.

        ``unreliable_extra_edges`` lists only the edges of ``G' \\ G``; the
        reliable edges are included in ``G'`` automatically.
        """
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(reliable_edges)
        gp = nx.Graph()
        gp.add_nodes_from(range(n))
        gp.add_edges_from(g.edges)
        for u, v in unreliable_extra_edges:
            if u == v:
                raise TopologyError(f"self-loop ({u},{v}) not allowed")
            gp.add_edge(u, v)
        return DualGraph(g, gp, positions=positions, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DualGraph({self.name!r}, n={self.n}, "
            f"|E|={self.reliable_edge_count}, "
            f"|E'\\E|={self.unreliable_edge_count})"
        )
