"""Built-in fault scenarios: recipes that compile to fault plans.

Builder convention (mirrors the other registries): ``build(dual, rng,
**params) -> FaultPlan``.  Every random choice — victims, times, phases —
is drawn here, from the execution's seed-derived ``faults`` stream, in a
fixed iteration order; applying the resulting plan consumes no randomness.

All times are absolute simulated time.  ``horizon`` bounds the generated
timeline (flap waveforms and churn processes stop there); crash windows are
expressed as fractions of it so one scenario scales across experiments of
different lengths.

The scenarios here are deliberately composable knobs, not a taxonomy:

* ``crash_random`` — a fraction of nodes fail at random times (optionally
  recovering), the classic crash-fault model of Zhang & Tseng's
  fault-tolerance treatment of the abstract MAC layer;
* ``crash_targeted`` — the adversary fails the highest-``G'``-degree hubs
  (the nodes most likely to carry MIS/overlay leadership);
* ``flap_periodic`` / ``flap_random`` — grey-zone edges oscillate between
  reliable and merely-unreliable, the time-varying-topology regime of
  Ahmadi & Kuhn's dynamic radio networks;
* ``churn_poisson`` — Poisson node arrivals (with their messages) and
  departures;
* ``none`` — the empty plan (specs default to it).
"""

from __future__ import annotations

import math

from repro.errors import ExperimentError
from repro.experiments.registries import register_fault
from repro.faults.events import Edge, FaultEvent, FaultKind, canonical_edge
from repro.faults.plan import FaultPlan
from repro.ids import NodeId
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph

#: Default timeline bound; covers the stock CLI/benchmark experiments.
DEFAULT_HORIZON = 100.0


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ExperimentError(f"{name} must be in [0, 1], got {value}")


def _grey_edges(dual: DualGraph) -> list[Edge]:
    """The flappable (``G' \\ G``) edges in canonical sorted order."""
    edges = [
        canonical_edge(u, v)
        for u, v in dual.unreliable_graph.edges
        if not dual.is_reliable_edge(u, v)
    ]
    return sorted(edges)


def _exponential(rng: RandomSource, mean: float) -> float:
    """An Exp(1/mean) draw from the plan's stream."""
    return -math.log(1.0 - rng.random()) * mean


@register_fault("none")
def _build_none(dual: DualGraph, rng: RandomSource) -> FaultPlan:
    """The empty plan: a faulted code path with zero faults."""
    return FaultPlan(name="none")


@register_fault("crash_random")
def _build_crash_random(
    dual: DualGraph,
    rng: RandomSource,
    fraction: float = 0.2,
    horizon: float = DEFAULT_HORIZON,
    earliest: float = 0.05,
    latest: float = 0.5,
    recover_after: float = 0.0,
    min_survivors: int = 1,
) -> FaultPlan:
    """Uniformly chosen victims crash at uniform times in a window.

    Args:
        fraction: Target fraction of nodes to crash (clamped so at least
            ``min_survivors`` nodes stay up).
        horizon: Timeline bound.
        earliest / latest: Crash window as fractions of ``horizon``.
        recover_after: If positive, every victim recovers that long after
            its crash (crash-recover model); 0 means fail-stop.
        min_survivors: Lower bound on the number of untouched nodes.
    """
    _check_fraction("fraction", fraction)
    if not 0.0 <= earliest <= latest <= 1.0:
        raise ExperimentError(
            f"need 0 <= earliest <= latest <= 1, got {earliest}, {latest}"
        )
    nodes = dual.nodes
    count = min(int(round(fraction * len(nodes))), max(len(nodes) - min_survivors, 0))
    victims = rng.sample(nodes, count)
    events: list[FaultEvent] = []
    for node in victims:
        at = rng.uniform(earliest * horizon, latest * horizon)
        events.append(FaultEvent(at, FaultKind.CRASH, node=node))
        if recover_after > 0:
            events.append(
                FaultEvent(at + recover_after, FaultKind.RECOVER, node=node)
            )
    return FaultPlan.of(events, name="crash_random")


@register_fault("crash_targeted")
def _build_crash_targeted(
    dual: DualGraph,
    rng: RandomSource,
    count: int = 1,
    at: float = 0.25,
    horizon: float = DEFAULT_HORIZON,
    by: str = "degree",
) -> FaultPlan:
    """Crash the structurally most important nodes at one instant.

    ``by="degree"`` fails the highest-``G'``-degree hubs — the nodes most
    likely to be MIS leaders / overlay relays — which is the adversarial
    counterpart of ``crash_random``.  ``by="id"`` fails the largest ids
    (the FloodMax leaders).
    """
    if count < 0:
        raise ExperimentError(f"count must be >= 0, got {count}")
    if by not in ("degree", "id"):
        raise ExperimentError(f"by must be 'degree' or 'id', got {by!r}")
    count = min(count, dual.n - 1)
    if by == "degree":
        ranked = sorted(
            dual.nodes, key=lambda v: (-len(dual.gprime_neighbors(v)), v)
        )
    else:
        ranked = sorted(dual.nodes, reverse=True)
    events = [
        FaultEvent(at * horizon, FaultKind.CRASH, node=node)
        for node in ranked[:count]
    ]
    return FaultPlan.of(events, name="crash_targeted")


@register_fault("flap_periodic")
def _build_flap_periodic(
    dual: DualGraph,
    rng: RandomSource,
    fraction: float = 0.5,
    period: float = 10.0,
    duty: float = 0.5,
    horizon: float = DEFAULT_HORIZON,
    jitter: bool = True,
) -> FaultPlan:
    """Selected grey-zone edges oscillate reliable/unreliable periodically.

    Each selected edge repeats: up (reliable) for ``duty x period``, then
    down (grey) for the rest of the period.  With ``jitter`` every edge
    gets a random phase so the network never flaps in lock-step.
    """
    _check_fraction("fraction", fraction)
    _check_fraction("duty", duty)
    if period <= 0:
        raise ExperimentError(f"period must be positive, got {period}")
    if duty == 0.0:
        # Never up: the coincident UP/DOWN pairs a zero-length pulse would
        # emit sort DOWN-before-UP and invert the waveform, so emit none.
        return FaultPlan(name="flap_periodic")
    grey = _grey_edges(dual)
    chosen = rng.sample(grey, int(round(fraction * len(grey))))
    events: list[FaultEvent] = []
    for edge in sorted(chosen):
        phase = rng.uniform(0.0, period) if jitter else 0.0
        t = phase
        while t < horizon:
            events.append(FaultEvent(t, FaultKind.LINK_UP, edge=edge))
            down_at = t + duty * period
            if down_at < horizon:
                events.append(FaultEvent(down_at, FaultKind.LINK_DOWN, edge=edge))
            t += period
    return FaultPlan.of(events, name="flap_periodic")


@register_fault("flap_random")
def _build_flap_random(
    dual: DualGraph,
    rng: RandomSource,
    fraction: float = 0.5,
    mean_up: float = 5.0,
    mean_down: float = 5.0,
    horizon: float = DEFAULT_HORIZON,
) -> FaultPlan:
    """Selected grey-zone edges flap with exponential up/down durations."""
    _check_fraction("fraction", fraction)
    if mean_up <= 0 or mean_down <= 0:
        raise ExperimentError(
            f"mean durations must be positive (up={mean_up}, down={mean_down})"
        )
    grey = _grey_edges(dual)
    chosen = rng.sample(grey, int(round(fraction * len(grey))))
    events: list[FaultEvent] = []
    for edge in sorted(chosen):
        t = _exponential(rng, mean_down)
        while t < horizon:
            events.append(FaultEvent(t, FaultKind.LINK_UP, edge=edge))
            t += _exponential(rng, mean_up)
            if t >= horizon:
                break
            events.append(FaultEvent(t, FaultKind.LINK_DOWN, edge=edge))
            t += _exponential(rng, mean_down)
    return FaultPlan.of(events, name="flap_random")


@register_fault("churn_poisson")
def _build_churn_poisson(
    dual: DualGraph,
    rng: RandomSource,
    join_fraction: float = 0.25,
    leave_fraction: float = 0.0,
    mean_gap: float = 5.0,
    start: float = 0.0,
    horizon: float = DEFAULT_HORIZON,
    min_survivors: int = 1,
) -> FaultPlan:
    """Poisson churn: late arrivals (with their messages) and departures.

    A ``join_fraction`` of nodes starts absent and joins at the points of
    a Poisson process (mean inter-arrival ``mean_gap``); a
    ``leave_fraction`` of the remaining nodes departs on an independent
    Poisson process.  Messages assigned to a late node are injected the
    moment it joins.  The timeline respects ``horizon``: every absentee
    joins by then (join points past it are clamped to the horizon, since
    a node that never joins would strand its messages forever), and
    departures drawn past it are dropped.
    """
    _check_fraction("join_fraction", join_fraction)
    _check_fraction("leave_fraction", leave_fraction)
    if mean_gap <= 0:
        raise ExperimentError(f"mean_gap must be positive, got {mean_gap}")
    nodes = dual.nodes
    join_count = min(int(round(join_fraction * len(nodes))), len(nodes) - 1)
    joiners = rng.sample(nodes, join_count)
    if horizon <= start:
        raise ExperimentError(
            f"churn horizon must exceed start ({horizon} <= {start})"
        )
    events: list[FaultEvent] = []
    t = start
    for node in joiners:
        t += _exponential(rng, mean_gap)
        events.append(FaultEvent(min(t, horizon), FaultKind.JOIN, node=node))
    stayers: list[NodeId] = [v for v in nodes if v not in set(joiners)]
    leave_count = min(
        int(round(leave_fraction * len(nodes))),
        max(len(stayers) - min_survivors, 0),
    )
    leavers = rng.sample(stayers, leave_count)
    t = start
    for node in leavers:
        t += _exponential(rng, mean_gap)
        if t < horizon:
            events.append(FaultEvent(t, FaultKind.LEAVE, node=node))
    return FaultPlan.of(events, initially_absent=joiners, name="churn_poisson")
