"""Solution criteria under faults: MMB among the survivors.

The paper's MMB criterion — every message reaches its origin's whole
``G``-component — is unattainable once nodes crash.  The faulted criterion
implemented here is the standard relaxation from the crash-fault
literature: a run *solves MMB among survivors* when every message that was
actually injected (not lost to a dead origin) reaches every **surviving**
node of its origin's base-graph component.  Nodes that crashed or left owe
nothing; messages the environment could not inject require nothing (they
are tallied in ``messages_lost`` instead); and — per the dynamic-network
convention — a churn arrival is owed only the messages that arrive at or
after its join (plus its own), since no algorithm can deliver a flood that
finished before the node existed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.faults.engine import FaultEngine
from repro.ids import MessageAssignment, MessageId, NodeId, Time
from repro.topology.dualgraph import DualGraph


@dataclass(frozen=True)
class FaultOutcome:
    """MMB outcome of a faulted execution.

    Attributes:
        solved: True when every surviving requirement was met.
        completion_time: Time of the last surviving required delivery
            (``inf`` when unsolved, 0.0 when nothing was required).
        required: Number of (survivor, message) delivery obligations.
        met: How many of them were fulfilled.
    """

    solved: bool
    completion_time: Time
    required: int
    met: int

    def metrics(self) -> dict[str, float]:
        """Scalar metrics for :class:`ExperimentResult.metrics`."""
        return {
            "survivor_required": float(self.required),
            "survivor_delivered": float(self.met),
            "survivor_solved": float(self.solved),
        }


def survivor_outcome(
    dual: DualGraph,
    assignment: MessageAssignment,
    delivery_times: Mapping[tuple[NodeId, MessageId], Time],
    engine: FaultEngine,
    arrival_times: Mapping[MessageId, Time] | None = None,
) -> FaultOutcome:
    """Evaluate the among-survivors MMB criterion for one execution.

    Args:
        dual: The base network (components are taken in the static ``G``;
            a fault-induced partition shows up as unmet obligations, which
            is the honest accounting for a resilience benchmark).
        assignment: The static message placement.
        delivery_times: ``(node, mid) -> time`` of every recorded delivery.
        engine: The fault engine after the run (final aliveness, join
            times, and the lost message ids).
        arrival_times: ``mid -> injection time``; defaults to time 0 for
            every message (the paper's main-body workload).  Used to
            excuse churn arrivals from messages that predate their join.

    Returns:
        The :class:`FaultOutcome`.
    """
    arrivals = arrival_times or {}
    solved = True
    completion: Time = 0.0
    required = 0
    met = 0
    for node, messages in sorted(assignment.messages.items()):
        component = dual.component_of(node)
        survivors = [v for v in sorted(component) if engine.is_active(v)]
        origin_join = engine.join_time(node)
        for message in messages:
            if message.mid in engine.lost_message_ids:
                continue
            arrived_at = arrivals.get(message.mid, 0.0)
            if origin_join is not None:
                # A churn-in origin's messages travel with it: they are
                # actually injected at its join, not at their nominal time.
                arrived_at = max(arrived_at, origin_join)
            for member in survivors:
                joined_at = engine.join_time(member)
                if (
                    joined_at is not None
                    and member != node
                    and arrived_at < joined_at
                ):
                    # A churn arrival is not owed floods that finished (or
                    # started) before it existed — only its own messages
                    # and those injected from its join onward.
                    continue
                required += 1
                time = delivery_times.get((member, message.mid))
                if time is None:
                    solved = False
                else:
                    met += 1
                    completion = max(completion, time)
    if not solved:
        completion = math.inf
    return FaultOutcome(
        solved=solved, completion_time=completion, required=required, met=met
    )
