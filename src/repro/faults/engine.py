"""The fault engine: replays a :class:`~repro.faults.plan.FaultPlan`.

One engine instance drives one execution.  It owns the dynamic state the
plan induces — which nodes are active, which grey-zone edges are currently
promoted to reliable — and exposes it two ways:

* **point queries** (:meth:`FaultEngine.is_active`,
  :meth:`FaultEngine.is_reliable_edge`) for the MAC layers' hot paths;
* an :class:`EffectiveDualView` snapshot (:meth:`FaultEngine.view`) with
  the same neighbor-query surface as :class:`~repro.topology.DualGraph`,
  so schedulers and postconditions written against the static topology run
  unmodified against the faulted one.

Time advancement comes in two flavors matching the substrates' clocks:

* :meth:`install` chains the plan into a discrete-event
  :class:`~repro.sim.kernel.Simulator` (standard/protocol substrates) at
  priority :data:`PRIORITY_FAULT`, so fault transitions apply before any
  same-instant MAC event;
* :meth:`advance_to` applies all events up to a given time (rounds and
  radio substrates, which poll once per slot).

The engine consumes **no randomness** — every choice was drawn when the
plan was built — so a faulted run is exactly as reproducible as a
fault-free one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import ExperimentError
from repro.faults.events import Edge, FaultEvent, FaultKind
from repro.faults.plan import FaultPlan, validate_plan
from repro.ids import TIME_EPS, NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.topology.dualgraph import DualGraph

#: Event priority for fault transitions: below the MAC's wakeups (-2),
#: arrivals (-1), rcv (0), and ack (1) events, so a same-instant fault
#: applies before the execution reacts to that instant.
PRIORITY_FAULT = -3


class EffectiveDualView:
    """A read-only, fault-filtered snapshot of a dual graph.

    Exposes the neighbor/component query surface of
    :class:`~repro.topology.DualGraph` restricted to active nodes, with
    flapped-up grey edges counted as reliable.  Queries about inactive
    nodes return empty sets rather than raising, so schedulers iterating a
    stale node id degrade gracefully.
    """

    def __init__(
        self,
        base: "DualGraph",
        active: frozenset[NodeId],
        up_edges: frozenset[Edge],
        epoch: int = 0,
    ):
        self.base = base
        #: Fault-engine epoch this snapshot was built at (diagnostics).
        self.epoch = epoch
        self._active = active
        self._up_edges = up_edges
        up_adjacent: dict[NodeId, set[NodeId]] = {}
        for u, v in up_edges:
            up_adjacent.setdefault(u, set()).add(v)
            up_adjacent.setdefault(v, set()).add(u)
        self._rel: dict[NodeId, frozenset[NodeId]] = {}
        self._gp: dict[NodeId, frozenset[NodeId]] = {}
        for v in base.nodes_sorted:
            if v not in active:
                continue
            promoted = up_adjacent.get(v, ())
            self._rel[v] = (
                base.reliable_neighbors(v) | frozenset(promoted)
            ) & active
            self._gp[v] = base.gprime_neighbors(v) & active
        # Lazy per-view memos (a view is an immutable snapshot).
        self._nodes_sorted: tuple[NodeId, ...] | None = None
        self._rel_sorted: dict[NodeId, tuple[NodeId, ...]] = {}
        self._gp_sorted: dict[NodeId, tuple[NodeId, ...]] = {}
        self._uo_sorted: dict[NodeId, tuple[NodeId, ...]] = {}
        self._components_cache: list[frozenset[NodeId]] | None = None

    # ------------------------------------------------------------------
    # DualGraph query surface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of active nodes."""
        return len(self._rel)

    @property
    def nodes(self) -> list[NodeId]:
        """Active nodes in sorted order."""
        return list(self.nodes_sorted)

    @property
    def nodes_sorted(self) -> tuple[NodeId, ...]:
        """Active nodes as a cached sorted tuple (hot-path variant)."""
        if self._nodes_sorted is None:
            self._nodes_sorted = tuple(sorted(self._rel))
        return self._nodes_sorted

    def is_active(self, v: NodeId) -> bool:
        """True when ``v`` participates in the execution right now."""
        return v in self._active

    def reliable_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Active effective-``G`` neighbors (base reliable + flapped-up)."""
        return self._rel.get(v, frozenset())

    def gprime_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Active ``G'`` neighbors."""
        return self._gp.get(v, frozenset())

    def unreliable_only_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Active neighbors currently reachable only unreliably."""
        return self._gp.get(v, frozenset()) - self._rel.get(v, frozenset())

    def reliable_neighbors_sorted(self, v: NodeId) -> tuple[NodeId, ...]:
        """``reliable_neighbors(v)`` as a memoized sorted tuple."""
        cached = self._rel_sorted.get(v)
        if cached is None:
            cached = tuple(sorted(self._rel.get(v, ())))
            self._rel_sorted[v] = cached
        return cached

    def gprime_neighbors_sorted(self, v: NodeId) -> tuple[NodeId, ...]:
        """``gprime_neighbors(v)`` as a memoized sorted tuple."""
        cached = self._gp_sorted.get(v)
        if cached is None:
            cached = tuple(sorted(self._gp.get(v, ())))
            self._gp_sorted[v] = cached
        return cached

    def unreliable_only_neighbors_sorted(self, v: NodeId) -> tuple[NodeId, ...]:
        """``unreliable_only_neighbors(v)`` as a memoized sorted tuple."""
        cached = self._uo_sorted.get(v)
        if cached is None:
            cached = tuple(sorted(self.unreliable_only_neighbors(v)))
            self._uo_sorted[v] = cached
        return cached

    def is_reliable_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if ``(u, v)`` currently counts as a reliable edge."""
        return v in self._rel.get(u, frozenset())

    def is_gprime_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if ``(u, v)`` is usable at all right now."""
        return v in self._gp.get(u, frozenset())

    def max_gprime_degree(self) -> int:
        """Maximum active ``G'`` degree."""
        return max((len(adj) for adj in self._gp.values()), default=0)

    def components(self) -> list[frozenset[NodeId]]:
        """Connected components of the effective reliable graph (cached)."""
        if self._components_cache is not None:
            return self._components_cache
        seen: set[NodeId] = set()
        components: list[frozenset[NodeId]] = []
        for start in self.nodes_sorted:
            if start in seen:
                continue
            stack = [start]
            component: set[NodeId] = set()
            while stack:
                v = stack.pop()
                if v in component:
                    continue
                component.add(v)
                stack.extend(self._rel[v] - component)
            seen |= component
            components.append(frozenset(component))
        self._components_cache = components
        return components

    def component_of(self, v: NodeId) -> frozenset[NodeId]:
        """The effective component containing ``v`` (empty if inactive)."""
        for component in self.components():
            if v in component:
                return component
        return frozenset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EffectiveDualView(n={self.n}/{self.base.n}, "
            f"up_edges={len(self._up_edges)})"
        )


class FaultEngine:
    """Applies one fault plan to one execution, deterministically.

    Args:
        dual: The base network (validated against the plan).
        plan: The fault timeline to replay.

    Attributes:
        listener: Optional substrate hook object; if set, the engine calls
            ``fault_node_down(node, kind)``, ``fault_node_up(node, kind)``,
            and ``fault_link_changed(edge, up)`` as transitions apply (only
            the methods that exist are called).
    """

    def __init__(self, dual: "DualGraph", plan: FaultPlan):
        validate_plan(plan, dual)
        self.dual = dual
        self.plan = plan
        self.listener = None
        self._cursor = 0
        self._down: set[NodeId] = set(plan.initially_absent)
        self._awaiting_join: set[NodeId] = set(plan.initially_absent)
        self._join_times: dict[NodeId, Time] = {}
        for event in plan.events:
            if (
                event.kind is FaultKind.JOIN
                and event.node in plan.initially_absent
                and event.node not in self._join_times
            ):
                self._join_times[event.node] = event.time
        self._up_edges: set[Edge] = set()
        self._up_adjacent: dict[NodeId, set[NodeId]] = {}
        self._view: EffectiveDualView | None = None
        self._sim: "Simulator" | None = None
        #: Monotone counter bumped by every applied transition.  All derived
        #: state (the cached view, memoized neighbor sets) is valid exactly
        #: while the epoch is unchanged, so steady-state queries are O(1)
        #: cache hits instead of per-event recomputation.
        self.epoch = 0
        self._none_down = not self._down
        self._eff_rel_cache: dict[NodeId, frozenset[NodeId]] = {}
        self.counters: dict[str, int] = {
            "crashes": 0,
            "recoveries": 0,
            "joins": 0,
            "leaves": 0,
            "link_flaps": 0,
            "messages_lost": 0,
            "messages_deferred": 0,
            "bcasts_aborted": 0,
            "bcasts_suppressed": 0,
            "deliveries_dropped": 0,
        }
        self.lost_message_ids: set[str] = set()

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def is_active(self, node: NodeId) -> bool:
        """True when ``node`` is currently participating.

        O(1): a flag short-circuits the common quiescent case (nobody
        down), otherwise one set-membership test.
        """
        return self._none_down or node not in self._down

    @property
    def quiescent(self) -> bool:
        """True when every plan event has been applied (nothing can change
        the effective topology anymore — caches are permanently valid)."""
        return self._cursor >= len(self.plan.events)

    def is_awaiting_join(self, node: NodeId) -> bool:
        """True when ``node`` is a churn arrival that has not joined yet."""
        return node in self._awaiting_join

    def join_time(self, node: NodeId) -> Time | None:
        """When a churn arrival (initially absent node) joins; None if the
        node was present from the start."""
        return self._join_times.get(node)

    def active_nodes(self) -> list[NodeId]:
        """Currently active nodes, sorted."""
        return [v for v in self.dual.nodes_sorted if v not in self._down]

    def is_reliable_edge(self, u: NodeId, v: NodeId) -> bool:
        """Effective reliability of ``(u, v)`` (ignores node liveness)."""
        return self.dual.is_reliable_edge(u, v) or (
            v in self._up_adjacent.get(u, ())
        )

    def effective_reliable_neighbors(self, v: NodeId) -> frozenset[NodeId]:
        """Active effective-reliable neighbors of ``v`` right now.

        Point query in O(deg(v)) on first use, O(1) afterwards: results are
        memoized per node and the memo lives exactly one epoch — flap
        scenarios that invalidate the full-view cache on every link event
        only pay for the nodes actually queried, never a quadratic rebuild.
        """
        cached = self._eff_rel_cache.get(v)
        if cached is not None:
            return cached
        base = self.dual.reliable_neighbors(v)
        promoted = self._up_adjacent.get(v)
        if promoted:
            base = base | promoted
        if self._none_down:
            result = frozenset(base)
        else:
            result = frozenset(u for u in base if u not in self._down)
        self._eff_rel_cache[v] = result
        return result

    def view(self) -> EffectiveDualView:
        """The current effective topology (cached until the epoch changes)."""
        if self._view is None:
            self._view = EffectiveDualView(
                self.dual,
                frozenset(
                    v for v in self.dual.nodes_sorted if v not in self._down
                ),
                frozenset(self._up_edges),
                epoch=self.epoch,
            )
        return self._view

    def classify_arrival(self, node: NodeId, mid: str) -> tuple[str, Time | None]:
        """Disposition of an environment arrival at ``node`` right now.

        Returns ``("deliver", None)`` for an active node, ``("defer", t)``
        when the node is a churn arrival joining at ``t`` (the message
        travels with it), or ``("lost", None)`` when the node is dead.
        The deferred/lost accounting happens here, so every substrate
        reports churn identically.
        """
        if self.is_awaiting_join(node):
            join_at = self.next_up_time(node)
            if join_at is not None:
                self.note("messages_deferred")
                return ("defer", join_at)
            # Unreachable in practice: plans validate that absentees join.
            self.note_lost_message(mid)
            return ("lost", None)
        if not self.is_active(node):
            self.note_lost_message(mid)
            return ("lost", None)
        return ("deliver", None)

    def next_up_time(self, node: NodeId) -> Time | None:
        """Time of the node's next pending JOIN/RECOVER event, if any."""
        for event in self._remaining():
            if event.node == node and event.kind in (
                FaultKind.JOIN,
                FaultKind.RECOVER,
            ):
                return event.time
        return None

    def _remaining(self) -> Iterator[FaultEvent]:
        return iter(self.plan.events[self._cursor :])

    @property
    def pending_events(self) -> int:
        """Number of plan events not yet applied."""
        return len(self.plan.events) - self._cursor

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------
    def advance_to(self, time: Time) -> int:
        """Apply every event with ``event.time <= time``; returns how many."""
        applied = 0
        while self._cursor < len(self.plan.events):
            event = self.plan.events[self._cursor]
            if event.time > time + TIME_EPS:
                break
            self._apply(event)
            applied += 1
        return applied

    def install(self, sim: "Simulator") -> None:
        """Chain the plan into a simulator (one pending event at a time)."""
        if self._sim is not None:
            raise ExperimentError("fault engine already installed")
        self._sim = sim
        self._schedule_next()

    def _schedule_next(self) -> None:
        assert self._sim is not None
        if self._cursor < len(self.plan.events):
            event = self.plan.events[self._cursor]
            self._sim.schedule_at(
                event.time, self._fire_installed, priority=PRIORITY_FAULT
            )

    def _fire_installed(self) -> None:
        self._apply(self.plan.events[self._cursor])
        self._schedule_next()

    # ------------------------------------------------------------------
    # Transition application
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        self._cursor += 1
        kind = event.kind
        if kind is FaultKind.CRASH or kind is FaultKind.LEAVE:
            if event.node in self._down:
                return  # already down; nothing changes
            self._down.add(event.node)
            self.counters["crashes" if kind is FaultKind.CRASH else "leaves"] += 1
            self._invalidate()
            self._notify("fault_node_down", event.node, kind)
        elif kind is FaultKind.RECOVER or kind is FaultKind.JOIN:
            if event.node not in self._down:
                return
            self._down.discard(event.node)
            self._awaiting_join.discard(event.node)
            self.counters[
                "recoveries" if kind is FaultKind.RECOVER else "joins"
            ] += 1
            self._invalidate()
            self._notify("fault_node_up", event.node, kind)
        elif kind is FaultKind.LINK_UP:
            if event.edge not in self._up_edges:
                self._up_edges.add(event.edge)
                u, v = event.edge
                self._up_adjacent.setdefault(u, set()).add(v)
                self._up_adjacent.setdefault(v, set()).add(u)
                self.counters["link_flaps"] += 1
                self._invalidate()
                self._notify("fault_link_changed", event.edge, True)
        else:  # LINK_DOWN
            if event.edge in self._up_edges:
                self._up_edges.discard(event.edge)
                u, v = event.edge
                self._up_adjacent[u].discard(v)
                self._up_adjacent[v].discard(u)
                self.counters["link_flaps"] += 1
                self._invalidate()
                self._notify("fault_link_changed", event.edge, False)

    def _invalidate(self) -> None:
        self.epoch += 1
        self._view = None
        self._none_down = not self._down
        self._eff_rel_cache.clear()

    def _notify(self, hook: str, *args) -> None:
        if self.listener is not None:
            method = getattr(self.listener, hook, None)
            if method is not None:
                method(*args)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def note(self, counter: str, count: int = 1) -> None:
        """Increment a substrate-reported counter (e.g. dropped deliveries)."""
        self.counters[counter] = self.counters.get(counter, 0) + count

    def note_lost_message(self, mid: str) -> None:
        """Record an environment message that could not be injected."""
        self.lost_message_ids.add(mid)
        self.note("messages_lost")

    def metrics(self) -> dict[str, float]:
        """Scalar fault metrics for :class:`ExperimentResult.metrics`."""
        c = self.counters
        return {
            "fault_events_applied": float(self._cursor),
            "nodes_crashed": float(c["crashes"]),
            "nodes_recovered": float(c["recoveries"]),
            "nodes_joined": float(c["joins"]),
            "nodes_left": float(c["leaves"]),
            "link_flap_events": float(c["link_flaps"]),
            "messages_lost": float(c["messages_lost"]),
            "messages_deferred": float(c["messages_deferred"]),
            "bcasts_aborted_by_fault": float(c["bcasts_aborted"]),
            "bcasts_suppressed": float(c["bcasts_suppressed"]),
            "deliveries_dropped": float(c["deliveries_dropped"]),
            "survivors": float(len(self.dual.nodes) - len(self._down)),
        }
