"""``repro.faults`` — deterministic fault and dynamics injection.

The paper's executions assume fault-free nodes on a static dual graph;
this subsystem relaxes both assumptions while keeping every run exactly
reproducible.  A *fault scenario* (registered with
:func:`~repro.experiments.registries.register_fault`, selected by a spec's
``fault`` field) compiles — using only the seed-derived ``faults`` random
stream — into a :class:`FaultPlan`: a sorted timeline of node **crash** /
**recover**, churn **join** / **leave**, and grey-zone **link flap**
events.  A :class:`FaultEngine` replays the plan against any of the four
execution substrates:

* event-driven MAC layers install it into the simulator
  (:meth:`FaultEngine.install`), which aborts crashed senders' pending
  broadcasts, drops deliveries to dead receivers, wakes late-joining
  nodes (their messages travel with them), and resumes recovered nodes
  by reporting the crash-aborted broadcast as ``on_abort``;
* the FMMB round substrate wraps its scheduler in
  :class:`FaultyRoundScheduler`;
* the slotted radio polls :meth:`FaultEngine.advance_to` once per slot.

Schedulers and postconditions keep working untouched because the engine's
:class:`EffectiveDualView` answers the same neighbor/component queries as
:class:`~repro.topology.DualGraph`, restricted to the live network.
Outcomes are judged among survivors (:func:`survivor_outcome`).

Quickstart::

    from repro.experiments import ExperimentSpec, FaultSpec, TopologySpec, run

    spec = ExperimentSpec(
        topology=TopologySpec("random_geometric", {"n": 30, "side": 2.5}),
        fault=FaultSpec("crash_random", {"fraction": 0.2}),
        seed=7,
    )
    result = run(spec)
    print(result.solved, result.metrics["nodes_crashed"])
"""

from repro.faults.engine import (
    PRIORITY_FAULT,
    EffectiveDualView,
    FaultEngine,
)
from repro.faults.events import Edge, FaultEvent, FaultKind, canonical_edge
from repro.faults.outcome import FaultOutcome, survivor_outcome
from repro.faults.plan import FaultPlan, validate_plan
from repro.faults.rounds import FaultyRoundScheduler

# Imported last, and after every name above is bound: scenario registration
# pulls in repro.experiments.registries, which may re-enter this package.
from repro.faults.scenarios import DEFAULT_HORIZON  # noqa: E402

__all__ = [
    "DEFAULT_HORIZON",
    "Edge",
    "EffectiveDualView",
    "FaultEngine",
    "FaultEvent",
    "FaultKind",
    "FaultOutcome",
    "FaultPlan",
    "FaultyRoundScheduler",
    "PRIORITY_FAULT",
    "canonical_edge",
    "survivor_outcome",
    "validate_plan",
]
