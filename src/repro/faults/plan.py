"""The fault plan: an immutable, pre-materialized fault timeline.

Scenario builders (:mod:`repro.faults.scenarios`) draw every random choice
up front from a seed-derived stream and compile it into a
:class:`FaultPlan`.  Executions then replay the plan; no randomness is
consumed at fault-application time, which is what makes a faulty run
bit-identical across processes and across the four substrates' different
clocks (event-driven time, lock-step rounds, radio slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ExperimentError
from repro.faults.events import LINK_KINDS, NODE_KINDS, Edge, FaultEvent
from repro.ids import NodeId, Time


@dataclass(frozen=True)
class FaultPlan:
    """A sorted timeline of fault events plus the initial churn state.

    Attributes:
        events: The transitions in deterministic ``sort_key`` order.
        initially_absent: Nodes that have not yet joined at time 0 (churn
            arrivals); each must have a later ``JOIN`` event to ever
            participate.  Environment messages addressed to an
            initially-absent node arrive when the node joins.
        name: Human label (the scenario key that built the plan).
    """

    events: tuple[FaultEvent, ...] = ()
    initially_absent: frozenset[NodeId] = frozenset()
    name: str = "faults"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=FaultEvent.sort_key))
        object.__setattr__(self, "events", ordered)
        object.__setattr__(
            self, "initially_absent", frozenset(self.initially_absent)
        )

    @staticmethod
    def of(
        events: Iterable[FaultEvent],
        initially_absent: Iterable[NodeId] = (),
        name: str = "faults",
    ) -> "FaultPlan":
        """Build a plan from any event iterable (sorted automatically)."""
        return FaultPlan(
            events=tuple(events),
            initially_absent=frozenset(initially_absent),
            name=name,
        )

    @property
    def horizon(self) -> Time:
        """Time of the last planned event (0.0 for an empty plan)."""
        return self.events[-1].time if self.events else 0.0

    @property
    def is_empty(self) -> bool:
        """True when the plan changes nothing (no events, no absentees)."""
        return not self.events and not self.initially_absent

    def node_events(self) -> tuple[FaultEvent, ...]:
        """The node-kind events, in timeline order."""
        return tuple(e for e in self.events if e.kind in NODE_KINDS)

    def link_events(self) -> tuple[FaultEvent, ...]:
        """The link-kind events, in timeline order."""
        return tuple(e for e in self.events if e.kind in LINK_KINDS)

    def touched_nodes(self) -> frozenset[NodeId]:
        """Every node referenced by the plan."""
        nodes = set(self.initially_absent)
        nodes.update(e.node for e in self.node_events())
        return frozenset(nodes)

    def touched_edges(self) -> frozenset[Edge]:
        """Every flapping edge referenced by the plan."""
        return frozenset(e.edge for e in self.link_events())

    def __len__(self) -> int:
        return len(self.events)


def validate_plan(plan: FaultPlan, dual) -> None:
    """Check a plan against the network it will be applied to.

    Raises:
        ExperimentError: If an event references an unknown node, a link
            event references an edge outside ``G' \\ G``, or an
            initially-absent node never joins.
    """
    known = set(dual.nodes)
    for event in plan.node_events():
        if event.node not in known:
            raise ExperimentError(
                f"fault plan references unknown node {event.node}"
            )
    for event in plan.link_events():
        u, v = event.edge
        if u not in known or v not in known:
            raise ExperimentError(
                f"fault plan references unknown edge {event.edge}"
            )
        if not dual.is_gprime_edge(u, v) or dual.is_reliable_edge(u, v):
            raise ExperimentError(
                f"flapping edge {event.edge} must be a grey-zone "
                f"(G' \\ G) edge of the base network"
            )
    joining = {
        e.node for e in plan.node_events() if e.kind.value == "join"
    }
    stranded = plan.initially_absent - joining
    if stranded:
        raise ExperimentError(
            f"initially-absent nodes never join: {sorted(stranded)[:5]}"
        )
    if plan.initially_absent >= known:
        raise ExperimentError("a fault plan cannot start with every node absent")
