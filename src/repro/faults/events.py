"""Timed fault events: the atoms every fault scenario compiles down to.

A fault *scenario* (see :mod:`repro.faults.scenarios`) is a recipe; what the
substrates actually consume is a :class:`~repro.faults.plan.FaultPlan` — a
sorted, immutable timeline of :class:`FaultEvent` records.  Keeping the
event vocabulary tiny (six kinds over nodes and grey-zone edges) is what
lets one :class:`~repro.faults.engine.FaultEngine` drive all four execution
substrates identically.

Link semantics: a flapping edge is always a ``G' \\ G`` (grey-zone) edge of
the *base* dual graph.  ``LINK_UP`` promotes it into the effective reliable
graph ``G``; ``LINK_DOWN`` demotes it back to merely-unreliable.  ``G'``
itself never changes, so every delivery a scheduler plans stays
edge-admissible — only the reliable/grey split (and hence progress and
acknowledgment obligations) is dynamic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.ids import NodeId, Time

#: An undirected edge in canonical (sorted-endpoint) form.
Edge = tuple[NodeId, NodeId]


def canonical_edge(u: NodeId, v: NodeId) -> Edge:
    """The canonical undirected form of ``(u, v)``."""
    if u == v:
        raise ExperimentError(f"fault edge cannot be a self-loop: ({u}, {v})")
    return (u, v) if u <= v else (v, u)


class FaultKind(enum.Enum):
    """The six primitive fault transitions."""

    #: Node stops: pending broadcast aborted, no further sends/receives.
    CRASH = "crash"
    #: A crashed node resumes: automaton state intact, and the broadcast
    #: the crash aborted (if any) is reported to it as ``on_abort`` so
    #: queue-driven protocols can pick up where they left off.
    RECOVER = "recover"
    #: A churn arrival: an initially-absent node enters the network.
    JOIN = "join"
    #: A churn departure: a node leaves permanently (same effect as CRASH).
    LEAVE = "leave"
    #: A flapping grey-zone edge becomes reliable (counts as ``G``).
    LINK_UP = "link_up"
    #: A flapping edge reverts to merely-unreliable (``G' \\ G``).
    LINK_DOWN = "link_down"


#: Kinds that take a node operand.
NODE_KINDS = frozenset(
    {FaultKind.CRASH, FaultKind.RECOVER, FaultKind.JOIN, FaultKind.LEAVE}
)
#: Kinds that take an edge operand.
LINK_KINDS = frozenset({FaultKind.LINK_UP, FaultKind.LINK_DOWN})


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault transition.

    Attributes:
        time: Absolute simulated time at which the transition applies.
        kind: What happens.
        node: The affected node (node kinds only).
        edge: The affected grey-zone edge in canonical form (link kinds
            only).
    """

    time: Time
    kind: FaultKind
    node: NodeId | None = None
    edge: Edge | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ExperimentError(f"fault event time must be >= 0: {self.time}")
        if self.kind in NODE_KINDS:
            if self.node is None or self.edge is not None:
                raise ExperimentError(
                    f"{self.kind.value} event takes a node operand only"
                )
        else:
            if self.edge is None or self.node is not None:
                raise ExperimentError(
                    f"{self.kind.value} event takes an edge operand only"
                )
            object.__setattr__(self, "edge", canonical_edge(*self.edge))

    def sort_key(self) -> tuple:
        """Deterministic total order: time, then kind, then operand."""
        operand = self.edge if self.edge is not None else (self.node, self.node)
        return (self.time, self.kind.value, operand)
