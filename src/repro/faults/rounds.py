"""Fault adapter for the lock-step round substrate.

The FMMB subroutines drive an arbitrary
:class:`~repro.mac.rounds.RoundScheduler` against the static dual graph.
:class:`FaultyRoundScheduler` interposes on that single choke point: before
each round it advances the fault engine to the round's start time
(``round_index x Fprog``), substitutes the engine's
:class:`~repro.faults.engine.EffectiveDualView` for the static graph, and
filters crashed nodes out of both the broadcast intents and the delivery
map.  The wrapped scheduler — random or adversarial — runs unmodified, so
every round policy in the package is fault-capable for free.
"""

from __future__ import annotations

from repro.faults.engine import FaultEngine
from repro.ids import Time
from repro.mac.rounds import Deliveries, Intents, RoundScheduler
from repro.topology.dualgraph import DualGraph


class FaultyRoundScheduler(RoundScheduler):
    """Wraps a round scheduler with crash/churn/flap awareness.

    Args:
        inner: The policy that picks deliveries among live contenders.
        engine: The execution's fault engine.
        fprog: Round length (converts round indices to engine time).
    """

    def __init__(self, inner: RoundScheduler, engine: FaultEngine, fprog: Time):
        self.inner = inner
        self.engine = engine
        self.fprog = fprog
        self._suppressed_nodes: set = set()

    def deliveries(
        self, round_index: int, intents: Intents, dual: DualGraph
    ) -> Deliveries:
        engine = self.engine
        engine.advance_to(round_index * self.fprog)
        view = engine.view()
        live_intents: Intents = {
            u: payload
            for u, payload in sorted(intents.items())
            if view.is_active(u)
        }
        # Count each dead intender once, not once per round it keeps
        # re-intending, so the metric stays comparable with the
        # per-broadcast-attempt semantics of the other substrates.
        newly_suppressed = (
            set(intents) - set(live_intents)
        ) - self._suppressed_nodes
        if newly_suppressed:
            self._suppressed_nodes |= newly_suppressed
            engine.note("bcasts_suppressed", len(newly_suppressed))
        received = self.inner.deliveries(round_index, live_intents, view)
        delivered: Deliveries = {}
        for v, messages in received.items():
            if view.is_active(v):
                delivered[v] = messages
            else:
                engine.note("deliveries_dropped", len(messages))
        return delivered
