"""An SINR-reception slotted radio network over an embedded dual graph.

The graph-based collision model of :mod:`repro.radio.slotted` treats
interference as binary: two transmitting neighbors always collide.  The
SINR (signal-to-interference-plus-noise-ratio) model — the physical model
of Halldórsson, Holzer & Lynch's local broadcast layer — is geometric
instead: a listener decodes a transmitter when the transmitter's received
power beats the *sum* of all other transmitters' power plus ambient noise
by the threshold ``beta``:

    ``SINR(u → v) = P·d(u,v)^-alpha / (N + Σ_{w≠u} P·d(w,v)^-alpha) ≥ beta``

Semantics per slot:

* every node either **transmits** one packet or **listens**; transmitters
  hear nothing;
* received power follows path loss ``P·d^-alpha`` from the topology's
  plane embedding (``dual.positions``; the topology must be a geometric
  family such as ``random_geometric``);
* a listener decodes the strongest ``G'``-neighbor whose SINR clears
  ``beta`` (for ``beta ≥ 1`` at most one transmitter can clear it);
  interference counts **every** transmitter in the network, neighbor or
  not — far-away traffic degrades reception, which the binary model
  cannot express;
* the default noise floor is calibrated so a *lone* transmitter is decoded
  up to distance ``reach`` (``N = P / (beta · reach^alpha)``), which with
  ``reach ≥ 1`` covers every reliable (unit-disk) edge — so the decay MAC
  adapter's adaptive acknowledgment terminates for the same reason it does
  on the binary radio.

The class mirrors :class:`~repro.radio.slotted.SlottedRadioNetwork`'s
surface (``run_slot`` / ``slot`` / ``stats`` / ``fault_engine``), so
:class:`~repro.radio.mac_adapter.RadioMACLayer` drives it unchanged —
BMMB runs on SINR exactly as it runs on the collision radio, and the
adapter's empirical ``Fack``/``Fprog`` extraction applies as-is.

Fault semantics: crashed/absent nodes neither transmit nor listen (the
engine's ``is_active``).  Link flapping is ignored — SINR reception is
derived from geometry, not from the reliable/grey edge split.
"""

from __future__ import annotations

from repro.errors import MACError
from repro.radio.slotted import Receptions, SlotStats, Transmissions
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph

#: Distances below this are clamped (coincident nodes would otherwise
#: receive infinite power).
MIN_DISTANCE = 1e-6


class SINRRadioNetwork:
    """Executes radio slots under SINR reception over an embedded graph.

    Args:
        dual: The network; must carry a plane embedding
            (``dual.positions``), e.g. any geometric topology family.
        rng: Random stream (reserved for fading extensions; the base model
            draws nothing, so executions are seed-stable by construction).
        alpha: Path-loss exponent (free space ≈ 2, urban 3–5).
        beta: SINR decoding threshold; ``beta ≥ 1`` guarantees at most one
            decodable transmitter per listener per slot.
        power: Uniform transmit power.
        reach: Lone-transmitter decoding range used to calibrate the
            default noise floor; must cover the reliable (unit-disk)
            radius or the MAC adapter's adaptive mode cannot terminate.
        noise: Explicit ambient noise floor; overrides ``reach``.
        engine: Reception-engine key (``reference``/``vectorized``/``auto``,
            see :mod:`repro.radio.engines`); all engines compute identical
            receptions.

    Raises:
        MACError: Missing embedding or non-positive model constants.
    """

    def __init__(
        self,
        dual: DualGraph,
        rng: RandomSource,
        alpha: float = 3.0,
        beta: float = 2.0,
        power: float = 1.0,
        reach: float = 1.2,
        noise: float | None = None,
        engine: str = "reference",
    ):
        from repro.radio.engines import resolve_engine

        if dual.positions is None:
            raise MACError(
                "the SINR model needs an embedded topology "
                "(dual.positions); use a geometric family such as "
                "'random_geometric'"
            )
        if alpha <= 0 or beta <= 0 or power <= 0 or reach <= 0:
            raise MACError(
                f"SINR constants must be positive (alpha={alpha}, "
                f"beta={beta}, power={power}, reach={reach})"
            )
        if noise is None:
            noise = power / (beta * reach**alpha)
        if noise <= 0:
            raise MACError(f"noise floor must be positive: {noise}")
        self.dual = dual
        self._rng = rng
        self.alpha = alpha
        self.beta = beta
        self.power = power
        self.noise = noise
        self.engine = resolve_engine(engine)
        self._slot_pass = None  # built lazily on the first slot
        self.slot = 0
        self.stats: list[SlotStats] = []
        #: Optional :class:`~repro.faults.engine.FaultEngine` (set by the
        #: radio MAC adapter): dead nodes neither transmit nor listen.
        self.fault_engine = None

    def run_slot(self, transmissions: Transmissions) -> Receptions:
        """Execute one slot and return who decoded what.

        ``transmissions`` maps each transmitting node to its packet; all
        other nodes listen.
        """
        for sender in transmissions:
            if not self.dual.reliable_graph.has_node(sender):
                raise MACError(f"unknown transmitter {sender}")
        if self._slot_pass is None:
            self._slot_pass = self.engine.sinr_pass(self)
        receptions, collisions = self._slot_pass(transmissions)
        self.stats.append(
            SlotStats(
                slot=self.slot,
                transmitters=len(transmissions),
                receptions=len(receptions),
                collisions=collisions,
            )
        )
        self.slot += 1
        return receptions


def sinr_mac_layer(
    dual: DualGraph,
    rng: RandomSource,
    slot_duration: float = 1.0,
    adaptive: bool = True,
    phases: int | None = None,
    depth: int | None = None,
    fault_engine=None,
    alpha: float = 3.0,
    beta: float = 2.0,
    power: float = 1.0,
    reach: float = 1.2,
    noise: float | None = None,
    engine: str = "reference",
):
    """Build a :class:`~repro.radio.RadioMACLayer` over SINR reception.

    This is the ``sinr`` entry of the MAC registry — same call shape as
    the ``radio`` entry (the class itself), with the SINR model constants
    as extra keywords, all sweepable via ``model.params.<key>`` axes.
    The reception network draws from the same ``fading`` child stream the
    collision radio would, so the stream-derivation contract is identical
    across the radio family.
    """
    from repro.radio.mac_adapter import RadioMACLayer

    network = SINRRadioNetwork(
        dual,
        rng.child("fading"),
        alpha=alpha,
        beta=beta,
        power=power,
        reach=reach,
        noise=noise,
        engine=engine,
    )
    return RadioMACLayer(
        dual,
        rng,
        slot_duration=slot_duration,
        adaptive=adaptive,
        phases=phases,
        depth=depth,
        fault_engine=fault_engine,
        network=network,
    )
