"""An SINR-reception slotted radio network over an embedded dual graph.

The graph-based collision model of :mod:`repro.radio.slotted` treats
interference as binary: two transmitting neighbors always collide.  The
SINR (signal-to-interference-plus-noise-ratio) model — the physical model
of Halldórsson, Holzer & Lynch's local broadcast layer — is geometric
instead: a listener decodes a transmitter when the transmitter's received
power beats the *sum* of all other transmitters' power plus ambient noise
by the threshold ``beta``:

    ``SINR(u → v) = P·d(u,v)^-alpha / (N + Σ_{w≠u} P·d(w,v)^-alpha) ≥ beta``

Semantics per slot:

* every node either **transmits** one packet or **listens**; transmitters
  hear nothing;
* received power follows path loss ``P·d^-alpha`` from the topology's
  plane embedding (``dual.positions``; the topology must be a geometric
  family such as ``random_geometric``);
* a listener decodes the strongest ``G'``-neighbor whose SINR clears
  ``beta`` (for ``beta ≥ 1`` at most one transmitter can clear it);
  interference counts **every** transmitter in the network, neighbor or
  not — far-away traffic degrades reception, which the binary model
  cannot express;
* the default noise floor is calibrated so a *lone* transmitter is decoded
  up to distance ``reach`` (``N = P / (beta · reach^alpha)``), which with
  ``reach ≥ 1`` covers every reliable (unit-disk) edge — so the decay MAC
  adapter's adaptive acknowledgment terminates for the same reason it does
  on the binary radio.

The class mirrors :class:`~repro.radio.slotted.SlottedRadioNetwork`'s
surface (``run_slot`` / ``slot`` / ``stats`` / ``fault_engine``), so
:class:`~repro.radio.mac_adapter.RadioMACLayer` drives it unchanged —
BMMB runs on SINR exactly as it runs on the collision radio, and the
adapter's empirical ``Fack``/``Fprog`` extraction applies as-is.

Fault semantics: crashed/absent nodes neither transmit nor listen (the
engine's ``is_active``).  Link flapping is ignored — SINR reception is
derived from geometry, not from the reliable/grey edge split.
"""

from __future__ import annotations

from repro.errors import MACError
from repro.ids import NodeId
from repro.radio.slotted import Receptions, SlotStats, Transmissions
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph

#: Distances below this are clamped (coincident nodes would otherwise
#: receive infinite power).
MIN_DISTANCE = 1e-6


class SINRRadioNetwork:
    """Executes radio slots under SINR reception over an embedded graph.

    Args:
        dual: The network; must carry a plane embedding
            (``dual.positions``), e.g. any geometric topology family.
        rng: Random stream (reserved for fading extensions; the base model
            draws nothing, so executions are seed-stable by construction).
        alpha: Path-loss exponent (free space ≈ 2, urban 3–5).
        beta: SINR decoding threshold; ``beta ≥ 1`` guarantees at most one
            decodable transmitter per listener per slot.
        power: Uniform transmit power.
        reach: Lone-transmitter decoding range used to calibrate the
            default noise floor; must cover the reliable (unit-disk)
            radius or the MAC adapter's adaptive mode cannot terminate.
        noise: Explicit ambient noise floor; overrides ``reach``.

    Raises:
        MACError: Missing embedding or non-positive model constants.
    """

    def __init__(
        self,
        dual: DualGraph,
        rng: RandomSource,
        alpha: float = 3.0,
        beta: float = 2.0,
        power: float = 1.0,
        reach: float = 1.2,
        noise: float | None = None,
    ):
        if dual.positions is None:
            raise MACError(
                "the SINR model needs an embedded topology "
                "(dual.positions); use a geometric family such as "
                "'random_geometric'"
            )
        if alpha <= 0 or beta <= 0 or power <= 0 or reach <= 0:
            raise MACError(
                f"SINR constants must be positive (alpha={alpha}, "
                f"beta={beta}, power={power}, reach={reach})"
            )
        if noise is None:
            noise = power / (beta * reach**alpha)
        if noise <= 0:
            raise MACError(f"noise floor must be positive: {noise}")
        self.dual = dual
        self._rng = rng
        self.alpha = alpha
        self.beta = beta
        self.power = power
        self.noise = noise
        self.slot = 0
        self.stats: list[SlotStats] = []
        #: Optional :class:`~repro.faults.engine.FaultEngine` (set by the
        #: radio MAC adapter): dead nodes neither transmit nor listen.
        self.fault_engine = None
        # Pairwise received-power table P·d^-alpha, precomputed once: the
        # per-slot loop then only sums floats.  n is topology-sized
        # (hundreds), so the n² table is cheap and saves a hypot+pow per
        # (listener, transmitter) pair per slot.
        positions = dual.positions
        self._gain: dict[NodeId, dict[NodeId, float]] = {}
        nodes = dual.nodes_sorted
        for u in nodes:
            ux, uy = positions[u]
            row: dict[NodeId, float] = {}
            for v in nodes:
                if u == v:
                    continue
                vx, vy = positions[v]
                dist = max(((ux - vx) ** 2 + (uy - vy) ** 2) ** 0.5, MIN_DISTANCE)
                row[v] = power * dist**-alpha
            self._gain[u] = row

    def run_slot(self, transmissions: Transmissions) -> Receptions:
        """Execute one slot and return who decoded what.

        ``transmissions`` maps each transmitting node to its packet; all
        other nodes listen.
        """
        for sender in transmissions:
            if not self.dual.reliable_graph.has_node(sender):
                raise MACError(f"unknown transmitter {sender}")
        engine = self.fault_engine
        dual = self.dual
        beta = self.beta
        noise = self.noise
        gain = self._gain
        senders = sorted(transmissions)
        receptions: Receptions = {}
        collisions = 0
        for v in dual.nodes_sorted:
            if v in transmissions:
                continue  # transmitters cannot listen
            if engine is not None and not engine.is_active(v):
                continue  # dead nodes hear nothing
            row = gain[v]
            total = 0.0
            for u in senders:
                total += row[u]
            if total <= 0.0:
                continue
            neighbors = dual.gprime_neighbors(v)
            best: NodeId | None = None
            best_gain = 0.0
            for u in senders:
                if u not in neighbors:
                    continue  # reception is local broadcast over G'
                signal = row[u]
                if signal < beta * (noise + total - signal):
                    continue
                if best is None or signal > best_gain:
                    best = u
                    best_gain = signal
            if best is not None:
                receptions[v] = (best, transmissions[best])
            elif any(u in neighbors for u in senders):
                collisions += 1  # audible traffic, nothing decodable
        self.stats.append(
            SlotStats(
                slot=self.slot,
                transmitters=len(transmissions),
                receptions=len(receptions),
                collisions=collisions,
            )
        )
        self.slot += 1
        return receptions


def sinr_mac_layer(
    dual: DualGraph,
    rng: RandomSource,
    slot_duration: float = 1.0,
    adaptive: bool = True,
    phases: int | None = None,
    depth: int | None = None,
    fault_engine=None,
    alpha: float = 3.0,
    beta: float = 2.0,
    power: float = 1.0,
    reach: float = 1.2,
    noise: float | None = None,
):
    """Build a :class:`~repro.radio.RadioMACLayer` over SINR reception.

    This is the ``sinr`` entry of the MAC registry — same call shape as
    the ``radio`` entry (the class itself), with the SINR model constants
    as extra keywords, all sweepable via ``model.params.<key>`` axes.
    The reception network draws from the same ``fading`` child stream the
    collision radio would, so the stream-derivation contract is identical
    across the radio family.
    """
    from repro.radio.mac_adapter import RadioMACLayer

    network = SINRRadioNetwork(
        dual,
        rng.child("fading"),
        alpha=alpha,
        beta=beta,
        power=power,
        reach=reach,
        noise=noise,
    )
    return RadioMACLayer(
        dual,
        rng,
        slot_duration=slot_duration,
        adaptive=adaptive,
        phases=phases,
        depth=depth,
        fault_engine=fault_engine,
        network=network,
    )
