"""The decay transmission schedule (Bar-Yehuda–Goldreich–Itai).

Decay is the standard probabilistic contention breaker in radio networks
and the concrete mechanism behind footnote 2's ``Fprog ≪ Fack`` intuition:
a transmitter cycles through exponentially decreasing transmission
probabilities ``1, 1/2, 1/4, …, 2^{-L}`` (one *decay phase* = ``L + 1``
slots).  Whatever the local contention ``κ ≤ 2^L``, some phase step has
transmission probability ≈ ``1/κ``, at which exactly one of the κ
contenders transmits with constant probability — so a listener hears
*something* within ``O(log Δ)`` slots in expectation, while any *specific*
transmitter needs ``Θ(κ)``-ish slots of successful airtime to reach all its
neighbors.
"""

from __future__ import annotations

import math

from repro.errors import MACError
from repro.sim.rng import RandomSource


class DecaySchedule:
    """One sender's transmission schedule for one packet.

    The schedule runs ``phases`` decay phases, each of ``depth + 1`` slots;
    in slot ``j`` of a phase the sender transmits with probability
    ``2^{-j}``.  When all phases are exhausted the schedule is *complete* —
    the point at which a real MAC would hand the sender its next packet,
    i.e. the abstract MAC layer's acknowledgment (footnote 1).

    Args:
        depth: ``L`` = ceil(log2(max contention)) — the deepest probability
            is ``2^{-L}``.
        phases: Number of decay phases to run (more phases → higher
            delivery confidence, later acknowledgment).
        rng: Random stream for transmission coins.
    """

    def __init__(self, depth: int, phases: int, rng: RandomSource):
        if depth < 0:
            raise MACError(f"depth must be >= 0, got {depth}")
        if phases < 1:
            raise MACError(f"phases must be >= 1, got {phases}")
        self.depth = depth
        self.phases = phases
        self._rng = rng
        # Bound C-level draw for the per-slot coin (bernoulli(p) is
        # exactly `random() < p` on the same stream).
        self._random = rng.raw.random
        self._step = 0
        self._total_steps = phases * (depth + 1)

    @property
    def complete(self) -> bool:
        """True once every phase has run (the local 'ack' point)."""
        return self._step >= self._total_steps

    @property
    def steps_taken(self) -> int:
        """Slots consumed so far."""
        return self._step

    @property
    def total_steps(self) -> int:
        """Slots the full schedule occupies (the deterministic ack delay)."""
        return self._total_steps

    def should_transmit(self) -> bool:
        """Advance one slot; return whether the sender transmits in it."""
        if self._step >= self._total_steps:
            return False
        within_phase = self._step % (self.depth + 1)
        self._step += 1
        return self._random() < 2.0 ** (-within_phase)


def phase_probability(step: int, depth: int) -> float:
    """Transmission probability at slot ``step`` of a decay schedule.

    ``2^{-(step mod (depth+1))}`` — the deterministic per-slot probability
    a :class:`DecaySchedule` of this depth flips its coin against.  Used
    by the perf macro lane rungs to build decay-shaped transmitter sets
    without consuming any RNG stream.
    """
    if depth < 0:
        raise MACError(f"depth must be >= 0, got {depth}")
    if step < 0:
        raise MACError(f"step must be >= 0, got {step}")
    return 2.0 ** (-(step % (depth + 1)))


def decay_depth_for(max_contention: int) -> int:
    """The canonical depth: ``ceil(log2 κ)`` for worst-case contention κ."""
    if max_contention < 1:
        raise MACError(f"contention must be >= 1, got {max_contention}")
    return max(1, math.ceil(math.log2(max(max_contention, 2))))


def recommended_phases(n: int, confidence_factor: float = 2.0) -> int:
    """Phases needed for w.h.p. delivery to all reliable neighbors.

    Each phase delivers to a fixed listener with constant probability when
    contention ≤ 2^depth, so ``Θ(log n)`` phases drive the per-listener
    failure probability below ``1/n^c``.
    """
    if n < 1:
        raise MACError(f"n must be >= 1, got {n}")
    return max(4, math.ceil(confidence_factor * math.log2(max(n, 2)) + 4))
