"""Reception engines: how one radio slot's receptions are computed.

The slot *semantics* live in :mod:`repro.radio.slotted` (binary collision)
and :mod:`repro.radio.sinr` (SINR threshold).  A *reception engine* is an
interchangeable implementation strategy for those semantics:

* ``reference`` — the historical per-node python loops, extracted behind
  this interface verbatim.  Always available; the golden fixtures gate it
  byte-for-byte.
* ``vectorized`` — numpy-batched: one array pass per slot (CSR adjacency +
  bucketed collision counts for the collision radio; a chunked
  listener × sender gain matrix with a single interference
  ``P·d^-alpha`` sweep for SINR).  Requires numpy (the ``fast`` extra);
  produces **identical receptions and identical RNG stream consumption**
  as ``reference`` on the same seed — the cross-engine equality matrix in
  ``tests/test_engines.py`` gates this on every radio-family substrate ×
  fault scenario.

Engines live in the :data:`RECEPTION_ENGINES` registry (mirroring the
substrate registry pattern) and are selected per run via
``ModelSpec.engine``: ``reference`` (default), ``vectorized``, or ``auto``
(vectorized when numpy is importable, reference otherwise).  numpy is
strictly optional — pure-python installs keep working on the default.

An engine exposes two *pass builders*, one per reception model.  A pass is
built once per network (precomputing index maps, CSR adjacency, position
arrays) and then called once per slot with the slot's transmissions,
returning ``(receptions, collisions)``; the network object keeps
transmitter validation, ``SlotStats`` accounting, and the slot counter.

Determinism notes for the vectorized lane:

* **Slotted coin draws.**  The reference draws one fading coin per
  (listener, transmitting grey neighbor) pair, listeners ascending and
  neighbors sorted, only for pairs whose edge is not effectively reliable.
  The vectorized pass selects exactly those pairs (in the same flat CSR
  order) with a mask and draws exactly that many coins from the same
  stream — draw-for-draw identical.
* **SINR float identity.**  The interference total is accumulated
  left-to-right over sorted senders via ``np.cumsum`` (sequential, like
  the reference's ``+=`` loop, unlike ``np.sum``'s pairwise reduction);
  distances use ``sqrt``/``pow`` which match CPython's ``** 0.5`` /
  ``** -alpha`` on correctly-rounded libms.  The equality matrix is the
  gate: any platform where these diverge fails loudly there.
* **Faults.**  Node-liveness and effective-reliability masks are cached
  and rebuilt only when ``fault_engine.epoch`` changes, using only the
  engine's public point queries — fault transitions are rare, so the per
  slot cost stays array-shaped.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import ExperimentError
from repro.ids import NodeId

try:  # numpy is optional (the "fast" install extra); everything here
    import numpy as _np  # degrades to the reference engine without it.
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None

#: The engine name specs default to (and the only one with no deps).
DEFAULT_ENGINE = "reference"
#: Pseudo-name resolving to ``vectorized`` when numpy imports, else
#: ``reference``.
AUTO_ENGINE = "auto"

#: ``reference`` SINR precomputes the full pairwise gain table up to this
#: many nodes (the historical behavior); above it, per-listener rows are
#: computed on the fly from the same scalar expressions — identical
#: floats, O(senders) memory — so 10⁴–10⁵-node runs don't build an n²
#: python dict.
SINR_TABLE_MAX_NODES = 512

#: Listener × sender cells per chunk in the vectorized SINR pass; bounds
#: the per-slot float temporaries to tens of MB regardless of n.
_SINR_CHUNK_CELLS = 4_000_000

#: One slot's work: transmissions -> (receptions, collision count).
SlotPass = Callable[[dict], tuple[dict, int]]


class EngineRegistry:
    """A named map from string keys to reception engines.

    Mirrors :class:`repro.experiments.registries.Registry` (same surface,
    same error shapes) but is defined locally: that module imports
    :mod:`repro.radio` at load time, so importing it from here would be a
    circular import.
    """

    def __init__(self, label: str):
        self.label = label
        self._entries: dict[str, Any] = {}

    def register(self, name: str) -> Callable[[Any], Any]:
        """Decorator: register the decorated object under ``name``."""
        if not name:
            raise ExperimentError(f"{self.label} registry key must be non-empty")

        def _decorator(obj: Any) -> Any:
            if name in self._entries:
                raise ExperimentError(
                    f"{self.label} registry already has an entry {name!r}"
                )
            self._entries[name] = obj
            return obj

        return _decorator

    def get(self, name: str) -> Any:
        """The entry for ``name``; raises with the known keys otherwise."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<empty>"
            raise ExperimentError(
                f"unknown {self.label} {name!r}; registered: {known}"
            ) from None

    def names(self) -> list[str]:
        """All registered keys, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: The reception-engine registry: string key -> engine instance.
RECEPTION_ENGINES = EngineRegistry("reception engine")


def numpy_available() -> bool:
    """Whether numpy imported (the ``vectorized`` engine's requirement)."""
    return _np is not None


def engine_names(include_auto: bool = True) -> list[str]:
    """Selectable engine names (``auto`` first, then registered keys)."""
    names = RECEPTION_ENGINES.names()
    return ([AUTO_ENGINE] + names) if include_auto else names


def resolve_engine(name: str) -> "ReceptionEngine":
    """The engine instance for ``name``, with availability enforced.

    ``auto`` silently resolves to ``vectorized`` when numpy is importable
    and to ``reference`` otherwise.  Asking for an unavailable engine by
    its explicit name raises :class:`~repro.errors.ExperimentError` naming
    the install extra, so a spec that *requires* the fast lane fails
    loudly instead of silently running 100× slower.
    """
    if name == AUTO_ENGINE:
        name = "vectorized" if numpy_available() else DEFAULT_ENGINE
    engine = RECEPTION_ENGINES.get(name)
    if not engine.available():
        raise ExperimentError(
            f"reception engine {name!r} requires {engine.requires}, which is "
            f"not importable; install the 'fast' extra "
            f"(pip install 'repro[fast]') or select engine='reference' "
            f"(or 'auto' to fall back automatically)"
        )
    return engine


# ----------------------------------------------------------------------
# Reference passes (the historical loops, verbatim)
# ----------------------------------------------------------------------
def _slotted_reference_pass(network) -> SlotPass:
    """The per-node collision loop exactly as ``SlottedRadioNetwork``
    ran it before engines existed: same iteration order, same coin draws.
    """
    dual = network.dual

    def run(transmissions: dict) -> tuple[dict, int]:
        engine = network.fault_engine
        random_f = network._rng.raw.random  # bernoulli(p) == random_f() < p
        p_live = network.p_unreliable_live
        receptions: dict[NodeId, tuple[NodeId, Any]] = {}
        collisions = 0
        for v in dual.nodes_sorted:
            if v in transmissions:
                continue  # transmitters cannot listen
            if engine is not None and not engine.is_active(v):
                continue  # dead nodes hear nothing
            live_senders = []
            reliable_set = dual.reliable_neighbors(v)
            for u in dual.gprime_neighbors_sorted(v):
                if u not in transmissions:
                    continue
                if engine is not None:
                    reliable = engine.is_reliable_edge(u, v)
                else:
                    reliable = u in reliable_set
                if reliable or random_f() < p_live:
                    live_senders.append(u)
            if len(live_senders) == 1:
                sender = live_senders[0]
                receptions[v] = (sender, transmissions[sender])
            elif len(live_senders) > 1:
                collisions += 1
        return receptions, collisions

    return run


def _sinr_gain_table(network) -> dict[NodeId, dict[NodeId, float]]:
    """The full pairwise received-power table ``P·d^-alpha`` (symmetric)."""
    from repro.radio.sinr import MIN_DISTANCE

    positions = network.dual.positions
    power = network.power
    alpha = network.alpha
    gain: dict[NodeId, dict[NodeId, float]] = {}
    nodes = network.dual.nodes_sorted
    for u in nodes:
        ux, uy = positions[u]
        row: dict[NodeId, float] = {}
        for v in nodes:
            if u == v:
                continue
            vx, vy = positions[v]
            dist = max(((ux - vx) ** 2 + (uy - vy) ** 2) ** 0.5, MIN_DISTANCE)
            row[v] = power * dist**-alpha
        gain[u] = row
    return gain


def _sinr_reference_pass(network) -> SlotPass:
    """The per-node SINR decode loop exactly as ``SINRRadioNetwork`` ran
    it: sequential interference sum over sorted senders, strict-greater
    best-signal tie-break (earliest sorted sender wins ties).

    Up to :data:`SINR_TABLE_MAX_NODES` nodes the full gain table is
    precomputed (the historical behavior); above that, per-listener rows
    over the slot's senders are computed on demand from the *same scalar
    expressions*, so receptions are identical while memory stays
    O(senders) instead of O(n²).
    """
    from repro.radio.sinr import MIN_DISTANCE

    dual = network.dual
    positions = dual.positions
    power = network.power
    alpha = network.alpha
    beta = network.beta
    noise = network.noise
    table = _sinr_gain_table(network) if dual.n <= SINR_TABLE_MAX_NODES else None

    def run(transmissions: dict) -> tuple[dict, int]:
        engine = network.fault_engine
        senders = sorted(transmissions)
        receptions: dict[NodeId, tuple[NodeId, Any]] = {}
        collisions = 0
        for v in dual.nodes_sorted:
            if v in transmissions:
                continue  # transmitters cannot listen
            if engine is not None and not engine.is_active(v):
                continue  # dead nodes hear nothing
            if table is not None:
                row = table[v]
            else:
                vx, vy = positions[v]
                row = {}
                for u in senders:
                    ux, uy = positions[u]
                    dist = max(
                        ((vx - ux) ** 2 + (vy - uy) ** 2) ** 0.5, MIN_DISTANCE
                    )
                    row[u] = power * dist**-alpha
            total = 0.0
            for u in senders:
                total += row[u]
            if total <= 0.0:
                continue
            neighbors = dual.gprime_neighbors(v)
            best: NodeId | None = None
            best_gain = 0.0
            for u in senders:
                if u not in neighbors:
                    continue  # reception is local broadcast over G'
                signal = row[u]
                if signal < beta * (noise + total - signal):
                    continue
                if best is None or signal > best_gain:
                    best = u
                    best_gain = signal
            if best is not None:
                receptions[v] = (best, transmissions[best])
            elif any(u in neighbors for u in senders):
                collisions += 1  # audible traffic, nothing decodable
        return receptions, collisions

    return run


# ----------------------------------------------------------------------
# Vectorized passes (numpy)
# ----------------------------------------------------------------------
class _FaultMasks:
    """Epoch-cached liveness/reliability masks for one fault engine.

    Rebuilt (via the engine's *public* point queries only) when
    ``engine.epoch`` changes; every other slot is an O(1) cache hit.
    """

    def __init__(self, nodes, edge_pairs):
        self._nodes = nodes
        self._edge_pairs = edge_pairs  # (u, v) node-id pairs, grey edges
        self._epoch: int | None = None
        self.active = None
        self.promoted = None

    def refresh(self, engine) -> None:
        if self._epoch == engine.epoch:
            return
        np = _np
        self.active = np.fromiter(
            (engine.is_active(v) for v in self._nodes),
            dtype=bool,
            count=len(self._nodes),
        )
        self.promoted = np.fromiter(
            (engine.is_reliable_edge(u, v) for u, v in self._edge_pairs),
            dtype=bool,
            count=len(self._edge_pairs),
        )
        self._epoch = engine.epoch


def _slotted_vectorized_pass(network) -> SlotPass:
    """One array pass per slot over a flat CSR of the G' adjacency.

    The CSR is laid out in the reference loop's exact iteration order
    (listeners ascending, neighbors sorted), so ``np.flatnonzero`` over
    the coin-needing edges enumerates pairs in reference draw order — the
    coins come from the same stream, in the same order, in the same
    count.
    """
    np = _np
    dual = network.dual
    nodes = dual.nodes_sorted
    n = len(nodes)
    index_of = {v: i for i, v in enumerate(nodes)}
    edge_v_list: list[int] = []
    edge_u_list: list[int] = []
    reliable_list: list[bool] = []
    for i, v in enumerate(nodes):
        reliable_set = dual.reliable_neighbors(v)
        for u in dual.gprime_neighbors_sorted(v):
            edge_v_list.append(i)
            edge_u_list.append(index_of[u])
            reliable_list.append(u in reliable_set)
    edge_v = np.asarray(edge_v_list, dtype=np.int64)
    edge_u = np.asarray(edge_u_list, dtype=np.int64)
    base_reliable = np.asarray(reliable_list, dtype=bool)
    grey_edges = np.flatnonzero(~base_reliable)
    grey_pairs = [
        (nodes[edge_u[e]], nodes[edge_v[e]]) for e in grey_edges.tolist()
    ]
    masks = _FaultMasks(nodes, grey_pairs)
    node_ids = np.asarray(nodes)

    def run(transmissions: dict) -> tuple[dict, int]:
        engine = network.fault_engine
        random_f = network._rng.raw.random
        p_live = network.p_unreliable_live
        tx = np.zeros(n, dtype=bool)
        for sender in transmissions:
            tx[index_of[sender]] = True
        reliable = base_reliable
        if engine is None:
            listening = ~tx
        else:
            masks.refresh(engine)
            listening = masks.active & ~tx
            if masks.promoted.any():
                reliable = base_reliable.copy()
                reliable[grey_edges] = masks.promoted
        considered = listening[edge_v] & tx[edge_u]
        live = considered & reliable
        coin_edges = np.flatnonzero(considered & ~reliable)
        draws = coin_edges.size
        if draws:
            coins = np.fromiter(
                (random_f() for _ in range(draws)),
                dtype=np.float64,
                count=draws,
            )
            live[coin_edges[coins < p_live]] = True
        live_dst = edge_v[live]
        counts = np.bincount(live_dst, minlength=n)
        receivers = np.flatnonzero(counts == 1)
        collisions = int(np.count_nonzero(counts > 1))
        receptions: dict[NodeId, tuple[NodeId, Any]] = {}
        if receivers.size:
            # With exactly one live sender per receiver, the weighted
            # bincount *is* that sender's index.
            sender_at = np.bincount(
                live_dst, weights=edge_u[live], minlength=n
            )
            for i in receivers.tolist():
                sender = node_ids[int(sender_at[i])].item()
                receptions[node_ids[i].item()] = (
                    sender,
                    transmissions[sender],
                )
        return receptions, collisions

    return run


def _sinr_vectorized_pass(network) -> SlotPass:
    """Chunked listener × sender gain sweep for the SINR decode.

    Per slot: one distance/power broadcast per listener chunk, a
    ``cumsum`` interference total (sequential left-to-right, matching the
    reference accumulation order bit-for-bit), a masked first-argmax for
    the decode (argmax's first-occurrence rule reproduces the reference's
    strict-greater tie-break), and a bool audibility reduction for the
    collision count.  Memory is O(chunk × senders), never O(n²).
    """
    from repro.radio.sinr import MIN_DISTANCE

    np = _np
    dual = network.dual
    nodes = dual.nodes_sorted
    n = len(nodes)
    index_of = {v: i for i, v in enumerate(nodes)}
    pos = np.asarray([dual.positions[v] for v in nodes], dtype=np.float64)
    # Flat listener-major adjacency (CSR-style): edge_listener[k] hears
    # edge_node[k].  Listener-major build order keeps edge_listener
    # non-decreasing, which the per-chunk searchsorted fill relies on.
    _listener_parts: list[Any] = []
    _node_parts: list[Any] = []
    for i, v in enumerate(nodes):
        row = np.asarray(
            [index_of[u] for u in dual.gprime_neighbors_sorted(v)],
            dtype=np.int64,
        )
        if row.size:
            _listener_parts.append(np.full(row.size, i, dtype=np.int64))
            _node_parts.append(row)
    if _listener_parts:
        edge_listener = np.concatenate(_listener_parts)
        edge_node = np.concatenate(_node_parts)
    else:  # pragma: no cover - degenerate edgeless network
        edge_listener = np.empty(0, dtype=np.int64)
        edge_node = np.empty(0, dtype=np.int64)
    del _listener_parts, _node_parts
    masks = _FaultMasks(nodes, [])
    node_ids = np.asarray(nodes)
    power = network.power
    alpha = network.alpha
    beta = network.beta
    noise = network.noise

    def run(transmissions: dict) -> tuple[dict, int]:
        engine = network.fault_engine
        senders = sorted(transmissions)
        count = len(senders)
        receptions: dict[NodeId, tuple[NodeId, Any]] = {}
        if not count:
            return receptions, 0
        sender_idx = np.asarray(
            [index_of[u] for u in senders], dtype=np.int64
        )
        sender_pos = pos[sender_idx]
        tx = np.zeros(n, dtype=bool)
        tx[sender_idx] = True
        if engine is None:
            listening = ~tx
        else:
            masks.refresh(engine)
            listening = masks.active & ~tx
        # (listener, sender-column) pairs of every G'-audible transmission
        # this slot, kept as two flat arrays sorted by listener — the
        # chunk loop slices them with searchsorted, so per-slot memory is
        # O(chunk × senders + E), never O(n × senders).
        sender_col = np.full(n, -1, dtype=np.int64)
        sender_col[sender_idx] = np.arange(count, dtype=np.int64)
        cols_all = sender_col[edge_node]
        keep = (cols_all >= 0) & listening[edge_listener]
        pair_l = edge_listener[keep]
        pair_c = cols_all[keep]
        listeners = np.flatnonzero(listening)
        chunk = max(1, _SINR_CHUNK_CELLS // count)
        collisions = 0
        for start in range(0, listeners.size, chunk):
            rows = listeners[start : start + chunk]
            dx = pos[rows, 0:1] - sender_pos[:, 0][None, :]
            dy = pos[rows, 1:2] - sender_pos[:, 1][None, :]
            dist = np.sqrt(dx * dx + dy * dy)
            np.maximum(dist, MIN_DISTANCE, out=dist)
            gain = power * dist**-alpha
            # Sequential left-to-right sum (cumsum), NOT np.sum's pairwise
            # reduction: bit-identical to the reference's += loop.
            total = np.cumsum(gain, axis=1)[:, -1]
            near = np.zeros((rows.size, count), dtype=bool)
            lo = np.searchsorted(pair_l, rows[0])
            hi = np.searchsorted(pair_l, rows[-1], side="right")
            if hi > lo:
                near[
                    np.searchsorted(rows, pair_l[lo:hi]), pair_c[lo:hi]
                ] = True
            decodable = near & (gain >= beta * (noise + total[:, None] - gain))
            candidate = np.where(decodable, gain, -1.0)
            best_j = np.argmax(candidate, axis=1)
            arange = np.arange(rows.size)
            decoded = decodable[arange, best_j] & (total > 0.0)
            audible = near.any(axis=1) & (total > 0.0)
            collisions += int(np.count_nonzero(audible & ~decoded))
            for r in np.flatnonzero(decoded).tolist():
                sender = senders[int(best_j[r])]
                receptions[node_ids[rows[r]].item()] = (
                    sender,
                    transmissions[sender],
                )
        return receptions, collisions

    return run


# ----------------------------------------------------------------------
# The engines
# ----------------------------------------------------------------------
class ReceptionEngine:
    """Base class: a named implementation strategy for slot reception."""

    #: Registry key.
    name: str = ""
    #: One-line description (shown by ``python -m repro registry``).
    description: str = ""
    #: Human-readable requirement (``""`` when always available).
    requires: str = ""

    def available(self) -> bool:
        """Whether the engine can run in this interpreter."""
        return True

    def slotted_pass(self, network) -> SlotPass:
        """A per-slot pass for a :class:`SlottedRadioNetwork`."""
        raise NotImplementedError

    def sinr_pass(self, network) -> SlotPass:
        """A per-slot pass for a :class:`SINRRadioNetwork`."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.description


class ReferenceEngine(ReceptionEngine):
    """Per-node python loops — the historical semantics, always available."""

    name = "reference"
    description = (
        "per-node python loops (always available; golden-fixture gated)"
    )
    requires = ""

    def slotted_pass(self, network) -> SlotPass:
        return _slotted_reference_pass(network)

    def sinr_pass(self, network) -> SlotPass:
        return _sinr_reference_pass(network)


class VectorizedEngine(ReceptionEngine):
    """numpy-batched slot reception — identical receptions, array speed."""

    name = "vectorized"
    description = (
        "numpy-batched slot reception (requires the 'fast' extra; "
        "identical receptions to reference)"
    )
    requires = "numpy"

    def available(self) -> bool:
        return numpy_available()

    def slotted_pass(self, network) -> SlotPass:
        return _slotted_vectorized_pass(network)

    def sinr_pass(self, network) -> SlotPass:
        return _sinr_vectorized_pass(network)


# The registry holds shared engine *instances* (engines are stateless —
# all per-network state lives in the passes they build).
REFERENCE: ReceptionEngine = RECEPTION_ENGINES.register("reference")(
    ReferenceEngine()
)
VECTORIZED: ReceptionEngine = RECEPTION_ENGINES.register("vectorized")(
    VectorizedEngine()
)
