"""Low-level slotted radio networks: the layer *below* the abstract MAC.

The abstract MAC layer abstracts real link layers; this subpackage builds
one such link layer so the abstraction can be validated from below, the way
the paper's footnote 2 motivates it:

* :mod:`~repro.radio.slotted` — a synchronous slotted radio network over a
  dual graph: per slot each node transmits or listens; a listener receives
  iff exactly one of its *live* neighbors transmits (collisions destroy
  both packets, no collision detection).  Reliable edges are always live;
  unreliable edges are live per-slot with a fade probability — the
  low-level dual graph / dynamic fault model of [8, 29].
* :mod:`~repro.radio.decay` — the classic decay back-off schedule
  (Bar-Yehuda–Goldreich–Itai [2, 3]): cycle through exponentially
  decreasing transmission probabilities so that *some* nearby transmitter
  wins the channel within ``O(log Δ)`` slots with constant probability.
* :mod:`~repro.radio.mac_adapter` — :class:`RadioMACLayer`, an
  implementation of the acknowledged-local-broadcast interface **on top of
  the radio substrate**: sender runs a decay schedule, the local "ack" is
  the schedule completing (footnote 1: the ack is the MAC asking for the
  next packet, not a receiver acknowledgment).  It measures the *empirical*
  ``Fack`` and ``Fprog`` of each execution, regenerating footnote 2's
  claim: progress stays polylogarithmic in contention while
  acknowledgments grow linearly with it.
* :mod:`~repro.radio.sinr` — :class:`SINRRadioNetwork`, the same slot
  surface under SINR (signal-to-interference-plus-noise) reception over an
  embedded topology, after the local broadcast layer of Halldórsson,
  Holzer & Lynch.  :func:`sinr_mac_layer` plugs it under the unchanged
  :class:`RadioMACLayer`, backing the ``sinr`` experiment substrate.
* :mod:`~repro.radio.engines` — the :data:`RECEPTION_ENGINES` registry of
  interchangeable slot-reception implementations: ``reference`` (the
  historical per-node loops) and ``vectorized`` (numpy-batched; identical
  receptions, selected via ``ModelSpec.engine``).
"""

from repro.radio.decay import DecaySchedule
from repro.radio.engines import (
    RECEPTION_ENGINES,
    ReceptionEngine,
    engine_names,
    numpy_available,
    resolve_engine,
)
from repro.radio.mac_adapter import EmpiricalBounds, RadioMACLayer
from repro.radio.sinr import SINRRadioNetwork, sinr_mac_layer
from repro.radio.slotted import SlottedRadioNetwork

__all__ = [
    "SlottedRadioNetwork",
    "SINRRadioNetwork",
    "sinr_mac_layer",
    "DecaySchedule",
    "RadioMACLayer",
    "EmpiricalBounds",
    "RECEPTION_ENGINES",
    "ReceptionEngine",
    "engine_names",
    "numpy_available",
    "resolve_engine",
]
