"""A synchronous slotted radio network over a dual graph.

Semantics per slot (the graph-based low-level model of [8, 29]):

* every node either **transmits** one packet or **listens**;
* each unreliable edge (``E' \\ E``) is independently *live* this slot with
  probability ``p_unreliable_live`` (random fading); reliable edges are
  always live;
* a listener ``v`` receives a packet iff **exactly one** of its live-edge
  neighbors transmits this slot; two or more transmitting neighbors
  collide and ``v`` hears nothing (no collision detection); transmitters
  hear nothing.

This is the substrate the decay MAC runs on — it has *no* delivery
guarantees of its own; reliability emerges (probabilistically) from
retransmission schedules above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import MACError
from repro.ids import NodeId
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph

#: Map node → packet for one slot's transmissions.
Transmissions = dict[NodeId, Any]
#: Map listener → (sender, packet) received this slot (at most one).
Receptions = dict[NodeId, tuple[NodeId, Any]]


@dataclass
class SlotStats:
    """Counters for one executed slot (useful for contention diagnostics)."""

    slot: int
    transmitters: int
    receptions: int
    collisions: int


class SlottedRadioNetwork:
    """Executes radio slots over a dual graph.

    Args:
        dual: The network; reliable edges always carry, unreliable edges
            fade per slot.
        rng: Random stream for fading.
        p_unreliable_live: Per-slot liveness probability of each unreliable
            edge.
        engine: Reception-engine key (``reference``/``vectorized``/``auto``,
            see :mod:`repro.radio.engines`); all engines compute identical
            receptions from the same stream.
    """

    def __init__(
        self,
        dual: DualGraph,
        rng: RandomSource,
        p_unreliable_live: float = 0.5,
        engine: str = "reference",
    ):
        from repro.radio.engines import resolve_engine

        if not 0.0 <= p_unreliable_live <= 1.0:
            raise MACError(
                f"p_unreliable_live must be in [0,1]: {p_unreliable_live}"
            )
        self.dual = dual
        self._rng = rng
        self.p_unreliable_live = p_unreliable_live
        self.engine = resolve_engine(engine)
        self._slot_pass = None  # built lazily on the first slot
        self.slot = 0
        self.stats: list[SlotStats] = []
        #: Optional :class:`~repro.faults.engine.FaultEngine` (set by the
        #: radio MAC adapter): dead nodes neither transmit nor listen, and
        #: flapped-up grey edges stop fading while they are reliable.
        self.fault_engine = None

    def run_slot(self, transmissions: Transmissions) -> Receptions:
        """Execute one slot and return who received what.

        ``transmissions`` maps each transmitting node to its packet; all
        other nodes listen.
        """
        for sender in transmissions:
            if not self.dual.reliable_graph.has_node(sender):
                raise MACError(f"unknown transmitter {sender}")
        if self._slot_pass is None:
            self._slot_pass = self.engine.slotted_pass(self)
        receptions, collisions = self._slot_pass(transmissions)
        self.stats.append(
            SlotStats(
                slot=self.slot,
                transmitters=len(transmissions),
                receptions=len(receptions),
                collisions=collisions,
            )
        )
        self.slot += 1
        return receptions
