"""``RadioMACLayer``: the abstract MAC layer implemented on real(istic) radio.

This adapter provides the same programming surface as
:class:`~repro.mac.standard.StandardMACLayer` — ``register`` /
``inject_arrival`` / automaton callbacks / ``bcast`` — but realizes
acknowledged local broadcast with a decay back-off schedule over the slotted
collision radio of :mod:`repro.radio.slotted`:

* ``bcast(m)`` starts a decay schedule for ``m``;
* every listener that decodes the packet gets a ``rcv`` (duplicates from
  retransmissions are suppressed per instance);
* in **adaptive** mode (default) the sender keeps running decay phases
  until every reliable neighbor has decoded the packet, then acks — so
  acknowledgment correctness holds by construction and the measured ack
  delay *is* the contention cost;
* in **fixed** mode the sender acks after a fixed number of phases
  (footnote 1's "CSMA finished with this packet"), and delivery to
  reliable neighbors holds only with high probability — the adapter
  reports the realized success rate.

The point of the adapter is :func:`empirical_bounds`: it extracts from a
finished execution the smallest ``Fack`` and ``Fprog`` for which the
execution satisfies the abstract MAC layer's timing axioms.  Benchmarks use
it to regenerate footnote 2's claim — under contention κ, the realized
``Fprog`` grows like ``log κ`` while the realized ``Fack`` grows like κ.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any

from repro.errors import MACError, WellFormednessError
from repro.ids import Message, NodeId, Time
from repro.mac.interfaces import Automaton
from repro.mac.messages import InstanceLog, MessageInstance
from repro.radio.decay import DecaySchedule, decay_depth_for, recommended_phases
from repro.radio.slotted import SlottedRadioNetwork
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph


@dataclass(frozen=True)
class EmpiricalBounds:
    """Realized model constants of one radio-backed execution.

    Attributes:
        fack: Largest observed bcast→ack latency.
        fprog: Smallest progress bound for which the execution satisfies
            the progress axiom (see :func:`minimal_progress_bound`).
        delivery_success_rate: Fraction of (instance, reliable neighbor)
            pairs that were actually delivered before the ack (1.0 in
            adaptive mode by construction).
    """

    fack: Time
    fprog: Time
    delivery_success_rate: float


class _RadioBinding:
    """Per-node MACApi implementation for the radio adapter."""

    def __init__(self, layer: "RadioMACLayer", node_id: NodeId, automaton: Automaton):
        self._layer = layer
        self._node_id = node_id
        self.automaton = automaton

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def reliable_neighbor_ids(self) -> frozenset[NodeId]:
        return self._layer.dual.reliable_neighbors(self._node_id)

    @property
    def gprime_neighbor_ids(self) -> frozenset[NodeId]:
        return self._layer.dual.gprime_neighbors(self._node_id)

    def bcast(self, payload) -> None:
        self._layer.bcast(self._node_id, payload)

    def deliver(self, message: Message) -> None:
        self._layer.record_delivery(self._node_id, message)


class _ActiveBroadcast:
    """A sender's in-flight instance plus its decay schedule."""

    __slots__ = ("instance", "schedule")

    def __init__(self, instance: MessageInstance, schedule: DecaySchedule):
        self.instance = instance
        self.schedule = schedule


class RadioMACLayer:
    """Acknowledged local broadcast implemented with decay over radio slots.

    Args:
        dual: The network.
        rng: Random stream (fading + decay coins).
        slot_duration: Simulated time per radio slot.
        p_unreliable_live: Per-slot fade-in probability of unreliable edges.
        adaptive: Keep transmitting until all reliable neighbors decoded
            (True, default) or ack after the fixed schedule (False).
        phases: Decay phases per schedule block; defaults to
            ``Θ(log n)`` via :func:`recommended_phases`.
        depth: Decay depth; defaults to ``ceil(log2(max G' degree + 1))``.
        fault_engine: Optional :class:`~repro.faults.engine.FaultEngine`;
            the adapter polls it once per slot.  Crashed nodes stop
            transmitting and listening (their in-flight broadcast is
            aborted), adaptive acknowledgment waits only for reliable
            neighbors that are still alive, arrivals addressed to a
            not-yet-joined node fire when it joins, and flapped-up grey
            edges stop fading while reliable.
        network: A pre-built slot-reception engine implementing the
            :class:`~repro.radio.slotted.SlottedRadioNetwork` surface
            (``run_slot`` / ``slot`` / ``stats`` / ``fault_engine``).
            ``None`` (the default) builds the binary collision radio over
            the ``fading`` child stream exactly as before; the ``sinr``
            substrate injects an
            :class:`~repro.radio.sinr.SINRRadioNetwork` here, reusing
            the whole adapter (decay schedules, acknowledgment,
            empirical-bound extraction) over a different reception model.
        delivered_cap: Bound the delivered/dedup table to this many
            entries via :class:`~repro.mac.dedup.DeliveredRing`
            (steady-state service mode).  On this adapter the table *is*
            the delivery record the substrate judges solvedness from, so
            eviction trades exact late-duplicate detection and complete
            delivery accounting for bounded memory — size the cap well
            above the in-flight message population.  ``None`` keeps the
            exact unbounded dict.
        engine: Reception-engine key for the default collision radio
            (``reference``/``vectorized``/``auto``, see
            :mod:`repro.radio.engines`); ignored when ``network`` is
            injected (the injected network carries its own engine).
    """

    def __init__(
        self,
        dual: DualGraph,
        rng: RandomSource,
        slot_duration: Time = 1.0,
        p_unreliable_live: float = 0.5,
        adaptive: bool = True,
        phases: int | None = None,
        depth: int | None = None,
        fault_engine=None,
        network=None,
        delivered_cap: int | None = None,
        engine: str = "reference",
    ):
        if slot_duration <= 0:
            raise MACError(f"slot_duration must be positive: {slot_duration}")
        self.dual = dual
        self.slot_duration = slot_duration
        self.adaptive = adaptive
        self.phases = phases or recommended_phases(dual.n)
        self.depth = (
            depth
            if depth is not None
            else decay_depth_for(dual.max_gprime_degree() + 1)
        )
        self._rng = rng
        self.radio = (
            network
            if network is not None
            else SlottedRadioNetwork(
                dual,
                rng.child("fading"),
                p_unreliable_live=p_unreliable_live,
                engine=engine,
            )
        )
        self.faults = fault_engine
        self._fault_aborted: dict[NodeId, object] = {}
        self._fault_unwoken: set[NodeId] = set()
        self._quiesced = False
        if fault_engine is not None:
            fault_engine.listener = self
            self.radio.fault_engine = fault_engine
        self.instances = InstanceLog()
        self._bindings: dict[NodeId, _RadioBinding] = {}
        self._active: dict[NodeId, _ActiveBroadcast] = {}
        self._arrivals: dict[int, list[tuple[NodeId, Message]]] = {}
        if delivered_cap is not None:
            from repro.mac.dedup import DeliveredRing

            self._delivered: Any = DeliveredRing(delivered_cap)
        else:
            self._delivered = {}
        self._missed_before_ack = 0
        self._required_deliveries = 0

    # ------------------------------------------------------------------
    # Setup (mirrors StandardMACLayer)
    # ------------------------------------------------------------------
    def register(self, node_id: NodeId, automaton: Automaton) -> None:
        """Attach an automaton to a node."""
        if node_id in self._bindings:
            raise MACError(f"node {node_id} registered twice")
        if not self.dual.reliable_graph.has_node(node_id):
            raise MACError(f"node {node_id} is not in the topology")
        self._bindings[node_id] = _RadioBinding(self, node_id, automaton)

    def inject_arrival(
        self, node_id: NodeId, message: Message, time: Time = 0.0
    ) -> None:
        """Queue an environment arrival for the slot covering ``time``."""
        slot = max(0, math.ceil(time / self.slot_duration))
        self._arrivals.setdefault(slot, []).append((node_id, message))

    @property
    def now(self) -> Time:
        """Current simulated time (slots elapsed × slot duration)."""
        return self.radio.slot * self.slot_duration

    # ------------------------------------------------------------------
    # Broadcast entry point (called by node automata)
    # ------------------------------------------------------------------
    def bcast(self, sender: NodeId, payload) -> MessageInstance | None:
        if self.faults is not None and not self.faults.is_active(sender):
            # Remember the payload: recovery replays it as on_abort so a
            # driver that flipped the automaton's sending flag while the
            # node was dead cannot wedge it (see StandardMACLayer.bcast).
            self.faults.note("bcasts_suppressed")
            self._fault_aborted[sender] = payload
            return None
        if sender in self._active:
            raise WellFormednessError(
                f"node {sender} bcast while a broadcast is in flight"
            )
        instance = self.instances.new_instance(sender, payload, self.now)
        schedule = DecaySchedule(
            self.depth, self.phases, self._rng.child(f"decay-{instance.iid}")
        )
        self._active[sender] = _ActiveBroadcast(instance, schedule)
        return instance

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_slots: int = 1_000_000) -> int:
        """Run slots until quiescence (or ``max_slots``); returns slots used."""
        start_slot = self.radio.slot
        self._quiesced = False
        if self.faults is not None:
            self.faults.advance_to(self.now)
        for node_id in sorted(self._bindings):
            if self.faults is not None and not self.faults.is_active(node_id):
                # Absent/churn/insta-crashed nodes wake when they come up.
                self._fault_unwoken.add(node_id)
                continue
            binding = self._bindings[node_id]
            binding.automaton.on_wakeup(binding)
        while self.radio.slot - start_slot < max_slots:
            slot = self.radio.slot
            if self.faults is not None:
                self.faults.advance_to(self.now)
            self._fire_arrivals(slot)
            if not self._active and not self._pending_arrivals(slot):
                break
            self._run_one_slot()
        if self.faults is not None:
            # Replay the rest of the fault timeline (no further slots are
            # simulated) so the final engine state — survivors, joins —
            # matches the event-driven substrates, which drain the
            # installed timeline at quiescence.  _quiesced suppresses the
            # wake/resume callbacks, which must not broadcast into a
            # simulation that has ended.
            self._quiesced = True
            self.faults.advance_to(math.inf)
        return self.radio.slot - start_slot

    # ------------------------------------------------------------------
    # Fault-engine hooks (called during advance_to)
    # ------------------------------------------------------------------
    def fault_node_down(self, node_id: NodeId, kind) -> None:
        """A node crashed or left: its in-flight broadcast dies with it."""
        active = self._active.pop(node_id, None)
        if active is not None:
            active.instance.abort_time = self.now
            self._fault_aborted[node_id] = active.instance.payload
            assert self.faults is not None
            self.faults.note("bcasts_aborted")

    def fault_node_up(self, node_id: NodeId, kind) -> None:
        """A node recovered or joined.

        Mirrors :meth:`StandardMACLayer.fault_node_up`: never-woken nodes
        get their first ``on_wakeup``; recoveries get ``on_abort`` for the
        broadcast the crash killed, so queue-driven automata resume
        transmitting.  Suppressed after the slot loop ends — callbacks
        must not broadcast into a finished run.
        """
        if self._quiesced:
            return
        binding = self._bindings.get(node_id)
        if binding is None:
            return
        if node_id in self._fault_unwoken:
            self._fault_unwoken.discard(node_id)
            binding.automaton.on_wakeup(binding)
            return
        if node_id in self._fault_aborted:
            payload = self._fault_aborted.pop(node_id)
            binding.automaton.on_abort(binding, payload)

    def _pending_arrivals(self, current_slot: int) -> bool:
        return any(s >= current_slot and lst for s, lst in self._arrivals.items())

    def _fire_arrivals(self, slot: int) -> None:
        for node_id, message in self._arrivals.pop(slot, []):
            if self.faults is not None:
                disposition, join_at = self.faults.classify_arrival(
                    node_id, message.mid
                )
                if disposition == "lost":
                    continue
                if disposition == "defer":
                    # Re-queue for the slot in which the node joins.
                    join_slot = max(
                        slot + 1, math.ceil(join_at / self.slot_duration)
                    )
                    self._arrivals.setdefault(join_slot, []).append(
                        (node_id, message)
                    )
                    continue
            binding = self._bindings[node_id]
            binding.automaton.on_arrive(binding, message)

    def _run_one_slot(self) -> None:
        transmissions = {}
        for sender in sorted(self._active):
            if self._active[sender].schedule.should_transmit():
                transmissions[sender] = self._active[sender].instance
        receptions = self.radio.run_slot(transmissions)
        slot_end = self.now  # run_slot advanced the slot counter
        for listener in sorted(receptions):
            sender, instance = receptions[listener]
            if instance.delivered_to(listener):
                continue  # duplicate decode of a retransmission
            instance.rcv_times[listener] = slot_end
            binding = self._bindings[listener]
            binding.automaton.on_receive(binding, instance.payload, sender)
        self._complete_finished(slot_end)

    def _required_receivers(self, sender: NodeId) -> list[NodeId]:
        """Reliable neighbors the sender still owes a delivery.

        Under faults, dead neighbors are owed nothing (the adaptive mode
        would otherwise retransmit forever at a crashed neighbor).
        """
        neighbors = self.dual.reliable_neighbors_sorted(sender)
        if self.faults is None:
            return list(neighbors)
        return [v for v in neighbors if self.faults.is_active(v)]

    def _complete_finished(self, slot_end: Time) -> None:
        for sender in sorted(self._active):
            active = self._active[sender]
            if not active.schedule.complete:
                continue
            missing = [
                v
                for v in self._required_receivers(sender)
                if not active.instance.delivered_to(v)
            ]
            if missing and self.adaptive:
                # Keep going: append another block of decay phases.
                active.schedule = DecaySchedule(
                    self.depth,
                    self.phases,
                    self._rng.child(
                        f"decay-{active.instance.iid}-extra-{int(slot_end)}"
                    ),
                )
                continue
            self._required_deliveries += len(self._required_receivers(sender))
            self._missed_before_ack += len(missing)
            active.instance.ack_time = slot_end
            del self._active[sender]
            binding = self._bindings[sender]
            binding.automaton.on_ack(binding, active.instance.payload)

    # ------------------------------------------------------------------
    # MMB deliver output (mirrors StandardMACLayer)
    # ------------------------------------------------------------------
    def record_delivery(self, node_id: NodeId, message: Message) -> None:
        key = (node_id, message.mid)
        if key in self._delivered:
            raise MACError(
                f"duplicate deliver({message.mid}) at node {node_id}"
            )
        self._delivered[key] = self.now

    @property
    def deliveries(self) -> dict[tuple[NodeId, str], Time]:
        """All ``deliver`` outputs: (node, mid) → time."""
        return self._delivered

    # ------------------------------------------------------------------
    # Empirical model constants
    # ------------------------------------------------------------------
    def empirical_bounds(self) -> EmpiricalBounds:
        """The realized ``Fack``/``Fprog`` of this execution."""
        fack = 0.0
        for inst in self.instances:
            if inst.ack_time is not None:
                fack = max(fack, inst.ack_time - inst.bcast_time)
        fprog = minimal_progress_bound(self.instances, self.dual)
        if self._required_deliveries:
            rate = 1.0 - self._missed_before_ack / self._required_deliveries
        else:
            rate = 1.0
        return EmpiricalBounds(
            fack=fack, fprog=fprog, delivery_success_rate=rate
        )


def minimal_progress_bound(instances: InstanceLog, dual: DualGraph) -> Time:
    """The smallest ``Fprog`` for which an execution satisfies the progress
    axiom.

    Mirrors the axiom checker's reduction: within one connected window
    ``[b, T]`` at receiver ``j``, the constraint at critical start ``s`` is
    ``Fprog ≥ min(f(s) − s, T − s)`` where ``f(s)`` is the earliest receive
    at ``j`` from an instance still contending at ``s`` (``T − s`` voids the
    constraint when no interval longer than ``Fprog`` fits).  The minimal
    valid bound is the maximum of these over all windows and starts.
    """
    insts = list(instances)
    trace_end = 0.0
    for inst in insts:
        trace_end = max(trace_end, inst.bcast_time)
        if inst.rcv_times:
            trace_end = max(trace_end, max(inst.rcv_times.values()))
        trace_end = max(
            trace_end, inst.ack_time or 0.0, inst.abort_time or 0.0
        )
    rcv_by_receiver: dict[NodeId, list[tuple[Time, Time]]] = {}
    for inst in insts:
        term = min(inst.termination_time, trace_end)
        for receiver, rtime in inst.rcv_times.items():
            rcv_by_receiver.setdefault(receiver, []).append((rtime, term))
    # Per receiver: events sorted by termination time, plus a suffix
    # minimum of the receive times.  "Earliest receive among instances
    # still contending at s" (term >= s) is then one bisect + one array
    # lookup instead of a scan — this pass used to be quadratic in the
    # instance count and dominated radio-substrate profiles.
    indexed: dict[NodeId, tuple[list[Time], list[Time]]] = {}
    for receiver, events in rcv_by_receiver.items():
        events.sort(key=lambda rt: rt[1])
        terms = [term for _, term in events]
        suffix_min: list[Time] = [math.inf] * (len(events) + 1)
        for i in range(len(events) - 1, -1, -1):
            suffix_min[i] = min(events[i][0], suffix_min[i + 1])
        indexed[receiver] = (terms, suffix_min)
    needed = 0.0
    for inst in insts:
        begin = inst.bcast_time
        end = min(inst.termination_time, trace_end)
        if end <= begin:
            continue
        for receiver in dual.reliable_neighbors(inst.sender):
            index = indexed.get(receiver)
            if index is None:
                terms, suffix_min = [], [math.inf]
            else:
                terms, suffix_min = index
            starts = [begin] + [
                term + 1e-9 for term in terms if begin < term < end
            ]
            for s in starts:
                if s >= end:
                    continue
                earliest = suffix_min[bisect_left(terms, s)]
                constraint = min(earliest - s, end - s)
                if constraint > needed:
                    needed = constraint
    return needed
