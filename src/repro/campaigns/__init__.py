"""repro.campaigns — resumable reproduction campaigns.

A campaign bundles everything needed to regenerate one of the paper's
artifacts: a named set of sweeps (expanding to deterministic
:class:`~repro.experiments.specs.ExperimentSpec` points), figure
directives, and machine-checkable validation.  The executor shards points
deterministically across jobs/machines, runs them through the parallel
sweep runner, and checkpoints every completed point into a
content-addressed, checksummed result store — so an interrupted campaign
resumes with zero recomputation and running twice is a no-op.

CLI: ``python -m repro campaign {list,run,resume,report,verify,diff}``.

The store speaks to byte storage through the pluggable backends in
:mod:`repro.store`: ``ResultStore("artifacts/store")`` uses the local
directory layout, ``ResultStore("http://host:8750")`` a shared store
served by ``repro store serve`` — campaigns, shards, and machines can
all share one cache.

Quickstart::

    from repro.campaigns import (
        ResultStore, build_campaign, run_campaign, verify_campaign,
    )

    campaign = build_campaign("figure1", n_max=32)
    store = ResultStore("artifacts/store")
    outcome = run_campaign(campaign, store, workers=4)
    print(outcome.describe())          # "... cache hit 0.0%" first time
    report = verify_campaign(campaign, store)
    assert report.ok
"""

from repro.campaigns.chaos import ChaosSpec, parse_chaos
from repro.campaigns.supervision import (
    INTERRUPT_EXIT,
    RESUMABLE_EXIT,
    FabricConfig,
    FabricEvent,
    FabricHealth,
    backoff_delay,
    run_supervised,
)
from repro.campaigns.builtin import (
    CAMPAIGNS,
    CampaignEntry,
    build_campaign,
    list_campaigns,
    register_campaign,
)
from repro.campaigns.checks import (
    BOUNDS,
    CHECKS,
    Point,
    bound_value,
    register_bound,
    register_check,
    workload_k,
    y_value,
)
from repro.campaigns.diff import DiffReport, PointDiff, diff_campaign
from repro.campaigns.executor import (
    CampaignPoint,
    CampaignRun,
    CheckOutcome,
    VerifyReport,
    collect_results,
    evaluate_checks,
    evaluate_trace_checks,
    expand_points,
    parse_shard,
    results_by_sweep,
    run_campaign,
    shard_points,
    verify_campaign,
)
from repro.campaigns.report import campaign_summary_rows, write_artifacts
from repro.campaigns.spec import (
    CampaignSpec,
    CheckSpec,
    FigureSpec,
    SeriesSpec,
    SweepDirective,
    scaled_values,
)
from repro.campaigns.store import ResultStore, StoreStats, spec_key
from repro.campaigns.trace_checks import (
    TRACE_CHECKS,
    register_trace_check,
    run_trace_check,
)

__all__ = [
    "BOUNDS",
    "CAMPAIGNS",
    "CHECKS",
    "CampaignEntry",
    "CampaignPoint",
    "CampaignRun",
    "CampaignSpec",
    "ChaosSpec",
    "CheckOutcome",
    "CheckSpec",
    "DiffReport",
    "PointDiff",
    "FabricConfig",
    "FabricEvent",
    "FabricHealth",
    "FigureSpec",
    "INTERRUPT_EXIT",
    "Point",
    "RESUMABLE_EXIT",
    "ResultStore",
    "SeriesSpec",
    "StoreStats",
    "SweepDirective",
    "TRACE_CHECKS",
    "VerifyReport",
    "backoff_delay",
    "bound_value",
    "build_campaign",
    "campaign_summary_rows",
    "collect_results",
    "diff_campaign",
    "evaluate_checks",
    "evaluate_trace_checks",
    "expand_points",
    "list_campaigns",
    "parse_chaos",
    "parse_shard",
    "register_bound",
    "register_campaign",
    "register_check",
    "register_trace_check",
    "results_by_sweep",
    "run_campaign",
    "run_supervised",
    "run_trace_check",
    "scaled_values",
    "shard_points",
    "spec_key",
    "verify_campaign",
    "workload_k",
    "write_artifacts",
    "y_value",
]
