"""Deterministic chaos injection for the campaign fabric.

The supervised executor (:mod:`repro.campaigns.supervision`) tolerates
crash faults the same way the algorithms it measures do — and like those
algorithms, its fault tolerance should be machine-checked, not asserted.
This module injects faults *deterministically*: every decision is a pure
function of ``(chaos seed, fault kind, spec key, attempt)``, hashed the
same way the simulator derives RNG streams, so a chaos run is exactly
reproducible and — because injected faults stop firing after ``times``
attempts per point — provably converges to the same store contents and
merged artifacts as a fault-free run.

Fault kinds:

``worker_kill``
    The worker process exits hard (``os._exit``) before running the
    point, simulating an OOM kill or preemption.  The supervisor sees
    the pipe close, respawns the worker, and requeues the point.
``point_hang``
    The worker sleeps ``seconds`` before running the point, simulating a
    wedged simulation.  Recovered by the supervisor's per-point timeout
    or by work-stealing (a duplicate dispatch on an idle worker).
``transient_error``
    The worker reports a synthetic exception for the point, exercising
    the bounded-retry/backoff path.
``store_corrupt``
    The supervisor flips bytes in the store entry it just wrote; the
    self-verifying read detects the damage and the point is re-run.

Chaos is an *execution* directive, not provenance: it is carried on
:class:`~repro.campaigns.spec.CampaignSpec` in a field excluded from
serialization and equality, so store keys, manifests, and reports are
byte-identical with and without it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ExperimentError

__all__ = [
    "CHAOS_KINDS",
    "ChaosSpec",
    "chaos_fraction_hits",
    "corrupt_store_entry",
    "parse_chaos",
]

CHAOS_KINDS = ("worker_kill", "point_hang", "transient_error", "store_corrupt")

#: Default hang duration — long enough that a hung point can only complete
#: through supervisor intervention (timeout kill or work-stealing).
DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class ChaosSpec:
    """One deterministic fault-injection directive.

    ``fraction`` of points are hit (selected by hash, not sampling), each
    for its first ``times`` attempts only.  ``seed`` namespaces the
    selection so independent chaos runs can hit different subsets.
    """

    kind: str
    fraction: float = 0.5
    times: int = 1
    seed: int = 0
    seconds: float = field(default=DEFAULT_HANG_SECONDS)

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            known = ", ".join(CHAOS_KINDS)
            raise ExperimentError(f"unknown chaos kind {self.kind!r} (known: {known})")
        if not 0.0 <= self.fraction <= 1.0:
            raise ExperimentError(
                f"chaos fraction must be in [0, 1], got {self.fraction!r}"
            )
        if self.times < 1:
            raise ExperimentError(f"chaos times must be >= 1, got {self.times!r}")
        if self.seconds <= 0:
            raise ExperimentError(f"chaos seconds must be > 0, got {self.seconds!r}")

    def hits(self, spec_key: str, attempt: int) -> bool:
        """True when this directive fires for ``spec_key`` on ``attempt``.

        Attempts are numbered from 0; a directive fires on attempts
        ``0..times-1`` of hit points, so retries always converge once the
        supervisor allows at least ``times`` retries.
        """
        if attempt >= self.times:
            return False
        return chaos_fraction_hits(self.seed, self.kind, spec_key, self.fraction)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "fraction": self.fraction,
            "times": self.times,
            "seed": self.seed,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        return cls(**data)


def chaos_fraction_hits(seed: int, kind: str, spec_key: str, fraction: float) -> bool:
    """Deterministic per-point selection: hash to [0, 1) and threshold.

    Mirrors the simulator's reserved-stream discipline (sha256 over a
    ``/``-joined path) so chaos decisions are independent of every other
    random draw in the system.
    """
    digest = hashlib.sha256(f"chaos/{seed}/{kind}/{spec_key}".encode()).digest()
    u = int.from_bytes(digest[:8], "big") / 2**64
    return u < fraction


def max_chaos_times(chaos: tuple[ChaosSpec, ...]) -> int:
    """Largest ``times`` across retry-consuming directives (0 when none).

    ``point_hang`` is excluded: a hang is recovered by timeout or
    stealing, and the recovery dispatch carries a higher attempt number
    anyway, so it cannot loop forever even with ``times`` large.
    """
    retrying = [c.times for c in chaos if c.kind != "point_hang"]
    return max(retrying, default=0)


def corrupt_store_entry(store, key: str, seed: int) -> None:
    """Deterministically damage the summary entry for ``key``.

    Reads the entry back *through the store's backend*, flips a
    hash-chosen byte, and writes it back the same way — so against an
    HTTP store the corruption round-trips the wire exactly like a real
    write (the transport digest covers the corrupt bytes, so only the
    store's own document-level verify-read can catch it).  Used by the
    supervisor after a checkpoint write when a ``store_corrupt``
    directive fires.
    """
    backend = store.backend
    raw = backend.get("summary", key)
    if not raw:
        return
    data = bytearray(raw)
    digest = hashlib.sha256(f"chaos-corrupt/{seed}/{key}".encode()).digest()
    offset = int.from_bytes(digest[:8], "big") % len(data)
    data[offset] ^= 0xFF
    backend.put("summary", key, bytes(data))


def parse_chaos(text: str) -> ChaosSpec:
    """Parse a CLI chaos directive: ``kind[:param=value,...]``.

    Examples::

        worker_kill
        worker_kill:fraction=0.5,times=2
        point_hang:fraction=0.25,seconds=30,seed=7
    """
    kind, _, params_text = text.partition(":")
    kind = kind.strip()
    params: dict[str, float | int] = {}
    if params_text:
        for item in params_text.split(","):
            name, sep, value = item.partition("=")
            name = name.strip()
            if not sep or not name:
                raise ExperimentError(
                    f"bad chaos parameter {item!r} in {text!r}"
                    " (expected kind:param=value,...)"
                )
            try:
                if name in ("times", "seed"):
                    params[name] = int(value)
                elif name in ("fraction", "seconds"):
                    params[name] = float(value)
                else:
                    known = "fraction, times, seed, seconds"
                    raise ExperimentError(
                        f"unknown chaos parameter {name!r} in {text!r}"
                        f" (known: {known})"
                    )
            except ValueError:
                raise ExperimentError(
                    f"bad chaos value {value!r} for {name!r} in {text!r}"
                ) from None
    return ChaosSpec(kind=kind, **params)
