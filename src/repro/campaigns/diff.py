"""``repro campaign diff``: point-by-point cross-store comparison.

Compares what two stores hold for the *same* campaign — typically a
fresh run against a golden store, a chaos run against a fault-free one,
or two code revisions against each other.  Content addressing makes the
comparison exact: every expanded point has one spec key, and the
byte-identity contract says both stores must hold the same bytes under
it.  Each point lands in exactly one bucket:

``identical``
    Both stores hold the entry and the bytes match (journals too, for
    journaled sweeps).
``metric_delta``
    Both entries decode but their observable outcomes differ — the
    interesting bucket for cross-revision drift; per-field deltas are
    reported.
``journal_delta``
    Summaries are byte-identical but the journal bytes differ (or one
    side's journal is absent).
``missing_a`` / ``missing_b`` / ``missing_both``
    One or both stores have no entry for the point.
``undecodable``
    Bytes differ and at least one side fails document verification
    (corrupt entry — ``repro store verify`` pinpoints it).

Any bucket other than ``identical`` counts as drift; the CLI exits
nonzero on drift so the comparison can gate automation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.campaigns.executor import expand_points
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore, spec_key
from repro.experiments.runner import ExperimentResult

#: Buckets in report order; every bucket after ``identical`` is drift.
DIFF_STATUSES = (
    "identical",
    "metric_delta",
    "journal_delta",
    "missing_a",
    "missing_b",
    "missing_both",
    "undecodable",
)


@dataclass(frozen=True)
class PointDiff:
    """One expanded point's comparison verdict."""

    sweep: str
    index: int
    key: str
    status: str
    detail: str = ""

    def describe(self) -> str:
        line = f"{self.sweep}[{self.index}] {self.key[:12]}…: {self.status}"
        if self.detail:
            line += f" ({self.detail})"
        return line


@dataclass
class DiffReport:
    """What :func:`diff_campaign` found across every expanded point."""

    campaign: CampaignSpec
    store_a: str
    store_b: str
    points: list[PointDiff] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        tally = {status: 0 for status in DIFF_STATUSES}
        for point in self.points:
            tally[point.status] += 1
        return tally

    @property
    def drifted(self) -> list[PointDiff]:
        return [p for p in self.points if p.status != "identical"]

    @property
    def ok(self) -> bool:
        """True when every point is byte-identical in both stores."""
        return not self.drifted

    def describe(self) -> str:
        counts = self.counts
        parts = [f"{counts['identical']}/{len(self.points)} identical"]
        parts += [
            f"{counts[status]} {status}"
            for status in DIFF_STATUSES[1:]
            if counts[status]
        ]
        verdict = "zero drift" if self.ok else "DRIFT"
        return (
            f"campaign {self.campaign.name} diff "
            f"[{self.store_a}] vs [{self.store_b}]: "
            f"{', '.join(parts)} — {verdict}"
        )


def _scalar_delta(name: str, a: float, b: float) -> str | None:
    """A human line for one differing scalar, or ``None`` when equal."""
    if a == b or (
        isinstance(a, float)
        and isinstance(b, float)
        and math.isnan(a)
        and math.isnan(b)
    ):
        return None
    return f"{name}: {a!r} -> {b!r}"


def _result_deltas(a: ExperimentResult, b: ExperimentResult) -> list[str]:
    """Which observable fields differ between two decoded results."""
    deltas = []
    for name in ("solved", "completion_time", "broadcast_count", "delivered_count"):
        line = _scalar_delta(name, getattr(a, name), getattr(b, name))
        if line is not None:
            deltas.append(line)
    metric_names = sorted(set(a.metrics) | set(b.metrics))
    for name in metric_names:
        if name not in a.metrics:
            deltas.append(f"metrics.{name}: absent -> {b.metrics[name]!r}")
        elif name not in b.metrics:
            deltas.append(f"metrics.{name}: {a.metrics[name]!r} -> absent")
        else:
            line = _scalar_delta(
                f"metrics.{name}", a.metrics[name], b.metrics[name]
            )
            if line is not None:
                deltas.append(line)
    series_names = sorted(set(a.series) | set(b.series))
    for name in series_names:
        if a.series.get(name) != b.series.get(name):
            deltas.append(f"series.{name} differs")
    if not deltas:
        deltas.append("results decode equal but entry bytes differ")
    return deltas


def diff_campaign(
    campaign: CampaignSpec,
    store_a: ResultStore,
    store_b: ResultStore,
) -> DiffReport:
    """Compare what two stores hold for every point of ``campaign``."""
    journal_sweeps = {d.name for d in campaign.sweeps if d.journal}
    report = DiffReport(
        campaign=campaign,
        store_a=store_a.backend.describe(),
        store_b=store_b.backend.describe(),
    )
    for point in expand_points(campaign):
        key = spec_key(point.spec)
        raw_a = store_a.backend.get("summary", key)
        raw_b = store_b.backend.get("summary", key)
        status, detail = _diff_summaries(store_a, store_b, point.spec, raw_a, raw_b)
        if status == "identical" and point.sweep in journal_sweeps:
            status, detail = _diff_journals(store_a, store_b, key)
        report.points.append(
            PointDiff(
                sweep=point.sweep,
                index=point.index,
                key=key,
                status=status,
                detail=detail,
            )
        )
    return report


def _diff_summaries(
    store_a: ResultStore,
    store_b: ResultStore,
    spec,
    raw_a: bytes | None,
    raw_b: bytes | None,
) -> tuple[str, str]:
    if raw_a is None and raw_b is None:
        return "missing_both", ""
    if raw_a is None:
        return "missing_a", ""
    if raw_b is None:
        return "missing_b", ""
    if raw_a == raw_b:
        return "identical", ""
    result_a = store_a.get(spec)
    result_b = store_b.get(spec)
    if result_a is None or result_b is None:
        sides = []
        if result_a is None:
            sides.append("A")
        if result_b is None:
            sides.append("B")
        return "undecodable", f"corrupt entry in store {'/'.join(sides)}"
    return "metric_delta", "; ".join(_result_deltas(result_a, result_b))


def _diff_journals(
    store_a: ResultStore, store_b: ResultStore, key: str
) -> tuple[str, str]:
    journal_a = store_a.backend.get("journal", key)
    journal_b = store_b.backend.get("journal", key)
    if journal_a == journal_b:
        return "identical", ""
    sides = []
    if journal_a is None:
        sides.append("absent in A")
    if journal_b is None:
        sides.append("absent in B")
    return "journal_delta", "; ".join(sides) or "journal bytes differ"
