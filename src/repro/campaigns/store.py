"""On-disk result store: content-addressed, checksummed, atomic.

Every completed experiment point is checkpointed as one JSON file keyed by
the SHA-256 of its spec's canonical JSON (the spec embeds the seed, so the
key covers it).  Properties the campaign executor relies on:

* **Resumable** — a hit returns the stored summary without re-running;
  an interrupted campaign recomputes only the missing keys.
* **Atomic** — entries are written to a temp file in the same directory
  and ``os.replace``d into place, so a crash mid-write never leaves a
  half-entry under the final name.
* **Self-verifying** — each entry embeds a SHA-256 over its canonical
  payload; a truncated, corrupted, or hand-edited file fails verification
  and is treated as a miss (re-run), never trusted.
* **Portable** — entries store only the observable outcome (``wall_time``
  is zeroed), so stores merged from different machines or CI shards are
  byte-identical to a single-machine run.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult
from repro.experiments.specs import ExperimentSpec
from repro.runtime.journal import Journal, dump_journal, loads_journal
from repro.runtime.observations import Observation

#: Bumped when the entry layout changes; older entries read as misses.
#: 2: result payloads carry the ``series`` dict (per-window curves).
STORE_FORMAT = 2


def spec_key(spec: ExperimentSpec) -> str:
    """The store key of a spec: SHA-256 over its canonical JSON."""
    return hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()


def _payload_digest(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Counters for one store session (hits/misses/corruption)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


@dataclass
class ResultStore:
    """A directory of checkpointed experiment results.

    Args:
        root: Store directory (created lazily on first write).
    """

    root: str
    stats: StoreStats = field(default_factory=StoreStats)

    def path_for(self, key: str) -> str:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def journal_path_for(self, key: str) -> str:
        """Where the observation journal for ``key`` lives (same fan-out)."""
        return os.path.join(self.root, key[:2], f"{key}.obs.jsonl.gz")

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> ExperimentResult | None:
        """The stored summary for ``spec``, or ``None`` (miss/corrupt).

        A present-but-invalid entry — unparseable JSON, wrong format
        version, checksum mismatch, or a stored spec that does not round-
        trip to the requested one — counts as corrupt *and* as a miss:
        the caller re-runs the point and the rewrite heals the store.
        """
        key = spec_key(spec)
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        result = self._decode(document, key, spec)
        if result is None:
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return result

    def _decode(
        self, document: Any, key: str, spec: ExperimentSpec
    ) -> ExperimentResult | None:
        if not isinstance(document, dict):
            return None
        if document.get("format") != STORE_FORMAT:
            return None
        payload = document.get("payload")
        if not isinstance(payload, dict):
            return None
        if document.get("sha256") != _payload_digest(payload):
            return None
        if payload.get("key") != key:
            return None
        try:
            result = ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None
        if result.spec != spec:
            return None
        return result

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def put(self, result: ExperimentResult) -> str:
        """Checkpoint ``result`` atomically; returns the entry path.

        The summary is stored without ``wall_time`` (see module docstring)
        so entry bytes depend only on the spec and its deterministic
        outcome.
        """
        key = spec_key(result.spec)
        payload = {
            "key": key,
            "result": result.to_dict(),
        }
        document = {
            "format": STORE_FORMAT,
            "sha256": _payload_digest(payload),
            "payload": payload,
        }
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, tmp_path = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as fh:
                json.dump(document, fh, sort_keys=True, indent=1)
                fh.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def sweep_stale_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Remove orphaned atomic-write temp files; returns the count.

        A worker killed mid-``put`` leaves its ``.*.tmp`` file behind
        (``os.replace`` never ran).  Such orphans are garbage — the entry
        either landed under its final name or it didn't — but only files
        older than ``max_age_seconds`` are swept so a concurrent writer's
        in-flight temp file is never touched.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        cutoff = time.time() - max_age_seconds
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not (name.startswith(".") and name.endswith(".tmp")):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.path.getmtime(path) < cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    continue
        return removed

    # ------------------------------------------------------------------
    # Observation journals (sweeps with ``journal=True``)
    # ------------------------------------------------------------------
    def has_journal(self, spec: ExperimentSpec) -> bool:
        """Whether a journal file exists for ``spec`` (no validation)."""
        return os.path.exists(self.journal_path_for(spec_key(spec)))

    def get_journal(self, spec: ExperimentSpec) -> Journal | None:
        """The stored journal for ``spec``, or ``None`` (miss/corrupt).

        Same contract as :meth:`get`: an unreadable or malformed journal
        counts as corrupt and as a miss, so the caller re-runs the point
        and the rewrite heals the store.
        """
        key = spec_key(spec)
        path = self.journal_path_for(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.corrupt += 1
            return None
        try:
            if raw[:2] == b"\x1f\x8b":
                raw = gzip.decompress(raw)
            journal = loads_journal(raw.decode("utf-8"), where=path)
        except (ExperimentError, OSError, EOFError, UnicodeDecodeError):
            self.stats.corrupt += 1
            return None
        if journal.meta.get("spec_key") != key:
            self.stats.corrupt += 1
            return None
        return journal

    def put_journal(
        self,
        spec: ExperimentSpec,
        observations: tuple[Observation, ...],
    ) -> str:
        """Persist a point's observation journal atomically.

        The journal's bytes depend only on the spec and its deterministic
        stream (``profile`` records are excluded by the journal writer),
        so shards and machines produce byte-identical files.
        """
        key = spec_key(spec)
        data = dump_journal(
            observations,
            meta={"spec": spec.to_dict(), "spec_key": key},
        )
        path = self.journal_path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, tmp_path = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(handle, "wb") as fh:
                fh.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path
