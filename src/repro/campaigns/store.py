"""Content-addressed result store: checksummed, atomic, backend-pluggable.

Every completed experiment point is checkpointed as one JSON document
keyed by the SHA-256 of its spec's canonical JSON (the spec embeds the
seed, so the key covers it).  Properties the campaign executor relies on:

* **Resumable** — a hit returns the stored summary without re-running;
  an interrupted campaign recomputes only the missing keys.
* **Atomic** — backends write entries so a crash mid-write never leaves
  a half-entry under the final name (the local backend uses temp file +
  ``os.replace``; the HTTP server does the same on its own disk).
* **Self-verifying** — each entry embeds a SHA-256 over its canonical
  payload; a truncated, corrupted, or hand-edited entry fails
  verification and is treated as a miss (re-run), never trusted.  The
  HTTP backend additionally verifies a transport digest on every read.
* **Portable** — entries store only the observable outcome (``wall_time``
  is zeroed), so stores merged from different machines or CI shards are
  byte-identical to a single-machine run.

This module owns the *document* layer — encoding, checksums, spec
round-trips.  *Where the bytes live* is a
:class:`~repro.store.backend.StoreBackend`: a local directory (the
historical layout, unchanged) or an ``http(s)://`` store served by
``repro store serve``.  ``ResultStore("artifacts/store")`` and
``ResultStore("http://host:8750")`` behave identically to callers.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult
from repro.experiments.specs import ExperimentSpec
from repro.runtime.journal import Journal, dump_journal, loads_journal
from repro.runtime.observations import Observation
from repro.store.backend import StoreBackend, StoreIntegrityError, open_backend

#: Bumped when the entry layout changes; older entries read as misses.
#: 2: result payloads carry the ``series`` dict (per-window curves).
STORE_FORMAT = 2


def spec_key(spec: ExperimentSpec) -> str:
    """The store key of a spec: SHA-256 over its canonical JSON."""
    return hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()


def _payload_digest(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Counters for one store session (hits/misses/corruption)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


@dataclass
class ResultStore:
    """A store of checkpointed experiment results.

    Args:
        root: Store location — a directory path (created lazily on first
            write), an ``http(s)://`` store URL, or an already-open
            :class:`~repro.store.backend.StoreBackend`.
    """

    root: str
    stats: StoreStats = field(default_factory=StoreStats)
    backend: StoreBackend = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.root, str):
            self.backend = open_backend(self.root)
        else:
            self.backend = self.root
            self.root = self.backend.describe()

    def path_for(self, key: str) -> str:
        """Where the summary entry for ``key`` lives (path or URL)."""
        return self.backend.location("summary", key)

    def journal_path_for(self, key: str) -> str:
        """Where the observation journal for ``key`` lives."""
        return self.backend.location("journal", key)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> ExperimentResult | None:
        """The stored summary for ``spec``, or ``None`` (miss/corrupt).

        A present-but-invalid entry — unparseable JSON, wrong format
        version, checksum mismatch (document-level or HTTP transport-
        level), or a stored spec that does not round-trip to the
        requested one — counts as corrupt *and* as a miss: the caller
        re-runs the point and the rewrite heals the store.  An
        *unreachable* backend raises instead — silence there would
        silently re-run an entire cached campaign.
        """
        key = spec_key(spec)
        try:
            data = self.backend.get("summary", key)
        except StoreIntegrityError:
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        if data is None:
            self.stats.misses += 1
            return None
        try:
            document = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        result = self._decode(document, key, spec)
        if result is None:
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return result

    def _decode(
        self, document: Any, key: str, spec: ExperimentSpec
    ) -> ExperimentResult | None:
        if not isinstance(document, dict):
            return None
        if document.get("format") != STORE_FORMAT:
            return None
        payload = document.get("payload")
        if not isinstance(payload, dict):
            return None
        if document.get("sha256") != _payload_digest(payload):
            return None
        if payload.get("key") != key:
            return None
        try:
            result = ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None
        if result.spec != spec:
            return None
        return result

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def encode(self, result: ExperimentResult) -> tuple[str, bytes]:
        """The ``(key, entry bytes)`` a result checkpoints as.

        The encoding is the byte-identity contract: every backend stores
        exactly these bytes, so stores written through different
        backends (or merged across machines) stay byte-for-byte equal.
        """
        key = spec_key(result.spec)
        payload = {
            "key": key,
            "result": result.to_dict(),
        }
        document = {
            "format": STORE_FORMAT,
            "sha256": _payload_digest(payload),
            "payload": payload,
        }
        text = json.dumps(document, sort_keys=True, indent=1) + "\n"
        return key, text.encode("utf-8")

    def put(self, result: ExperimentResult) -> str:
        """Checkpoint ``result`` atomically; returns the entry location.

        The summary is stored without ``wall_time`` (see module
        docstring) so entry bytes depend only on the spec and its
        deterministic outcome.
        """
        key, data = self.encode(result)
        location = self.backend.put("summary", key, data)
        self.stats.writes += 1
        return location

    def sweep_stale_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Remove orphaned atomic-write temp files; returns the count."""
        return self.backend.sweep_stale_tmp(max_age_seconds)

    # ------------------------------------------------------------------
    # Observation journals (sweeps with ``journal=True``)
    # ------------------------------------------------------------------
    def has_journal(self, spec: ExperimentSpec) -> bool:
        """Whether a journal entry exists for ``spec`` (no download).

        Goes through the backend's ``head`` — against an HTTP store this
        is a HEAD request, so probing a journaled campaign's cache state
        never transfers journal bytes.
        """
        return self.backend.head("journal", spec_key(spec))

    def get_journal(self, spec: ExperimentSpec) -> Journal | None:
        """The stored journal for ``spec``, or ``None`` (miss/corrupt).

        Same contract as :meth:`get`: an unreadable or malformed journal
        counts as corrupt and as a miss, so the caller re-runs the point
        and the rewrite heals the store.
        """
        key = spec_key(spec)
        try:
            raw = self.backend.get("journal", key)
        except StoreIntegrityError:
            self.stats.corrupt += 1
            return None
        if raw is None:
            return None
        where = self.journal_path_for(key)
        try:
            if raw[:2] == b"\x1f\x8b":
                raw = gzip.decompress(raw)
            journal = loads_journal(raw.decode("utf-8"), where=where)
        except (ExperimentError, OSError, EOFError, UnicodeDecodeError):
            self.stats.corrupt += 1
            return None
        if journal.meta.get("spec_key") != key:
            self.stats.corrupt += 1
            return None
        return journal

    def put_journal(
        self,
        spec: ExperimentSpec,
        observations: tuple[Observation, ...],
    ) -> str:
        """Persist a point's observation journal atomically.

        The journal's bytes depend only on the spec and its deterministic
        stream (``profile`` records are excluded by the journal writer),
        so shards and machines produce byte-identical files.
        """
        key = spec_key(spec)
        data = dump_journal(
            observations,
            meta={"spec": spec.to_dict(), "spec_key": key},
        )
        location = self.backend.put("journal", key, data)
        self.stats.writes += 1
        return location
