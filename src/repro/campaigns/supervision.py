"""Supervised campaign execution fabric.

The executor used to hand each checkpoint batch to ``run_sweep`` and
trust every worker process to return: one hung point stalled the batch,
one killed worker lost it, and there was no retry, no budget, and no
record of what went wrong.  This module replaces that with a work-queue
supervisor modeled on the fault-tolerance framing of the paper it
reproduces — the fabric tolerates crash faults the way the algorithms it
measures do:

* **Pool of worker processes**, one duplex pipe each (never a shared
  queue: a worker killed mid-``get`` cannot poison anyone else's lock).
  A dead worker is detected by pipe EOF, respawned, and its point
  requeued.
* **Per-point wall-clock timeouts** — a point that exceeds
  ``point_timeout`` gets its worker killed and is requeued.
* **Bounded retries with deterministic exponential backoff** — the
  retry delay is derived from the spec key and attempt number (hashed,
  not sampled from wall clock), so a rerun of the same campaign retries
  on the same schedule.
* **Straggler detection with work-stealing** — once enough points have
  completed to estimate a typical runtime, an in-flight point running
  ``straggler_factor``× longer than the median is duplicated onto an
  idle worker; whichever copy finishes first wins and the loser is
  discarded.
* **Campaign-level budgets** — ``wall_budget`` (seconds) and
  ``point_budget`` (points executed this invocation) stop dispatching
  when exhausted.  Everything completed is already checkpointed
  (checkpointing is per point, not per batch), the run reports which
  points are missing, and the CLI exits with :data:`RESUMABLE_EXIT` so
  automation knows ``campaign resume`` will finish the job.

Faults are injected deterministically by :mod:`repro.campaigns.chaos`;
because injected faults stop firing after ``times`` attempts and the
supervisor validates ``times <= max_retries``, a chaos run converges to
byte-identical store contents and merged artifacts versus a fault-free
run — which CI checks.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection

from repro.campaigns.chaos import (
    ChaosSpec,
    corrupt_store_entry,
    max_chaos_times,
)
from repro.campaigns.store import ResultStore, spec_key
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult, RunOptions
from repro.experiments.specs import ExperimentSpec
from repro.experiments.sweep import _run_with_options
from repro.store.backend import StoreError
from repro.store.retry import deterministic_backoff

__all__ = [
    "INTERRUPT_EXIT",
    "RESUMABLE_EXIT",
    "FabricConfig",
    "FabricEvent",
    "FabricHealth",
    "FabricOutcome",
    "backoff_delay",
    "run_supervised",
]

#: Exit status for a budget-exhausted campaign run: every completed point
#: is checkpointed and ``campaign resume`` continues — EX_TEMPFAIL in
#: sysexits terms, distinct from hard failure (1) and usage error (2).
RESUMABLE_EXIT = 75

#: Exit status after Ctrl-C: completed points are checkpointed and
#: ``campaign resume`` continues (conventional 128 + SIGINT).
INTERRUPT_EXIT = 130

#: Worker exit code used by chaos ``worker_kill`` (mirrors SIGKILL's
#: conventional 128+9 so logs read like a real OOM kill).
_CHAOS_KILL_EXIT = 137

#: Bound on the retained per-event history (counters are never bounded).
MAX_EVENTS = 200

#: Counter names in render order.  ``dispatched``/``completed`` describe
#: normal progress; everything after is an anomaly.
_COUNTERS = (
    "dispatched",
    "completed",
    "retried",
    "timeouts",
    "worker_deaths",
    "steals",
    "transient_errors",
    "corrupt_rewrites",
    "gave_up",
    "discarded_duplicates",
)
_ANOMALIES = _COUNTERS[2:]


@dataclass(frozen=True)
class FabricConfig:
    """Supervision policy for one campaign invocation.

    Everything is optional: the defaults supervise without timeouts or
    budgets, retry up to ``max_retries`` times, and steal work from
    stragglers once ``straggler_min_done`` points have completed.
    """

    workers: int = 1
    point_timeout: float | None = None
    max_retries: int = 3
    backoff_base: float = 0.05
    straggler_factor: float = 4.0
    straggler_min_done: int = 3
    wall_budget: float | None = None
    point_budget: int | None = None
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExperimentError(f"fabric workers must be >= 1, got {self.workers}")
        if self.max_retries < 0:
            raise ExperimentError(
                f"fabric max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0:
            raise ExperimentError(
                f"fabric backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ExperimentError(
                f"fabric point_timeout must be > 0, got {self.point_timeout}"
            )
        if self.straggler_factor <= 1.0:
            raise ExperimentError(
                f"fabric straggler_factor must be > 1, got {self.straggler_factor}"
            )
        if self.straggler_min_done < 1:
            raise ExperimentError(
                f"fabric straggler_min_done must be >= 1, got {self.straggler_min_done}"
            )
        if self.wall_budget is not None and self.wall_budget < 0:
            raise ExperimentError(
                f"fabric wall_budget must be >= 0, got {self.wall_budget}"
            )
        if self.point_budget is not None and self.point_budget < 0:
            raise ExperimentError(
                f"fabric point_budget must be >= 0, got {self.point_budget}"
            )
        if self.poll_interval <= 0:
            raise ExperimentError(
                f"fabric poll_interval must be > 0, got {self.poll_interval}"
            )


@dataclass(frozen=True)
class FabricEvent:
    """One recorded supervisor anomaly (dispatches are only counted)."""

    seq: int
    kind: str
    point: str
    attempt: int
    detail: str = ""

    def describe(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.kind} {self.point} attempt {self.attempt}{suffix}"


@dataclass
class FabricHealth:
    """Counters plus a bounded anomaly log for one supervised run."""

    counters: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in _COUNTERS}
    )
    events: list[FabricEvent] = field(default_factory=list)
    dropped_events: int = 0

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record(self, kind: str, point: str, attempt: int, detail: str = "") -> None:
        if len(self.events) >= MAX_EVENTS:
            self.dropped_events += 1
            return
        self.events.append(FabricEvent(len(self.events), kind, point, attempt, detail))

    def anomalies(self) -> dict[str, int]:
        """Nonzero anomaly counters (empty for a clean fault-free run)."""
        return {k: self.counters[k] for k in _ANOMALIES if self.counters.get(k)}

    def describe(self) -> str:
        """Compact anomaly summary, e.g. ``retried 2, worker_deaths 1``."""
        anomalies = self.anomalies()
        if not anomalies:
            return "no faults observed"
        return ", ".join(f"{k} {v}" for k, v in anomalies.items())

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "events": [dataclasses.asdict(e) for e in self.events],
            "dropped_events": self.dropped_events,
        }


@dataclass(frozen=True)
class FabricJob:
    """One unit of supervised work: run ``spec``, checkpoint the result.

    ``position`` is the point's index in the campaign's deterministic
    expansion order (the executor's ``points`` list); ``label`` names it
    for health events (``sweep[index]``).  ``journaled`` selects the
    observation-keeping worker and a journal checkpoint; ``options``
    overrides the per-point capture entirely (a
    :class:`~repro.experiments.runner.RunOptions` from the sweep
    directive) — ``None`` derives it from ``journaled``.
    """

    position: int
    label: str
    spec: ExperimentSpec
    journaled: bool = False
    options: RunOptions | None = None

    def run_options(self) -> RunOptions:
        """The effective capture options shipped to the worker."""
        if self.options is not None:
            return self.options
        return RunOptions.observed() if self.journaled else RunOptions.summary()


@dataclass
class FabricOutcome:
    """What a supervised invocation produced."""

    results: dict[int, ExperimentResult]
    failed: dict[int, str]
    health: FabricHealth
    exhausted: str | None = None


#: Deterministic exponential backoff for retry ``attempt`` (>= 1) — the
#: same schedule the HTTP store backend retries transport errors on
#: (moved to :mod:`repro.store.retry`; re-exported here because it is
#: part of this module's public fabric API).
backoff_delay = deterministic_backoff


def _worker_chaos(chaos: tuple[ChaosSpec, ...], key: str, attempt: int):
    """First worker-side directive firing for (key, attempt), if any."""
    for spec in chaos:
        if spec.kind in ("worker_kill", "point_hang", "transient_error"):
            if spec.hits(key, attempt):
                return spec
    return None


def _fabric_worker(conn, chaos: tuple[ChaosSpec, ...]) -> None:
    """Worker main loop: receive (task_id, spec, attempt, options) jobs.

    Replies ``("ok", task_id, result)`` or ``("error", task_id, text)``.
    Never raises out of a job: a failing point is reported, not fatal.
    Chaos directives fire *before* the run so an injected fault costs a
    requeue, never a wasted simulation.
    """
    try:
        while True:
            message = conn.recv()
            if message[0] == "exit":
                return
            _, task_id, spec, attempt, options = message
            directive = _worker_chaos(chaos, spec_key(spec), attempt)
            if directive is not None:
                if directive.kind == "worker_kill":
                    conn.close()
                    os._exit(_CHAOS_KILL_EXIT)
                if directive.kind == "transient_error":
                    conn.send(("error", task_id, "injected transient_error (chaos)"))
                    continue
                if directive.kind == "point_hang":
                    time.sleep(directive.seconds)
            try:
                result = _run_with_options(spec, options)
            except Exception as exc:
                conn.send(("error", task_id, f"{type(exc).__name__}: {exc}"))
                continue
            conn.send(("ok", task_id, result))
    except (EOFError, OSError, KeyboardInterrupt):
        return


class _Worker:
    """One supervised worker process and its duplex pipe."""

    __slots__ = ("process", "conn", "inflight")

    def __init__(self, chaos: tuple[ChaosSpec, ...]) -> None:
        parent_conn, child_conn = Pipe()
        self.process = Process(
            target=_fabric_worker, args=(child_conn, chaos), daemon=True
        )
        self.process.start()
        # Close our copy of the child end so a dead worker reads as EOF.
        child_conn.close()
        self.conn = parent_conn
        self.inflight: _InFlight | None = None

    def dispatch(self, task: "_InFlight", job: FabricJob) -> None:
        self.conn.send(
            ("run", task.task_id, job.spec, task.attempt, job.run_options())
        )
        self.inflight = task

    def shutdown(self, kill: bool = False) -> None:
        if not kill:
            try:
                self.conn.send(("exit",))
            except (OSError, ValueError):
                pass
            self.process.join(timeout=0.2)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.conn.close()


@dataclass
class _InFlight:
    task_id: int
    position: int
    attempt: int
    started: float


@dataclass
class _Pending:
    position: int
    attempt: int
    ready_at: float


class _Supervisor:
    """State machine behind :func:`run_supervised` (one invocation)."""

    def __init__(
        self,
        jobs: list[FabricJob],
        store: ResultStore | None,
        config: FabricConfig,
        chaos: tuple[ChaosSpec, ...],
    ) -> None:
        self.jobs = {job.position: job for job in jobs}
        self.keys = {job.position: spec_key(job.spec) for job in jobs}
        self.store = store
        self.config = config
        self.chaos = chaos
        self.health = FabricHealth()
        self.results: dict[int, ExperimentResult] = {}
        self.failed: dict[int, str] = {}
        self.exhausted: str | None = None
        self.pending: deque[_Pending] = deque(
            _Pending(job.position, 0, 0.0) for job in jobs
        )
        self.workers: list[_Worker] = []
        self.stolen: set[int] = set()
        self.runtimes: list[float] = []
        self.task_seq = 0
        self.started = time.monotonic()

    # -- queue/bookkeeping helpers ------------------------------------

    def _label(self, position: int) -> str:
        return self.jobs[position].label

    def _settled(self, position: int) -> bool:
        return position in self.results or position in self.failed

    def _open_points(self) -> int:
        return len(self.jobs) - len(self.results) - len(self.failed)

    def _requeue(self, position: int, attempt: int, kind: str, detail: str) -> None:
        """Retry ``position`` after a fault on ``attempt``, or give up."""
        if self._settled(position):
            return
        next_attempt = attempt + 1
        if next_attempt > self.config.max_retries:
            self.failed[position] = detail or kind
            self.health.count("gave_up")
            self.health.record("gave_up", self._label(position), attempt, detail)
            return
        delay = backoff_delay(
            self.keys[position], next_attempt, self.config.backoff_base
        )
        self.pending.append(
            _Pending(position, next_attempt, time.monotonic() + delay)
        )
        self.health.count("retried")
        self.health.record(kind, self._label(position), attempt, detail)

    def _checkpoint(self, position: int, attempt: int, result) -> bool:
        """Persist one completed point; False means corrupt → re-run.

        With a store, journaled results persist their observation stream
        first, then the summary entry (observations stripped, matching
        the cache-hit shape).  A ``store_corrupt`` chaos directive fires
        *after* the write so the self-verifying read is what catches it.
        """
        job = self.jobs[position]
        if job.journaled and self.store is not None:
            self.store.put_journal(result.spec, result.observations)
        if job.journaled:
            result = dataclasses.replace(result, observations=())
        if self.store is None:
            self.results[position] = result
            return True
        self.store.put(result)
        key = self.keys[position]
        for spec in self.chaos:
            if spec.kind == "store_corrupt" and spec.hits(key, attempt):
                corrupt_store_entry(self.store, key, spec.seed)
                self.health.count("corrupt_rewrites")
                self.health.record(
                    "store_corrupt", job.label, attempt, "injected entry corruption"
                )
                if self.store.get(result.spec) is None:
                    return False
                break
        self.results[position] = result
        return True

    # -- worker lifecycle ---------------------------------------------

    def _spawn_workers(self) -> None:
        count = min(self.config.workers, max(1, len(self.jobs)))
        self.workers = [_Worker(self.chaos) for _ in range(count)]

    def _replace_worker(self, worker: _Worker) -> None:
        index = self.workers.index(worker)
        worker.shutdown(kill=True)
        self.workers[index] = _Worker(self.chaos)

    def _handle_reply(self, worker: _Worker, message) -> None:
        status, task_id, payload = message
        task = worker.inflight
        worker.inflight = None
        if task is None or task.task_id != task_id:
            return
        if self._settled(task.position):
            self.health.count("discarded_duplicates")
            return
        elapsed = time.monotonic() - task.started
        if status == "ok":
            try:
                checkpointed = self._checkpoint(task.position, task.attempt, payload)
            except StoreError as exc:
                # The store backend failed (server down, transport fault).
                # The point itself succeeded, but without a durable
                # checkpoint it never happened — retry on the bounded
                # backoff schedule like any transient fault, so a store
                # that comes back mid-campaign loses nothing.
                self.health.count("transient_errors")
                self._requeue(task.position, task.attempt, "store_error", str(exc))
                return
            if checkpointed:
                self.runtimes.append(elapsed)
                self.health.count("completed")
            else:
                self._requeue(
                    task.position,
                    task.attempt,
                    "store_corrupt",
                    "checkpoint failed verification; re-running",
                )
        else:
            self.health.count("transient_errors")
            self._requeue(task.position, task.attempt, "point_error", str(payload))

    def _handle_death(self, worker: _Worker) -> None:
        task = worker.inflight
        self.health.count("worker_deaths")
        label = self._label(task.position) if task else "-"
        attempt = task.attempt if task else 0
        self.health.record("worker_death", label, attempt, "pipe closed; respawned")
        self._replace_worker(worker)
        if task is not None:
            self._requeue(task.position, task.attempt, "worker_death", "worker died")

    def _reap(self) -> None:
        """Collect replies and detect deaths without blocking."""
        busy = [w for w in self.workers if w.inflight is not None]
        if not busy:
            return
        ready = connection.wait(
            [w.conn for w in busy], timeout=self.config.poll_interval
        )
        for worker in busy:
            if worker.conn not in ready:
                continue
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._handle_death(worker)
                continue
            self._handle_reply(worker, message)

    def _check_timeouts(self) -> None:
        timeout = self.config.point_timeout
        if timeout is None:
            return
        now = time.monotonic()
        for worker in self.workers:
            task = worker.inflight
            if task is None or now - task.started <= timeout:
                continue
            self.health.count("timeouts")
            self._requeue(
                task.position,
                task.attempt,
                "timeout",
                f"exceeded {timeout:g}s; worker killed",
            )
            worker.inflight = None
            self._replace_worker(worker)

    # -- dispatch ------------------------------------------------------

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        idle = [w for w in self.workers if w.inflight is None]
        if not idle:
            return
        deferred: list[_Pending] = []
        while self.pending and idle:
            entry = self.pending.popleft()
            if self._settled(entry.position):
                continue
            if entry.ready_at > now:
                deferred.append(entry)
                continue
            worker = idle.pop()
            self.task_seq += 1
            task = _InFlight(self.task_seq, entry.position, entry.attempt, now)
            try:
                worker.dispatch(task, self.jobs[entry.position])
            except (OSError, ValueError):
                # The worker died between reap and dispatch; respawn and
                # put the entry back untouched (no attempt consumed).
                self._handle_death(worker)
                deferred.append(entry)
                continue
            self.health.count("dispatched")
        self.pending.extend(deferred)
        if idle:
            self._steal(idle, now)

    def _steal(self, idle: list[_Worker], now: float) -> None:
        """Duplicate the slowest straggler onto an idle worker."""
        if len(self.runtimes) < self.config.straggler_min_done:
            return
        ordered = sorted(self.runtimes)
        median = ordered[len(ordered) // 2]
        floor = 4 * self.config.poll_interval
        threshold = max(self.config.straggler_factor * median, floor)
        inflight = sorted(
            (w.inflight for w in self.workers if w.inflight is not None),
            key=lambda t: t.started,
        )
        for task in inflight:
            if not idle:
                return
            if now - task.started <= threshold or task.position in self.stolen:
                continue
            if self._settled(task.position):
                continue
            worker = idle.pop()
            self.task_seq += 1
            duplicate = _InFlight(self.task_seq, task.position, task.attempt + 1, now)
            worker.dispatch(duplicate, self.jobs[task.position])
            self.stolen.add(task.position)
            self.health.count("dispatched")
            self.health.count("steals")
            self.health.record(
                "steal",
                self._label(task.position),
                task.attempt,
                f"straggler after {now - task.started:.2f}s; re-dispatched",
            )

    def _check_budgets(self) -> bool:
        """True when a budget is exhausted and dispatching must stop."""
        if self.exhausted is not None:
            return True
        config = self.config
        if (
            config.wall_budget is not None
            and time.monotonic() - self.started > config.wall_budget
        ):
            self.exhausted = "wall_budget"
        elif (
            config.point_budget is not None
            and self.health.counters["completed"] >= config.point_budget
            and self._open_points() > 0
        ):
            self.exhausted = "point_budget"
        if self.exhausted is not None:
            self.health.record(
                "budget",
                "-",
                0,
                f"{self.exhausted} exhausted with {self._open_points()} points open",
            )
            return True
        return False

    # -- main loop -----------------------------------------------------

    def run(self) -> FabricOutcome:
        if not self.jobs:
            return FabricOutcome({}, {}, self.health)
        self._spawn_workers()
        try:
            while self._open_points() > 0:
                if self._check_budgets():
                    break
                self._dispatch_ready()
                self._reap()
                self._check_timeouts()
                if not any(w.inflight for w in self.workers) and self.pending:
                    # Everything queued is backing off; sleep to the
                    # earliest ready time instead of spinning.
                    now = time.monotonic()
                    wake = min(entry.ready_at for entry in self.pending)
                    if wake > now:
                        time.sleep(min(wake - now, self.config.poll_interval))
        finally:
            for worker in self.workers:
                worker.shutdown(kill=worker.inflight is not None)
        return FabricOutcome(self.results, self.failed, self.health, self.exhausted)


def run_supervised(
    jobs: list[FabricJob],
    store: ResultStore | None,
    config: FabricConfig | None = None,
    chaos: tuple[ChaosSpec, ...] = (),
) -> FabricOutcome:
    """Run ``jobs`` under supervision; every completion is checkpointed.

    Raises :class:`ExperimentError` when a retry-consuming chaos
    directive needs more attempts than ``config.max_retries`` allows —
    that combination could never converge, and convergence (chaos run ==
    fault-free run) is the harness's contract.
    """
    config = config or FabricConfig()
    needed = max_chaos_times(tuple(chaos))
    if needed > config.max_retries:
        raise ExperimentError(
            f"chaos needs {needed} retries per point but the fabric allows"
            f" {config.max_retries}; raise --retries or lower chaos times"
        )
    return _Supervisor(list(jobs), store, config, tuple(chaos)).run()
