"""Campaign artifacts: CSV tables, ASCII charts, SVG figures, report.md.

Everything written here is a pure function of the campaign spec and its
(deterministic) results — no timestamps, no wall times, no machine state —
so a resumed or re-sharded campaign regenerates byte-identical artifacts,
and CI can diff two runs to prove the cache is sound.

The SVG renderer is hand-rolled (the repo deliberately has no plotting
dependency); when matplotlib happens to be importable a PNG is written
too, but nothing depends on it.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import percentile, summarize
from repro.analysis.tables import render_table
from repro.campaigns.checks import Point, PointsBySweep, bound_value, y_value
from repro.campaigns.executor import CheckOutcome
from repro.campaigns.spec import CampaignSpec, FigureSpec
from repro.errors import ExperimentError
from repro.experiments.runner import encode_float
from repro.experiments.sweep import path_value


def _fmt(value: float) -> str:
    """Deterministic, compact number text for CSV/SVG output."""
    return repr(round(float(value), 9))


@dataclass(frozen=True)
class SeriesData:
    """One aggregated curve: (x, stats) rows in ascending x order."""

    label: str
    agg: str
    rows: tuple[tuple[float, dict[str, float]], ...]

    def points(self) -> list[tuple[float, float]]:
        """The (x, aggregated y) polyline."""
        return [(x, stats[self.agg]) for x, stats in self.rows]


def _aggregate(values: list[float]) -> dict[str, float]:
    summary = summarize(values)
    return {
        "median": percentile(values, 50.0),
        "mean": summary.mean,
        "min": summary.minimum,
        "max": summary.maximum,
        "count": float(summary.count),
    }


def series_data(figure: FigureSpec, points_by_sweep: PointsBySweep) -> list[SeriesData]:
    """Aggregate every series of a figure from the executed points.

    Scalar series (``completion_time``, ``metric:<key>``, ...) bucket one
    y value per point by the figure's spec-path x.  ``series:<name>``
    series pool the named per-run curve of every matching point instead:
    the curve's own x values (e.g. window index) are the buckets, and the
    figure's ``x`` is only a label.
    """
    out = []
    for series in figure.series:
        matching: list[Point] = []
        for name, points in points_by_sweep.items():
            if series.sweep == name or _glob(series.sweep, name):
                matching.extend(points)
        if not matching:
            raise ExperimentError(
                f"figure {figure.name!r}: series {series.label!r} matched "
                f"no executed points (sweep {series.sweep!r})"
            )
        buckets: dict[float, list[float]] = {}
        if series.y.startswith("series:"):
            key = series.y[len("series:") :]
            for point in matching:
                curve = point.result.series.get(key)
                if curve is None:
                    raise ExperimentError(
                        f"figure {figure.name!r}: point "
                        f"{point.spec.name!r} recorded no result series "
                        f"{key!r}; recorded: "
                        f"{', '.join(sorted(point.result.series)) or 'none'}"
                    )
                for x, y in curve:
                    buckets.setdefault(float(x), []).append(float(y))
            if not buckets:
                raise ExperimentError(
                    f"figure {figure.name!r}: result series {key!r} is "
                    f"empty on every matching point"
                )
        else:
            for point in matching:
                x = float(path_value(point.spec, figure.x))
                buckets.setdefault(x, []).append(y_value(point, series.y))
        rows = tuple(
            (x, _aggregate(values)) for x, values in sorted(buckets.items())
        )
        out.append(SeriesData(series.label, series.agg, rows))
    return out


def _glob(pattern: str, name: str) -> bool:
    from fnmatch import fnmatchcase

    return fnmatchcase(name, pattern)


def bound_overlay(
    figure: FigureSpec, points_by_sweep: PointsBySweep
) -> list[tuple[float, float]]:
    """The named bound curve sampled at the figure's x values.

    Evaluated on the first series' specs: one representative spec per x
    (the first in sweep order), since the bound is a function of the spec
    alone.
    """
    if figure.bound is None:
        return []
    first = figure.series[0]
    chosen: dict[float, Point] = {}
    for name, points in points_by_sweep.items():
        if first.sweep == name or _glob(first.sweep, name):
            for point in points:
                x = float(path_value(point.spec, figure.x))
                chosen.setdefault(x, point)
    return [
        (x, bound_value(figure.bound, point.spec))
        for x, point in sorted(chosen.items())
    ]


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
def figure_csv(
    figure: FigureSpec, data: list[SeriesData], bound: list[tuple[float, float]]
) -> str:
    """The figure's aggregate table as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["series", figure.x, "median", "mean", "min", "max", "count"])
    for series in data:
        for x, stats in series.rows:
            writer.writerow(
                [
                    series.label,
                    _fmt(x),
                    _fmt(stats["median"]),
                    _fmt(stats["mean"]),
                    _fmt(stats["min"]),
                    _fmt(stats["max"]),
                    str(int(stats["count"])),
                ]
            )
    for x, value in bound:
        writer.writerow(
            [f"bound:{figure.bound}", _fmt(x), _fmt(value), "", "", "", ""]
        )
    return buffer.getvalue()


def figure_ascii(
    figure: FigureSpec, data: list[SeriesData], bound: list[tuple[float, float]]
) -> str:
    """A terminal rendering: one labelled bar row per (series, x)."""
    pairs: list[tuple[str, float]] = []
    for series in data:
        for x, y in series.points():
            pairs.append((f"{series.label} @ {figure.x}={x:g}", y))
    for x, value in bound:
        pairs.append((f"bound:{figure.bound} @ {figure.x}={x:g}", value))
    # Non-finite values (unsolved points aggregate to inf) get a textual
    # row but stay out of the bar scale, so one failure cannot blank the
    # chart — or crash it.
    finite = [value for _, value in pairs if math.isfinite(value)]
    scale = max(max(finite, default=0.0), 1e-9)
    label_width = max(len(label) for label, _ in pairs)
    lines = [figure.title, ""]
    for label, value in pairs:
        if not math.isfinite(value):
            bar = ""
        else:
            bar = "#" * max(1, round(value / scale * 40)) if value > 0 else ""
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines) + "\n"


#: Categorical stroke colors for SVG series (cycled).
_SVG_COLORS = ("#2b6cb0", "#c05621", "#2f855a", "#6b46c1", "#b83280")
_SVG_W, _SVG_H, _SVG_PAD = 560, 360, 56


def _svg_scale(values: list[float], lo_pad: float = 0.0) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    return lo - lo_pad, hi


def figure_svg(
    figure: FigureSpec, data: list[SeriesData], bound: list[tuple[float, float]]
) -> str:
    """A deterministic standalone SVG of the figure's polylines."""
    polylines = [series.points() for series in data]
    if bound:
        polylines.append(list(bound))
    xs = [x for line in polylines for x, _ in line]
    ys = [y for line in polylines for _, y in line]
    finite_ys = [y for y in ys if y == y and abs(y) != float("inf")]
    if not finite_ys:
        finite_ys = [0.0, 1.0]
    x_lo, x_hi = _svg_scale(xs)
    y_lo, y_hi = _svg_scale([min(finite_ys + [0.0]), max(finite_ys)])

    def px(x: float) -> str:
        span = _SVG_W - 2 * _SVG_PAD
        return _fmt(_SVG_PAD + (x - x_lo) / (x_hi - x_lo) * span)

    def py(y: float) -> str:
        y = min(max(y, y_lo), y_hi)
        span = _SVG_H - 2 * _SVG_PAD
        return _fmt(_SVG_H - _SVG_PAD - (y - y_lo) / (y_hi - y_lo) * span)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_SVG_W}" '
        f'height="{_SVG_H}" viewBox="0 0 {_SVG_W} {_SVG_H}">',
        f'<rect width="{_SVG_W}" height="{_SVG_H}" fill="white"/>',
        f'<text x="{_SVG_W // 2}" y="24" text-anchor="middle" '
        f'font-family="monospace" font-size="13">{figure.title}</text>',
        f'<line x1="{_SVG_PAD}" y1="{_SVG_H - _SVG_PAD}" '
        f'x2="{_SVG_W - _SVG_PAD}" y2="{_SVG_H - _SVG_PAD}" '
        f'stroke="#333"/>',
        f'<line x1="{_SVG_PAD}" y1="{_SVG_PAD}" x2="{_SVG_PAD}" '
        f'y2="{_SVG_H - _SVG_PAD}" stroke="#333"/>',
        f'<text x="{_SVG_W // 2}" y="{_SVG_H - 12}" text-anchor="middle" '
        f'font-family="monospace" font-size="11">{figure.xlabel}</text>',
        f'<text x="14" y="{_SVG_H // 2}" text-anchor="middle" '
        f'font-family="monospace" font-size="11" '
        f'transform="rotate(-90 14 {_SVG_H // 2})">{figure.ylabel}</text>',
        f'<text x="{_SVG_PAD}" y="{_SVG_H - _SVG_PAD + 16}" '
        f'text-anchor="middle" font-family="monospace" font-size="10">'
        f"{x_lo:g}</text>",
        f'<text x="{_SVG_W - _SVG_PAD}" y="{_SVG_H - _SVG_PAD + 16}" '
        f'text-anchor="middle" font-family="monospace" font-size="10">'
        f"{x_hi:g}</text>",
        f'<text x="{_SVG_PAD - 6}" y="{_SVG_H - _SVG_PAD}" '
        f'text-anchor="end" font-family="monospace" font-size="10">'
        f"{y_lo:g}</text>",
        f'<text x="{_SVG_PAD - 6}" y="{_SVG_PAD + 4}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{y_hi:g}</text>',
    ]
    labels = [series.label for series in data]
    if bound:
        labels.append(f"bound:{figure.bound}")
    for i, line in enumerate(polylines):
        color = _SVG_COLORS[i % len(_SVG_COLORS)]
        dash = ' stroke-dasharray="6 4"' if bound and i == len(polylines) - 1 else ""
        coords = " ".join(f"{px(x)},{py(y)}" for x, y in line)
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5"'
            f'{dash} points="{coords}"/>'
        )
        for x, y in line:
            parts.append(
                f'<circle cx="{px(x)}" cy="{py(y)}" r="2.5" fill="{color}"/>'
            )
        parts.append(
            f'<text x="{_SVG_W - _SVG_PAD + 4}" y="{_SVG_PAD + 14 * i}" '
            f'font-family="monospace" font-size="10" fill="{color}" '
            f'text-anchor="end">{labels[i]}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def campaign_summary_rows(
    campaign: CampaignSpec, points_by_sweep: PointsBySweep
) -> list[dict[str, object]]:
    """Paper-style table rows: every figure's aggregated curves + bounds.

    The thin benchmark wrappers render these with
    :func:`repro.analysis.tables.render_table` — the same numbers the
    campaign's CSV artifacts carry.
    """
    rows: list[dict[str, object]] = []
    for figure in campaign.figures:
        data = series_data(figure, points_by_sweep)
        bound = dict(bound_overlay(figure, points_by_sweep))
        for series in data:
            for x, stats in series.rows:
                row: dict[str, object] = {
                    "figure": figure.name,
                    "series": series.label,
                    figure.x: x,
                    series.agg: stats[series.agg],
                    "n": int(stats["count"]),
                }
                if x in bound:
                    row[f"bound:{figure.bound}"] = bound[x]
                rows.append(row)
    return rows


def points_csv(points_by_sweep: PointsBySweep) -> str:
    """Every executed point as one CSV row (the raw data behind figures).

    Scalar gauges land in the ``metrics`` column; non-scalar gauges —
    the named per-run curves — land in ``series`` as compact JSON, so a
    point's windowed data is never silently dropped from the table.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        [
            "sweep",
            "index",
            "name",
            "seed",
            "solved",
            "completion_time",
            "broadcast_count",
            "delivered_count",
            "metrics",
            "series",
        ]
    )
    for sweep_name in points_by_sweep:
        for point in points_by_sweep[sweep_name]:
            result = point.result
            writer.writerow(
                [
                    point.sweep,
                    str(point.index),
                    point.spec.name,
                    str(point.spec.seed),
                    "1" if result.solved else "0",
                    str(encode_float(result.completion_time)),
                    str(result.broadcast_count),
                    str(result.delivered_count),
                    json.dumps(
                        {
                            key: encode_float(value)
                            for key, value in sorted(result.metrics.items())
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    ),
                    json.dumps(
                        {
                            name: [
                                [encode_float(x), encode_float(y)]
                                for x, y in curve
                            ]
                            for name, curve in sorted(result.series.items())
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    ),
                ]
            )
    return buffer.getvalue()


def _point_label(point) -> str:
    """Stable display name for a campaign point: ``sweep[index]``."""
    return f"{point.sweep}[{point.index}]"


def report_markdown(
    campaign: CampaignSpec,
    points_by_sweep: PointsBySweep,
    checks: list[CheckOutcome],
    missing: Sequence = (),
    health=None,
) -> str:
    """The campaign's human-readable summary (deterministic content only).

    ``missing`` (unexecuted :class:`CampaignPoint`\\ s) marks the report
    partial: the missing points are enumerated, figures whose series
    cannot be assembled are skipped with a note, and the checks section
    says why it is empty.  ``health`` is supervisor health from the run
    that produced the results; only its anomaly *counters* are rendered
    (event timings are wall-clock and would break determinism), and a
    clean run renders identically to ``health=None`` so regenerating a
    report from the store alone reproduces it byte-for-byte.
    """
    partial = bool(missing)
    lines = [
        f"# {campaign.title}",
        "",
        campaign.description,
        "",
        "## Sweeps",
        "",
    ]
    rows = []
    for directive in campaign.sweeps:
        points = points_by_sweep.get(directive.name, [])
        solved = sum(1 for p in points if p.result.solved)
        rows.append(
            {
                "sweep": directive.name,
                "points": len(points),
                "solved": solved,
                "rate": solved / len(points) if points else 0.0,
            }
        )
    lines.append("```")
    lines.append(render_table(rows))
    lines.append("```")
    if partial:
        lines.extend(
            [
                "",
                "## Missing points",
                "",
                f"**Partial report:** {len(missing)} campaign points have "
                "no verified store entry (budget exhausted, retries "
                "exhausted, or shards not yet run).  `repro campaign "
                "resume` continues from the checkpointed state.",
                "",
            ]
        )
        lines.extend(
            f"- `{_point_label(point)}` ({point.spec.name!r})"
            for point in missing
        )
    for figure in campaign.figures:
        try:
            data = series_data(figure, points_by_sweep)
            bound = bound_overlay(figure, points_by_sweep)
        except ExperimentError as exc:
            if not partial:
                raise
            lines.extend(
                [
                    "",
                    f"## {figure.title}",
                    "",
                    f"(figure skipped — incomplete result set: {exc})",
                ]
            )
            continue
        lines.extend(
            [
                "",
                f"## {figure.title}",
                "",
                f"Files: `{figure.name}.csv`, `{figure.name}.txt`, "
                f"`{figure.name}.svg`",
                "",
                "```",
                figure_ascii(figure, data, bound).rstrip("\n"),
                "```",
            ]
        )
    lines.extend(["", "## Checks", ""])
    check_rows = []
    for outcome in checks:
        check_rows.append(
            {
                "check": outcome.kind,
                "sweeps": ",".join(outcome.sweeps),
                "status": "pass" if outcome.ok else "FAIL",
                "failures": len(outcome.failures),
            }
        )
    if check_rows:
        lines.append("```")
        lines.append(render_table(check_rows))
        lines.append("```")
        for outcome in checks:
            for failure in outcome.failures:
                lines.append(f"- **{outcome.kind}**: {failure}")
    elif partial:
        lines.append(
            "(checks skipped: the result set is incomplete — a missing "
            "shard must not masquerade as a pass)"
        )
    else:
        lines.append("(campaign declares no checks)")
    lines.extend(["", "## Campaign robustness", ""])
    anomalies = dict(health.anomalies()) if health is not None else {}
    if anomalies:
        lines.append(
            "The supervised fabric recovered from faults while producing "
            "these results (full event log in `health.json`, which is "
            "outside the byte-identity contract):"
        )
        lines.append("")
        lines.append("```")
        lines.append(
            render_table(
                [
                    {"anomaly": name, "count": count}
                    for name, count in anomalies.items()
                ]
            )
        )
        lines.append("```")
    else:
        lines.append(
            "No faults observed: every point ran (or was served from the "
            "store) without retries, timeouts, worker deaths, steals, or "
            "corruption re-runs."
        )
    return "\n".join(lines) + "\n"


def write_artifacts(
    campaign: CampaignSpec,
    points_by_sweep: PointsBySweep,
    checks: list[CheckOutcome],
    artifacts_dir: str,
    missing: Sequence = (),
    health=None,
) -> list[str]:
    """Write every campaign artifact under ``artifacts_dir/<name>/``.

    Returns the written paths (relative to ``artifacts_dir``).  Output is
    a pure function of campaign + results; see the module docstring.

    ``missing`` points mark the artifact set partial: figures that cannot
    be assembled are skipped, the manifest lists the missing labels, and
    ``report.md`` enumerates them.  ``health`` (supervisor health from
    the producing run) feeds the report's robustness section and, when it
    recorded anomalies, a full ``health.json`` event log — written beside
    the artifacts but deliberately *excluded* from the manifest and the
    byte-identity contract (its timings are wall-clock).
    """
    target = os.path.join(artifacts_dir, campaign.name)
    os.makedirs(target, exist_ok=True)
    written: list[str] = []
    partial = bool(missing)

    def emit(filename: str, text: str) -> None:
        path = os.path.join(target, filename)
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(text)
        written.append(os.path.join(campaign.name, filename))

    emit("points.csv", points_csv(points_by_sweep))
    for figure in campaign.figures:
        try:
            data = series_data(figure, points_by_sweep)
            bound = bound_overlay(figure, points_by_sweep)
        except ExperimentError:
            if not partial:
                raise
            continue
        emit(f"{figure.name}.csv", figure_csv(figure, data, bound))
        emit(f"{figure.name}.txt", figure_ascii(figure, data, bound))
        emit(f"{figure.name}.svg", figure_svg(figure, data, bound))
        _maybe_png(figure, data, bound, target, written, campaign.name)
    emit(
        "report.md",
        report_markdown(
            campaign, points_by_sweep, checks, missing=missing, health=health
        ),
    )
    manifest = {
        "campaign": campaign.to_dict(),
        "points": sum(len(points) for points in points_by_sweep.values()),
        "partial": partial,
        "missing": [_point_label(point) for point in missing],
        "checks": [
            {
                "kind": outcome.kind,
                "sweeps": list(outcome.sweeps),
                "ok": outcome.ok,
                "failures": list(outcome.failures),
            }
            for outcome in checks
        ],
        "artifacts": sorted(written),
    }
    emit("manifest.json", json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    health_path = os.path.join(target, "health.json")
    if health is not None and (health.anomalies() or health.dropped_events):
        with open(health_path, "w", encoding="utf-8", newline="") as fh:
            json.dump(health.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(os.path.join(campaign.name, "health.json"))
    elif os.path.exists(health_path):
        # A clean write supersedes any stale event log from an earlier
        # faulted run — the directory converges to the fault-free state.
        os.unlink(health_path)
    return written


def _maybe_png(
    figure: FigureSpec,
    data: list[SeriesData],
    bound: list[tuple[float, float]],
    target: str,
    written: list[str],
    campaign_name: str,
) -> None:
    """Write ``<figure>.png`` when matplotlib is importable; else skip.

    PNG bytes are not part of the byte-identity contract (they embed
    library versions), which is why the diffable formats above never
    depend on this.
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except Exception:
        return
    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    for series in data:
        points = series.points()
        ax.plot(
            [x for x, _ in points], [y for _, y in points],
            marker="o", label=series.label,
        )
    if bound:
        ax.plot(
            [x for x, _ in bound], [y for _, y in bound],
            linestyle="--", label=f"bound:{figure.bound}",
        )
    ax.set_title(figure.title)
    ax.set_xlabel(figure.xlabel)
    ax.set_ylabel(figure.ylabel)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(os.path.join(target, f"{figure.name}.png"), dpi=120)
    plt.close(fig)
    written.append(os.path.join(campaign_name, f"{figure.name}.png"))
