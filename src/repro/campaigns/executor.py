"""Campaign execution: deterministic sharding + supervised checkpoints.

The executor turns a :class:`~repro.campaigns.spec.CampaignSpec` into its
flat point list (sweeps in listed order, grid order within each), assigns
points to shards round-robin by global index, and hands each shard's
missing points to the supervised fabric
(:mod:`repro.campaigns.supervision`): a work-queue supervisor dispatches
points to a pool of worker processes with per-point timeouts, bounded
deterministic-backoff retries, straggler work-stealing, and wall-clock /
point budgets — every completed point lands in the
:class:`~repro.campaigns.store.ResultStore` before the next is handed
out, so an interrupted campaign loses at most the in-flight points and
``run`` twice is a 100%-cache-hit no-op.  ``direct=True`` keeps the old
unsupervised ``run_sweep`` batch path for benchmarking the fabric's
overhead against.

Execution and verdicts are decoupled: :func:`run_campaign` computes and
checkpoints, :func:`collect_results` reads a (possibly multi-shard) store
back, and :func:`evaluate_checks` applies the campaign's validation
directives to a complete result set.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.campaigns.checks import CHECKS, Point, PointsBySweep
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.campaigns.supervision import (
    FabricConfig,
    FabricHealth,
    FabricJob,
    run_supervised,
)
from repro.campaigns.trace_checks import run_trace_check
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult, RunOptions
from repro.experiments.specs import ExperimentSpec
from repro.experiments.sweep import run_sweep


@dataclass(frozen=True)
class CampaignPoint:
    """One point of a campaign: where it came from and what to run."""

    sweep: str
    index: int
    spec: ExperimentSpec


def expand_points(campaign: CampaignSpec) -> list[CampaignPoint]:
    """Every point of the campaign, in deterministic global order."""
    points: list[CampaignPoint] = []
    for directive in campaign.sweeps:
        for index, spec in enumerate(directive.expand()):
            points.append(CampaignPoint(directive.name, index, spec))
    return points


def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"i/N"`` into ``(index, count)`` with bounds checking."""
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ExperimentError(
            f"shard must look like i/N (e.g. 0/2), got {text!r}"
        ) from None
    if count < 1:
        raise ExperimentError(
            f"shard count must be a positive integer, got {text!r} (need N >= 1)"
        )
    if not 0 <= index < count:
        raise ExperimentError(
            f"shard index out of range in {text!r}: valid shards are "
            f"0/{count} through {count - 1}/{count}"
        )
    return index, count


def shard_points(
    points: list[CampaignPoint], index: int, count: int
) -> list[CampaignPoint]:
    """The shard's slice: global point ``g`` belongs to shard ``g % count``.

    Round-robin keeps every shard's mix of cheap and expensive points
    similar (size ladders put the expensive points at the tail of each
    sweep), so parallel CI shards finish together.
    """
    if count < 1 or not 0 <= index < count:
        raise ExperimentError(f"invalid shard {index}/{count}")
    return [p for g, p in enumerate(points) if g % count == index]


@dataclass
class CampaignRun:
    """Outcome of one :func:`run_campaign` invocation (one shard's view).

    Attributes:
        campaign: The campaign that ran.
        shard: ``(index, count)`` this invocation covered.
        points: The shard's points, in order.
        results: One result per completed shard point (aligned with
            ``points`` only when the run is complete — see ``complete``).
        ran: Points actually executed (completed) this invocation.
        cached: Points served from the store.
        corrupt: Store entries that failed verification and were re-run.
        failed: Points whose retries were exhausted, with the last error.
        exhausted: ``"wall_budget"``/``"point_budget"`` when a budget
            stopped the run early, else ``None``.
        health: Supervisor health (``None`` for ``direct=True`` runs).
    """

    campaign: CampaignSpec
    shard: tuple[int, int]
    points: list[CampaignPoint]
    results: list[ExperimentResult]
    ran: int = 0
    cached: int = 0
    corrupt: int = 0
    failed: list[tuple[CampaignPoint, str]] = field(default_factory=list)
    exhausted: str | None = None
    health: FabricHealth | None = None

    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def complete(self) -> bool:
        """True when every shard point has a result."""
        return self.ran + self.cached == self.total

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this shard's points served from the store."""
        return self.cached / self.total if self.total else 1.0

    def describe(self) -> str:
        """One status line (the CI smoke job greps this)."""
        shard = (
            f"shard {self.shard[0]}/{self.shard[1]}, "
            if self.shard[1] > 1
            else ""
        )
        line = (
            f"campaign {self.campaign.name}: {self.total} points "
            f"({shard}ran {self.ran}, cached {self.cached}, "
            f"cache hit {self.cache_hit_rate * 100:.1f}%)"
        )
        if self.corrupt:
            line += f"; {self.corrupt} corrupt entries re-run"
        if self.failed:
            line += f"; {len(self.failed)} points failed (retries exhausted)"
        if self.exhausted:
            open_points = self.total - self.ran - self.cached - len(self.failed)
            line += f"; {self.exhausted} exhausted with {open_points} points open"
        if self.health is not None and self.health.anomalies():
            line += f"; fabric: {self.health.describe()}"
        return line


def run_campaign(
    campaign: CampaignSpec,
    store: ResultStore | None,
    workers: int | None = None,
    shard: tuple[int, int] = (0, 1),
    checkpoint_batch: int | None = None,
    fabric: FabricConfig | None = None,
    direct: bool = False,
) -> CampaignRun:
    """Run (the shard of) a campaign under the supervised fabric.

    Args:
        campaign: What to run.  Its ``chaos`` directives (if any) are
            injected by the fabric — ignored under ``direct=True``.
        store: Checkpoint store; ``None`` disables caching entirely (every
            point runs, nothing is written — benchmark/test mode).
        workers: Worker processes (``None``/1 serial-width pool).  Ignored
            when ``fabric`` is given (its ``workers`` wins).
        shard: ``(index, count)`` — this invocation runs only the points
            of its shard, enabling one campaign to span CI jobs/machines
            over a shared (or later-merged) store.
        checkpoint_batch: Points per checkpoint batch on the ``direct``
            path.  The fabric checkpoints every point individually, so
            this only applies with ``direct=True``.
        fabric: Supervision policy (timeouts, retries, backoff, stealing,
            budgets).  Defaults to ``FabricConfig(workers=workers or 1)``.
        direct: Bypass supervision and run the legacy unsupervised
            ``run_sweep`` batches (no retries, timeouts, budgets, or
            chaos) — the fabric's overhead baseline.

    Returns:
        The :class:`CampaignRun` for this shard.
    """
    points = shard_points(expand_points(campaign), *shard)
    if store is not None:
        store.sweep_stale_tmp()
    # Journals only exist in a store; without one there is nowhere to
    # persist streams, so journal directives degrade to plain sweeps.
    journal_sweeps = (
        {d.name for d in campaign.sweeps if d.journal}
        if store is not None
        else set()
    )
    options_by_sweep = {
        d.name: d.options for d in campaign.sweeps if d.options is not None
    }
    results: list[ExperimentResult | None] = [None] * len(points)
    misses: list[int] = []
    corrupt_before = store.stats.corrupt if store is not None else 0
    for position, point in enumerate(points):
        cached = store.get(point.spec) if store is not None else None
        if cached is not None and (
            point.sweep not in journal_sweeps or store.has_journal(point.spec)
        ):
            results[position] = cached
        else:
            # A summary hit without its journal still re-runs: the
            # journal directive promises the stream is on disk.
            misses.append(position)
    if direct:
        _run_direct(
            points,
            misses,
            results,
            store,
            workers,
            checkpoint_batch,
            journal_sweeps,
            options_by_sweep,
        )
        failed: list[tuple[CampaignPoint, str]] = []
        exhausted = None
        health = None
        ran = len(misses)
    else:
        jobs = [
            FabricJob(
                position=position,
                label=f"{points[position].sweep}[{points[position].index}]",
                spec=points[position].spec,
                journaled=points[position].sweep in journal_sweeps,
                options=options_by_sweep.get(points[position].sweep),
            )
            for position in misses
        ]
        config = fabric or FabricConfig(workers=workers or 1)
        outcome = run_supervised(jobs, store, config, chaos=campaign.chaos)
        for position, result in outcome.results.items():
            results[position] = result
        failed = [
            (points[position], error)
            for position, error in sorted(outcome.failed.items())
        ]
        exhausted = outcome.exhausted
        health = outcome.health
        ran = len(outcome.results)
    return CampaignRun(
        campaign=campaign,
        shard=shard,
        points=points,
        results=[r for r in results if r is not None],
        ran=ran,
        cached=len(points) - len(misses),
        corrupt=(store.stats.corrupt - corrupt_before) if store is not None else 0,
        failed=failed,
        exhausted=exhausted,
        health=health,
    )


def _run_direct(
    points: list[CampaignPoint],
    misses: list[int],
    results: list[ExperimentResult | None],
    store: ResultStore | None,
    workers: int | None,
    checkpoint_batch: int | None,
    journal_sweeps: set[str],
    options_by_sweep: dict[str, RunOptions],
) -> None:
    """Legacy unsupervised path: ``run_sweep`` in checkpoint batches."""
    if checkpoint_batch is None:
        checkpoint_batch = 1 if not workers or workers <= 1 else 4 * workers
    if checkpoint_batch < 1:
        raise ExperimentError(
            f"checkpoint_batch must be >= 1, got {checkpoint_batch}"
        )

    def _capture(position: int) -> tuple[bool, RunOptions]:
        sweep_name = points[position].sweep
        journaled = sweep_name in journal_sweeps
        options = options_by_sweep.get(sweep_name)
        if options is None:
            options = (
                RunOptions.observed() if journaled else RunOptions.summary()
            )
        return journaled, options

    # Batch positions that share capture options (RunOptions is frozen
    # and hashable); journaled groups still checkpoint their streams.
    groups: dict[tuple[bool, RunOptions], list[int]] = {}
    for position in misses:
        groups.setdefault(_capture(position), []).append(position)
    for (journaled, options), group in sorted(
        groups.items(), key=lambda item: item[1][0] if item[1] else 0
    ):
        for start in range(0, len(group), checkpoint_batch):
            batch = group[start : start + checkpoint_batch]
            sweep = run_sweep(
                [points[position].spec for position in batch],
                workers=workers,
                options=options,
            )
            for position, result in zip(batch, sweep):
                if journaled:
                    store.put_journal(result.spec, result.observations)
                    result = dataclasses.replace(result, observations=())
                results[position] = result
                if store is not None:
                    store.put(result)


def collect_results(
    campaign: CampaignSpec, store: ResultStore
) -> tuple[PointsBySweep, list[CampaignPoint]]:
    """Read every campaign point back from the store.

    Returns:
        ``(points_by_sweep, missing)`` — the check-ready mapping over the
        points present, plus the points with no valid store entry (from
        shards that have not run, or entries that failed verification).

    A journaled sweep's point also counts as missing when its summary is
    present but its journal is not — the journal directive promised the
    stream.  The journal probe is a backend ``head`` (a HEAD request
    against an HTTP store), so completeness verification never downloads
    journal bytes.
    """
    journal_sweeps = {d.name for d in campaign.sweeps if d.journal}
    points_by_sweep: PointsBySweep = {
        directive.name: [] for directive in campaign.sweeps
    }
    missing: list[CampaignPoint] = []
    for point in expand_points(campaign):
        result = store.get(point.spec)
        if result is None or (
            point.sweep in journal_sweeps and not store.has_journal(point.spec)
        ):
            missing.append(point)
        else:
            points_by_sweep[point.sweep].append(
                Point(point.sweep, point.index, point.spec, result)
            )
    return points_by_sweep, missing


def results_by_sweep(run: CampaignRun) -> PointsBySweep:
    """A :func:`run_campaign` outcome as the check-ready mapping.

    Only meaningful for full-coverage runs (``shard == (0, 1)``); sharded
    runs verify via :func:`collect_results` over the merged store, and so
    do partial runs (budget-exhausted or failed points), whose ``results``
    list no longer aligns with ``points``.
    """
    if not run.complete:
        raise ExperimentError(
            f"campaign run is incomplete ({run.ran + run.cached} of "
            f"{run.total} points); read the store via collect_results()"
        )
    points_by_sweep: PointsBySweep = {
        directive.name: [] for directive in run.campaign.sweeps
    }
    for point, result in zip(run.points, run.results):
        points_by_sweep[point.sweep].append(
            Point(point.sweep, point.index, point.spec, result)
        )
    return points_by_sweep


@dataclass(frozen=True)
class CheckOutcome:
    """One check directive's verdict."""

    kind: str
    sweeps: tuple[str, ...]
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def evaluate_checks(
    campaign: CampaignSpec, points_by_sweep: PointsBySweep
) -> list[CheckOutcome]:
    """Apply every check directive to its in-scope sweeps."""
    outcomes = []
    for check in campaign.checks:
        scope = {
            name: points
            for name, points in points_by_sweep.items()
            if check.matches(name)
        }
        check_fn = CHECKS.get(check.kind)
        try:
            failures = tuple(check_fn(scope, **check.params))
        except TypeError as exc:
            raise ExperimentError(
                f"check {check.kind!r} rejected params "
                f"{sorted(check.params)}: {exc}"
            ) from exc
        outcomes.append(CheckOutcome(check.kind, check.sweeps, failures))
    return outcomes


def evaluate_trace_checks(
    campaign: CampaignSpec, store: ResultStore
) -> list[CheckOutcome]:
    """Apply every trace-check directive to its journaled points.

    Each directive runs once per point of the journaling sweeps it
    scopes, against the observation journal persisted in the store.  A
    point without a readable journal is itself a failure — the journal
    directive promised the stream, so silence must not pass.  Outcome
    kinds are prefixed ``trace:`` to keep the two check families apart
    in reports.
    """
    journal_sweeps = {d.name for d in campaign.sweeps if d.journal}
    points = [
        point
        for point in expand_points(campaign)
        if point.sweep in journal_sweeps
    ]
    outcomes = []
    for check in campaign.trace_checks:
        failures: list[str] = []
        for point in points:
            if not check.matches(point.sweep):
                continue
            label = f"{point.sweep}[{point.index}] {point.spec.name!r}"
            journal = store.get_journal(point.spec)
            if journal is None:
                failures.append(f"{label}: no readable journal in store")
                continue
            failures.extend(
                f"{label}: {failure}"
                for failure in run_trace_check(
                    check.kind, point.spec, journal.observations, **check.params
                )
            )
        outcomes.append(
            CheckOutcome(f"trace:{check.kind}", check.sweeps, tuple(failures))
        )
    return outcomes


@dataclass
class VerifyReport:
    """Completeness + validation verdict for a campaign's store.

    ``points_by_sweep`` carries the results read during verification so
    callers (the CLI's report step) need not scan the store again.
    """

    campaign: CampaignSpec
    total: int
    present: int
    checks: list[CheckOutcome] = field(default_factory=list)
    missing: list[CampaignPoint] = field(default_factory=list)
    points_by_sweep: PointsBySweep = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.missing

    @property
    def ok(self) -> bool:
        return self.complete and all(outcome.ok for outcome in self.checks)


def verify_campaign(campaign: CampaignSpec, store: ResultStore) -> VerifyReport:
    """Verify a campaign against its store without running anything.

    Checks are only evaluated over a complete result set — validating a
    partial campaign would let a missing shard masquerade as a pass.
    """
    points_by_sweep, missing = collect_results(campaign, store)
    present = sum(len(points) for points in points_by_sweep.values())
    report = VerifyReport(
        campaign=campaign,
        total=present + len(missing),
        present=present,
        missing=missing,
        points_by_sweep=points_by_sweep,
    )
    if report.complete:
        report.checks = evaluate_checks(campaign, points_by_sweep)
        report.checks += evaluate_trace_checks(campaign, store)
    return report
