"""Declarative reproduction campaigns.

A :class:`CampaignSpec` is a named, frozen, JSON-round-trippable bundle of
parameter sweeps plus the analysis directives — figures and validation
checks — that turn the sweep results back into the paper's tables and
curves.  Everything in a campaign is data: sweeps expand to
:class:`~repro.experiments.specs.ExperimentSpec` points via the existing
sweep grid, figures name sweeps and dotted spec paths, and checks name
entries in the check registry (:mod:`repro.campaigns.checks`).  The JSON
form of a campaign is the unit of provenance: it keys the result store,
ships to CI shards, and rebuilds bit-identically.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Mapping, Sequence

from repro.campaigns.chaos import ChaosSpec
from repro.errors import ExperimentError
from repro.experiments.runner import RunOptions
from repro.experiments.specs import ExperimentSpec
from repro.experiments.sweep import Sweep, with_path

#: Result fields a figure series may plot (besides ``metric:<key>``).
SERIES_FIELDS = ("completion_time", "solved", "broadcast_count", "delivered_count")

#: Aggregations a figure series may apply across repeats at one x value.
SERIES_AGGS = ("median", "mean", "min", "max")


def _zip_tag(path: str, value: Any, row: int) -> str:
    """A short human label for one zipped value (lists label by row)."""
    if isinstance(value, (list, tuple, dict)):
        return f"{path}#{row}"
    return f"{path}={value}"


@dataclass(frozen=True)
class SweepDirective:
    """One named sweep inside a campaign.

    Attributes:
        name: The sweep's handle; figures and checks address it (and may
            glob over it, e.g. ``"crash_*"``).
        base: The spec every point starts from.
        axes: Cartesian axes, exactly as :meth:`Sweep.grid` takes them.
        zip_axes: Axes varied *together* (all value lists the same length).
            Zipped rows share their derived replication seeds — row ``i``
            of every path is applied to the base before the grid expands —
            so paired comparisons (same seeds, different fault fraction)
            stay paired.
        repeats: Independent replications per grid point.
        derive_seeds: Per-point seed derivation, as in :meth:`Sweep.grid`.
        journal: Persist each point's observation journal into the result
            store alongside its summary (see :mod:`repro.runtime.journal`)
            so trace-level checks can read the streams post-hoc.  Cached
            points missing their journal re-run.
        options: Per-point :class:`~repro.experiments.runner.RunOptions`
            override (e.g. windowed capture for long service sweeps).
            Execution policy, not provenance — like ``CampaignSpec.chaos``
            it is excluded from equality and serialization, so it never
            perturbs store keys.  Defaults derive from ``journal``
            (observation-keeping when journaling, summaries otherwise);
            a per-run ``options.journal`` path is rejected — the store
            owns journal placement.
    """

    name: str
    base: ExperimentSpec
    axes: dict[str, list[Any]] = field(default_factory=dict)
    zip_axes: dict[str, list[Any]] = field(default_factory=dict)
    repeats: int = 1
    derive_seeds: bool = True
    journal: bool = False
    options: RunOptions | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("sweep directive needs a non-empty name")
        if self.options is not None:
            if self.options.journal is not None:
                raise ExperimentError(
                    f"sweep {self.name!r}: options.journal is per-run and "
                    "cannot address a campaign store; set journal=True on "
                    "the directive instead"
                )
            if self.journal and not self.options.keep_raw:
                raise ExperimentError(
                    f"sweep {self.name!r}: journal=True needs the "
                    "observation stream, but options discard it "
                    "(keep_raw=False/window)"
                )
        object.__setattr__(self, "axes", {k: list(v) for k, v in self.axes.items()})
        object.__setattr__(
            self, "zip_axes", {k: list(v) for k, v in self.zip_axes.items()}
        )
        lengths = {len(values) for values in self.zip_axes.values()}
        if len(lengths) > 1:
            raise ExperimentError(
                f"sweep {self.name!r}: zip_axes value lists must share one "
                f"length, got {sorted(lengths)}"
            )
        if lengths == {0}:
            raise ExperimentError(f"sweep {self.name!r}: zip_axes are empty")
        overlap = set(self.axes) & set(self.zip_axes)
        if overlap:
            raise ExperimentError(
                f"sweep {self.name!r}: paths {sorted(overlap)} appear in "
                f"both axes and zip_axes"
            )

    def expand(self) -> list[ExperimentSpec]:
        """The directive's points, in deterministic order.

        Zip rows expand in listed order; within each row the cartesian
        grid expands exactly as :meth:`Sweep.grid` would.  Because the
        grid is built from the (renamed-after) zipped base, derived seeds
        depend only on the grid tag — identical across zip rows.
        """
        paths = sorted(self.zip_axes)
        row_count = len(next(iter(self.zip_axes.values()))) if paths else 1
        specs: list[ExperimentSpec] = []
        for row in range(row_count):
            point = self.base
            tags = []
            for path in paths:
                value = self.zip_axes[path][row]
                point = with_path(point, path, value)
                tags.append(_zip_tag(path, value, row))
            produced = Sweep.grid(
                point,
                axes=self.axes,
                repeats=self.repeats,
                derive_seeds=self.derive_seeds,
            )
            if tags:
                prefix = f"{self.base.name}[{','.join(tags)}]"
                produced = [
                    dataclasses.replace(
                        spec, name=prefix + spec.name[len(self.base.name) :]
                    )
                    for spec in produced
                ]
            specs.extend(produced)
        return specs

    def run_options(self) -> RunOptions:
        """The effective per-point capture options for this sweep."""
        if self.options is not None:
            return self.options
        return RunOptions.observed() if self.journal else RunOptions.summary()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "zip_axes": {k: list(v) for k, v in self.zip_axes.items()},
            "repeats": self.repeats,
            "derive_seeds": self.derive_seeds,
            "journal": self.journal,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepDirective":
        return cls(
            name=data["name"],
            base=ExperimentSpec.from_dict(data["base"]),
            axes=dict(data.get("axes", {})),
            zip_axes=dict(data.get("zip_axes", {})),
            repeats=data.get("repeats", 1),
            derive_seeds=data.get("derive_seeds", True),
            journal=data.get("journal", False),
        )


@dataclass(frozen=True)
class SeriesSpec:
    """One curve of a figure.

    Attributes:
        sweep: Sweep name (or glob) the series draws points from.
        y: What to plot — a result field from :data:`SERIES_FIELDS`,
            ``metric:<key>`` for a scalar metric, or ``series:<name>``
            for a per-run curve (every matching point's named result
            series is pooled; the curve's own x values replace the
            figure's spec-path x).
        label: Legend label; defaults to ``sweep/y``.
        agg: Aggregation across repeats at one x value (``solved`` series
            usually want ``mean``, i.e. the solved rate).
    """

    sweep: str
    y: str = "completion_time"
    label: str = ""
    agg: str = "median"

    def __post_init__(self) -> None:
        if (
            self.y not in SERIES_FIELDS
            and not self.y.startswith("metric:")
            and not self.y.startswith("series:")
        ):
            raise ExperimentError(
                f"series y {self.y!r} must be one of {SERIES_FIELDS}, "
                f"'metric:<key>', or 'series:<name>'"
            )
        if self.agg not in SERIES_AGGS:
            raise ExperimentError(
                f"series agg {self.agg!r} must be one of {SERIES_AGGS}"
            )
        if not self.label:
            object.__setattr__(self, "label", f"{self.sweep}/{self.y}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "sweep": self.sweep,
            "y": self.y,
            "label": self.label,
            "agg": self.agg,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SeriesSpec":
        return cls(
            sweep=data["sweep"],
            y=data.get("y", "completion_time"),
            label=data.get("label", ""),
            agg=data.get("agg", "median"),
        )


@dataclass(frozen=True)
class FigureSpec:
    """One regenerated figure: series over a shared x axis, plus files.

    The reporter writes ``<name>.csv`` (full aggregate table),
    ``<name>.txt`` (ASCII chart), and ``<name>.svg`` for every figure;
    when matplotlib happens to be importable it adds ``<name>.png``.

    Attributes:
        name: Artifact basename (also the figure's handle).
        title: Human heading.
        x: Dotted spec path providing the x value of every point
            (e.g. ``"topology.n"``, ``"model.fack"``).
        series: The curves.
        bound: Optional bound-curve key from
            :data:`repro.campaigns.checks.BOUNDS`, overlaid per x value
            (computed from the first series' spec at that x).
        xlabel / ylabel: Axis labels; default to ``x`` and the first
            series' y.
    """

    name: str
    title: str
    x: str
    series: tuple[SeriesSpec, ...]
    bound: str | None = None
    xlabel: str = ""
    ylabel: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.series:
            raise ExperimentError("figure needs a name and at least one series")
        object.__setattr__(self, "series", tuple(self.series))
        if not self.xlabel:
            object.__setattr__(self, "xlabel", self.x)
        if not self.ylabel:
            object.__setattr__(self, "ylabel", self.series[0].y)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "x": self.x,
            "series": [s.to_dict() for s in self.series],
            "bound": self.bound,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FigureSpec":
        return cls(
            name=data["name"],
            title=data.get("title", data["name"]),
            x=data["x"],
            series=tuple(SeriesSpec.from_dict(s) for s in data["series"]),
            bound=data.get("bound"),
            xlabel=data.get("xlabel", ""),
            ylabel=data.get("ylabel", ""),
        )


@dataclass(frozen=True)
class CheckSpec:
    """One validation directive: a check-registry entry plus its scope.

    Attributes:
        kind: Key in :data:`repro.campaigns.checks.CHECKS`.
        sweeps: Sweep names (or globs) the check sees; ``("*",)`` means
            every sweep in the campaign.
        params: Keyword parameters for the check function.
    """

    kind: str
    sweeps: tuple[str, ...] = ("*",)
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ExperimentError("check directive needs a non-empty kind")
        object.__setattr__(self, "sweeps", tuple(self.sweeps))
        object.__setattr__(self, "params", dict(self.params))

    def matches(self, sweep_name: str) -> bool:
        """Whether the check's scope covers ``sweep_name``."""
        return any(fnmatchcase(sweep_name, pattern) for pattern in self.sweeps)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "sweeps": list(self.sweeps),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckSpec":
        return cls(
            kind=data["kind"],
            sweeps=tuple(data.get("sweeps", ("*",))),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A named, reproducible bundle of sweeps + analysis directives.

    Attributes:
        name: Stable identifier (CLI handle, artifact directory name).
        title: Human heading for the report.
        description: What paper artifact the campaign regenerates.
        sweeps: The sweeps, expanded in listed order.
        figures: Figures regenerated from the results.
        checks: Validation directives; a campaign *verifies* when all of
            them pass over a complete result set.
        trace_checks: Trace-level validation directives — entries in
            :data:`repro.campaigns.trace_checks.TRACE_CHECKS`, evaluated
            per point against the persisted observation journals of the
            sweeps they scope (those sweeps must set ``journal=True``).
        chaos: Deterministic fault-injection directives for the
            supervised fabric.  Chaos is an *execution* policy, not
            provenance: the field is excluded from equality and from
            ``to_dict``/``to_json`` so store keys, manifests, and reports
            are byte-identical with and without it.
    """

    name: str
    title: str
    sweeps: tuple[SweepDirective, ...]
    figures: tuple[FigureSpec, ...] = ()
    checks: tuple[CheckSpec, ...] = ()
    trace_checks: tuple[CheckSpec, ...] = ()
    description: str = ""
    chaos: tuple[ChaosSpec, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("campaign needs a non-empty name")
        if not self.sweeps:
            raise ExperimentError(f"campaign {self.name!r} has no sweeps")
        object.__setattr__(self, "sweeps", tuple(self.sweeps))
        object.__setattr__(self, "figures", tuple(self.figures))
        object.__setattr__(self, "checks", tuple(self.checks))
        object.__setattr__(self, "trace_checks", tuple(self.trace_checks))
        object.__setattr__(self, "chaos", tuple(self.chaos))
        journaled = {d.name for d in self.sweeps if d.journal}
        for check in self.trace_checks:
            if not any(
                any(fnmatchcase(name, pattern) for name in journaled)
                for pattern in check.sweeps
            ):
                raise ExperimentError(
                    f"campaign {self.name!r}: trace check {check.kind!r} "
                    f"scopes {check.sweeps} but no journaling sweep "
                    f"matches (journal=True sweeps: "
                    f"{sorted(journaled) or 'none'})"
                )
        names = [directive.name for directive in self.sweeps]
        if len(set(names)) != len(names):
            raise ExperimentError(
                f"campaign {self.name!r} has duplicate sweep names"
            )
        for figure in self.figures:
            for series in figure.series:
                if not self._matching_sweeps(series.sweep):
                    raise ExperimentError(
                        f"figure {figure.name!r} series addresses unknown "
                        f"sweep {series.sweep!r}"
                    )

    def _matching_sweeps(self, pattern: str) -> list[str]:
        return [
            directive.name
            for directive in self.sweeps
            if fnmatchcase(directive.name, pattern)
        ]

    def sweep(self, name: str) -> SweepDirective:
        """The directive registered under ``name``."""
        for directive in self.sweeps:
            if directive.name == name:
                return directive
        raise ExperimentError(
            f"campaign {self.name!r} has no sweep {name!r}; sweeps: "
            f"{', '.join(d.name for d in self.sweeps)}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "sweeps": [directive.to_dict() for directive in self.sweeps],
            "figures": [figure.to_dict() for figure in self.figures],
            "checks": [check.to_dict() for check in self.checks],
            "trace_checks": [check.to_dict() for check in self.trace_checks],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            title=data.get("title", data["name"]),
            description=data.get("description", ""),
            sweeps=tuple(
                SweepDirective.from_dict(d) for d in data["sweeps"]
            ),
            figures=tuple(
                FigureSpec.from_dict(f) for f in data.get("figures", [])
            ),
            checks=tuple(
                CheckSpec.from_dict(c) for c in data.get("checks", [])
            ),
            trace_checks=tuple(
                CheckSpec.from_dict(c) for c in data.get("trace_checks", [])
            ),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to JSON (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def scaled_values(values: Sequence[int], n_max: int | None) -> list[int]:
    """Drop the entries of a size ladder above ``n_max`` (keep >= 1).

    Built-in campaigns use this for their ``--n-max`` reduction: the grid
    keeps its small sizes (same specs, same hashes, full cache reuse) and
    sheds the expensive tail.
    """
    if n_max is None:
        return list(values)
    kept = [v for v in values if v <= n_max]
    if not kept:
        kept = [min(values)]
    return kept
