"""Campaign validation: machine-checkable claims over a result set.

A campaign's :class:`~repro.campaigns.spec.CheckSpec` directives name
entries in :data:`CHECKS` — functions that inspect the points of the
sweeps in scope and return a list of human-readable failure strings
(empty = pass).  Bound overlays and bound checks share :data:`BOUNDS`:
named closed-form curves computed from a point's *spec* (materializing
the deterministic topology when the bound needs the diameter).

Both registries are open — downstream campaigns register their own
entries with :func:`register_check` / :func:`register_bound` and name
them from pure-JSON campaign specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.analysis.bounds import (
    bmmb_arbitrary_bound,
    bmmb_gg_bound,
    figure2_lower_bound,
)
from repro.analysis.fitting import linear_fit
from repro.errors import ExperimentError
from repro.experiments.registries import Registry
from repro.experiments.runner import ExperimentResult, materialize_topology
from repro.experiments.specs import ExperimentSpec
from repro.experiments.sweep import path_value

CHECKS = Registry("campaign check")
BOUNDS = Registry("bound curve")


def register_check(name: str):
    """Register ``check(points_by_sweep, **params) -> list[str]``."""
    return CHECKS.register(name)


def register_bound(name: str):
    """Register ``bound(spec) -> float`` under ``name``."""
    return BOUNDS.register(name)


@dataclass(frozen=True)
class Point:
    """One executed campaign point as the checks see it."""

    sweep: str
    index: int
    spec: ExperimentSpec
    result: ExperimentResult


#: The mapping every check receives: sweep name -> points in sweep order.
PointsBySweep = dict[str, list[Point]]


def y_value(point: Point, y: str) -> float:
    """Extract a series/check y value (see ``SeriesSpec.y``) as a float."""
    if y.startswith("metric:"):
        key = y[len("metric:") :]
        try:
            return float(point.result.metrics[key])
        except KeyError:
            raise ExperimentError(
                f"point {point.spec.name!r} has no metric {key!r}; "
                f"recorded: {', '.join(sorted(point.result.metrics))}"
            ) from None
    if y == "solved":
        return 1.0 if point.result.solved else 0.0
    try:
        return float(getattr(point.result, y))
    except AttributeError:
        raise ExperimentError(f"unknown series value {y!r}") from None


def _all_points(points_by_sweep: PointsBySweep) -> list[Point]:
    flat: list[Point] = []
    for name in points_by_sweep:
        flat.extend(points_by_sweep[name])
    return flat


def _grouped_by_x(points: list[Point], x: str) -> list[tuple[float, list[Point]]]:
    """Points bucketed by their x value, in first-seen (sweep) order."""
    groups: dict[float, list[Point]] = {}
    for point in points:
        groups.setdefault(float(path_value(point.spec, x)), []).append(point)
    return list(groups.items())


def _series_means(points: list[Point], x: str, y: str) -> list[tuple[float, float]]:
    return [
        (x_value, sum(y_value(p, y) for p in group) / len(group))
        for x_value, group in _grouped_by_x(points, x)
    ]


# ----------------------------------------------------------------------
# Bound curves
# ----------------------------------------------------------------------
def workload_k(spec: ExperimentSpec) -> int:
    """The message count ``k`` implied by a spec's workload."""
    if spec.workload is None:
        raise ExperimentError(f"spec {spec.name!r} has no workload")
    params = spec.workload.params
    if "nodes" in params and params["nodes"] is not None:
        return len(params["nodes"])
    for key in ("k", "count"):
        if key in params:
            return int(params[key])
    # Registry defaults: one_each/single_source start from one message.
    return 1


@register_bound("bmmb_gg")
def _bound_bmmb_gg(spec: ExperimentSpec) -> float:
    """Theorem 3.16 (r=1): ``(D + 2k - 2)*Fprog + (k - 1)*Fack``."""
    dual = materialize_topology(spec)
    return bmmb_gg_bound(
        dual.diameter(), workload_k(spec), spec.model.fack, spec.model.fprog
    )


@register_bound("bmmb_arbitrary")
def _bound_bmmb_arbitrary(spec: ExperimentSpec) -> float:
    """Theorem 3.1: ``(D + k)*Fack`` for arbitrary G'."""
    dual = materialize_topology(spec)
    return bmmb_arbitrary_bound(dual.diameter(), workload_k(spec), spec.model.fack)


@register_bound("figure2_floor")
def _bound_figure2_floor(spec: ExperimentSpec) -> float:
    """Lemma 3.20: the ``(D - 1)*Fack`` adversarial floor."""
    depth = int(path_value(spec, "topology.depth"))
    return figure2_lower_bound(depth, spec.model.fack)


def bound_value(name: str, spec: ExperimentSpec) -> float:
    """Evaluate the registered bound curve ``name`` at ``spec``."""
    return BOUNDS.get(name)(spec)


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
@register_check("solved")
def _check_solved(points_by_sweep: PointsBySweep, min_rate: float = 1.0) -> list[str]:
    """The solved rate over the points in scope must reach ``min_rate``."""
    points = _all_points(points_by_sweep)
    if not points:
        return ["solved: no points in scope"]
    rate = sum(1 for p in points if p.result.solved) / len(points)
    if rate + 1e-12 < min_rate:
        unsolved = [p.spec.name for p in points if not p.result.solved]
        return [
            f"solved rate {rate:.3f} < required {min_rate:.3f} "
            f"(unsolved: {', '.join(unsolved[:5])}"
            + (", ..." if len(unsolved) > 5 else "")
            + ")"
        ]
    return []


@register_check("upper_bound")
def _check_upper_bound(
    points_by_sweep: PointsBySweep, bound: str = "", slack: float = 1e-9
) -> list[str]:
    """Every solved point's completion must stay within the named bound."""
    failures = []
    for point in _all_points(points_by_sweep):
        if not point.result.solved:
            failures.append(f"{point.spec.name}: unsolved, bound undefined")
            continue
        limit = bound_value(bound, point.spec)
        if point.result.completion_time > limit + slack:
            failures.append(
                f"{point.spec.name}: completion "
                f"{point.result.completion_time:g} exceeds {bound} bound "
                f"{limit:g}"
            )
    return failures


@register_check("lower_bound")
def _check_lower_bound(
    points_by_sweep: PointsBySweep, bound: str = "", slack: float = 1e-9
) -> list[str]:
    """Every point's completion must reach the named adversarial floor."""
    failures = []
    for point in _all_points(points_by_sweep):
        floor = bound_value(bound, point.spec)
        if point.result.completion_time < floor - slack:
            failures.append(
                f"{point.spec.name}: completion "
                f"{point.result.completion_time:g} below {bound} floor "
                f"{floor:g}"
            )
    return failures


@register_check("slope")
def _check_slope(
    points_by_sweep: PointsBySweep,
    x: str = "",
    y: str = "completion_time",
    min_slope: float | None = None,
    max_slope: float | None = None,
    min_r_squared: float | None = None,
) -> list[str]:
    """Linear-fit slope of mean(y) vs x must land in the given window."""
    series = _series_means(_all_points(points_by_sweep), x, y)
    if len(series) < 2:
        return [f"slope: need >= 2 distinct x values on {x!r}, got {len(series)}"]
    fit = linear_fit([p[0] for p in series], [p[1] for p in series])
    failures = []
    if min_slope is not None and fit.slope < min_slope:
        failures.append(
            f"slope of {y} vs {x} is {fit.slope:g}, below {min_slope:g}"
        )
    if max_slope is not None and fit.slope > max_slope:
        failures.append(
            f"slope of {y} vs {x} is {fit.slope:g}, above {max_slope:g}"
        )
    if min_r_squared is not None and fit.r_squared < min_r_squared:
        failures.append(
            f"fit of {y} vs {x} has r^2 {fit.r_squared:.4f} < "
            f"{min_r_squared:.4f}"
        )
    return failures


@register_check("nonincreasing_rate")
def _check_nonincreasing_rate(
    points_by_sweep: PointsBySweep,
    x: str = "",
    require_first: float | None = None,
) -> list[str]:
    """Solved rate must be non-increasing along ascending x.

    Used by fault campaigns: crashes only destroy delivery paths, so the
    among-survivors solved rate cannot improve as the fault scale grows.
    ``require_first`` additionally pins the rate at the smallest x (the
    fault-free baseline must solve outright).
    """
    grouped = _grouped_by_x(_all_points(points_by_sweep), x)
    grouped.sort(key=lambda item: item[0])
    if not grouped:
        return [f"nonincreasing_rate: no points with x {x!r}"]
    rates = [
        sum(1 for p in group if p.result.solved) / len(group)
        for _, group in grouped
    ]
    failures = []
    if require_first is not None and rates[0] != require_first:
        failures.append(
            f"rate at {x}={grouped[0][0]:g} is {rates[0]:.3f}, expected "
            f"{require_first:.3f}"
        )
    for (x_lo, _), (x_hi, _), lo, hi in zip(grouped, grouped[1:], rates, rates[1:]):
        if hi > lo + 1e-12:
            failures.append(
                f"solved rate rose from {lo:.3f} at {x}={x_lo:g} to "
                f"{hi:.3f} at {x}={x_hi:g}"
            )
    return failures


@register_check("rate_at")
def _check_rate_at(
    points_by_sweep: PointsBySweep,
    x: str = "",
    x_value: float = 0.0,
    min_rate: float = 1.0,
) -> list[str]:
    """The solved rate at one x value must reach ``min_rate``."""
    for value, group in _grouped_by_x(_all_points(points_by_sweep), x):
        if abs(value - x_value) < 1e-12:
            rate = sum(1 for p in group if p.result.solved) / len(group)
            if rate + 1e-12 < min_rate:
                return [
                    f"solved rate at {x}={x_value:g} is {rate:.3f}, "
                    f"below {min_rate:.3f}"
                ]
            return []
    return [f"rate_at: no points with {x}={x_value:g}"]


@register_check("crossover")
def _check_crossover(
    points_by_sweep: PointsBySweep,
    x: str = "",
    first: str = "",
    last: str = "",
    y: str = "completion_time",
) -> list[str]:
    """Sweep ``first`` must win at the smallest x, ``last`` at the largest.

    "Win" means a strictly smaller mean y.  This is the Figure 1 crossover
    claim: BMMB's simplicity wins while acknowledgments are cheap, FMMB's
    ``Fack``-free structure wins once they are expensive.
    """
    for name in (first, last):
        if name not in points_by_sweep:
            return [f"crossover: sweep {name!r} not in scope"]
    series_first = dict(_series_means(points_by_sweep[first], x, y))
    series_last = dict(_series_means(points_by_sweep[last], x, y))
    shared = sorted(set(series_first) & set(series_last))
    if len(shared) < 2:
        return [f"crossover: need >= 2 shared x values, got {len(shared)}"]
    failures = []
    x_lo, x_hi = shared[0], shared[-1]
    if not series_first[x_lo] < series_last[x_lo]:
        failures.append(
            f"{first} should win at {x}={x_lo:g}: "
            f"{series_first[x_lo]:g} !< {series_last[x_lo]:g}"
        )
    if not series_last[x_hi] < series_first[x_hi]:
        failures.append(
            f"{last} should win at {x}={x_hi:g}: "
            f"{series_last[x_hi]:g} !< {series_first[x_hi]:g}"
        )
    return failures


@register_check("growth_gap")
def _check_growth_gap(
    points_by_sweep: PointsBySweep,
    x: str = "",
    fast: str = "",
    slow: str = "",
    min_fast_growth: float = 4.0,
    max_slow_fraction: float = 0.5,
) -> list[str]:
    """Metric ``fast`` must grow across the x range; ``slow`` much less.

    The footnote-2 claim: over the radio MAC the empirical ``Fack`` grows
    (near-)linearly with contention while the empirical ``Fprog`` stays
    polylogarithmic.  Growth is measured as mean(last x) / mean(first x);
    the slow metric must grow by less than ``max_slow_fraction`` of the
    fast metric's growth.
    """
    points = _all_points(points_by_sweep)
    fast_series = _series_means(points, x, fast)
    slow_series = _series_means(points, x, slow)
    if len(fast_series) < 2:
        return [f"growth_gap: need >= 2 x values on {x!r}"]
    fast_series.sort(key=lambda item: item[0])
    slow_series.sort(key=lambda item: item[0])
    fast_growth = fast_series[-1][1] / max(fast_series[0][1], 1e-9)
    slow_growth = slow_series[-1][1] / max(slow_series[0][1], 1e-9)
    failures = []
    if fast_growth < min_fast_growth:
        failures.append(
            f"{fast} grew {fast_growth:.2f}x across {x}, below "
            f"{min_fast_growth:.2f}x"
        )
    if slow_growth > fast_growth * max_slow_fraction:
        failures.append(
            f"{slow} grew {slow_growth:.2f}x, not under "
            f"{max_slow_fraction:.2f} of {fast}'s {fast_growth:.2f}x"
        )
    return failures


@register_check("saturation_knee")
def _check_saturation_knee(
    points_by_sweep: PointsBySweep,
    x: str = "workload.rate",
    y: str = "metric:latency_p95",
    knee_ratio: float = 3.0,
    min_points: int = 3,
) -> list[str]:
    """Each sweep's load-latency curve must contain a saturation knee.

    Judged per sweep (each sweep is one substrate's curve, with its own
    time unit): mean ``y`` at the lowest arrival rate is the uncongested
    baseline, and the highest-rate mean must reach ``knee_ratio`` times
    that baseline — i.e. the swept rate range actually crosses from the
    flat regime into saturation.  The knee itself is the largest rate
    whose latency stays within ``knee_ratio`` of the baseline; the check
    fails if that is also the largest rate (the curve never bent).
    """
    failures = []
    for name, points in points_by_sweep.items():
        series = sorted(_series_means(points, x, y))
        if len(series) < min_points:
            failures.append(
                f"{name}: need >= {min_points} rates on {x!r}, "
                f"got {len(series)}"
            )
            continue
        baseline = series[0][1]
        if not math.isfinite(baseline) or baseline <= 0:
            failures.append(
                f"{name}: baseline {y} at {x}={series[0][0]:g} is "
                f"{baseline:g}; the lowest rate must run uncongested"
            )
            continue
        elbow = knee_ratio * baseline
        top_rate, top = series[-1]
        if top < elbow:
            failures.append(
                f"{name}: {y} at top rate {top_rate:g} is {top:g}, under "
                f"{knee_ratio:g}x the baseline {baseline:g} — the rate "
                "range never reaches saturation"
            )
            continue
        knee = max(
            (rate for rate, latency in series if latency <= elbow),
            default=None,
        )
        if knee is None or knee == top_rate:
            failures.append(
                f"{name}: no rate below the top stays within "
                f"{knee_ratio:g}x baseline — the curve never bent"
            )
    return failures


@register_check("metric_dominates")
def _check_metric_dominates(
    points_by_sweep: PointsBySweep,
    upper: str = "",
    lower: str = "",
    slack: float = 1e-9,
) -> list[str]:
    """At every point, series value ``upper`` must be >= ``lower``.

    Values use the same addressing as figure series (``metric:<gauge>``,
    ``solved``, or a result attribute), so the check reads the one
    documented metrics surface the substrates' probes emit.  Used by the
    radio-family campaigns to assert the model ordering ``empirical_fack
    >= empirical_fprog`` pointwise.
    """
    if not upper or not lower:
        return ["metric_dominates: needs 'upper' and 'lower' params"]
    failures = []
    for point in _all_points(points_by_sweep):
        hi = y_value(point, upper)
        lo = y_value(point, lower)
        if hi + slack < lo:
            failures.append(
                f"{point.spec.name}: {upper} = {hi:g} below {lower} = {lo:g}"
            )
    return failures


CheckFn = Callable[..., "list[str]"]
