"""Built-in campaigns: the paper's result set as declarative bundles.

Each entry regenerates one figure/theorem artifact end to end — specs,
sharded execution, checkpointing, figures, and machine checks — replacing
the hand-run ``benchmarks/bench_*.py`` flow (those scripts are now thin
wrappers over these definitions):

* ``figure1`` — Figure 1's (Standard, G'=G) cell: BMMB completion scales
  as ``D*Fprog + k*Fack`` on reliable lines, within Theorem 3.16's t1.
* ``figure2_lowerbound`` — the Figure 2 adversary forces ``(D-1)*Fack``
  while a benign scheduler on the same network stays fast.
* ``crossover`` — BMMB vs FMMB as ``Fack/Fprog`` grows: simplicity wins
  while acknowledgments are cheap, FMMB wins once they are expensive.
* ``fault_resilience`` — solved-rate/completion among survivors under
  crash fractions and link flapping (beyond-paper scenario diversity).
* ``radio_footnote2`` — footnote 2 from below: the decay radio MAC's
  emergent ``Fack`` grows with contention while ``Fprog`` stays small.
* ``saturation`` — steady-state service mode: arrival-rate sweeps per
  substrate under the ``open_arrivals`` workload, load-latency curves,
  per-window latency series from the journaled standard sweep, and the
  saturation-knee plus trace-level checks (see :mod:`repro.traffic` and
  :mod:`repro.campaigns.trace_checks`).

Builders accept an optional ``n_max`` that reduces the campaign.  For the
ladder campaigns (``figure1``, ``figure2_lowerbound``, ``radio_footnote2``)
it trims the size ladder from the top, so the surviving points keep their
full-campaign specs — hence the same store keys — and a reduced CI run
warms the cache for a full local run.  ``crossover`` and
``fault_resilience`` use one fixed network instead of a ladder; there
``n_max`` caps the network size, which produces *different* specs (and
store keys) from the full campaign.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.campaigns.spec import (
    CampaignSpec,
    CheckSpec,
    FigureSpec,
    SeriesSpec,
    SweepDirective,
    scaled_values,
)
from repro.errors import ExperimentError
from repro.experiments.registries import Registry
from repro.experiments.specs import (
    AlgorithmSpec,
    ExperimentSpec,
    FaultSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
)

CAMPAIGNS = Registry("campaign")


@dataclass(frozen=True)
class CampaignEntry:
    """A campaign registration: builder plus its one-line description."""

    build: Callable[..., CampaignSpec]
    description: str


def register_campaign(name: str, description: str):
    """Register ``build(**params) -> CampaignSpec`` under ``name``."""

    def _decorator(build: Callable[..., CampaignSpec]) -> Callable[..., CampaignSpec]:
        CAMPAIGNS.register(name)(CampaignEntry(build, description))
        return build

    return _decorator


def list_campaigns() -> list[str]:
    """Registered campaign names."""
    return CAMPAIGNS.names()


def build_campaign(name: str, **params: Any) -> CampaignSpec:
    """Build the registered campaign ``name`` with builder parameters."""
    entry = CAMPAIGNS.get(name)
    try:
        campaign = entry.build(**params)
    except TypeError as exc:
        raise ExperimentError(
            f"campaign {name!r} rejected params {sorted(params)}: {exc}"
        ) from exc
    if campaign.name != name:
        raise ExperimentError(
            f"campaign builder {name!r} produced spec named "
            f"{campaign.name!r}"
        )
    return campaign


FACK = 20.0
FPROG = 1.0


@register_campaign(
    "figure1",
    "Figure 1 (Standard, G'=G): BMMB = O(D*Fprog + k*Fack) within t1",
)
def _figure1(n_max: int | None = None) -> CampaignSpec:
    sizes = scaled_values((11, 21, 41, 61), n_max)
    n_for_k = max(scaled_values((11, 21), n_max))
    base = ExperimentSpec(
        name="figure1",
        topology=TopologySpec("line", {"n": 21}),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("worstcase"),
        workload=WorkloadSpec("single_source", {"node": 0, "count": 2}),
        model=ModelSpec(fack=FACK, fprog=FPROG),
        seed=0,
    )
    d_scaling = SweepDirective(
        name="d_scaling",
        base=base,
        axes={"topology.n": list(sizes)},
        derive_seeds=False,
    )
    k_base = ExperimentSpec.from_dict(base.to_dict())
    k_scaling = SweepDirective(
        name="k_scaling",
        base=k_base,
        zip_axes={"topology.n": [n_for_k]},
        axes={"workload.count": [1, 4, 8, 16]},
        derive_seeds=False,
    )
    contention = SweepDirective(
        name="contention_reference",
        base=ExperimentSpec.from_dict(
            {
                **base.to_dict(),
                "topology": {"kind": "line", "params": {"n": n_for_k}},
                "scheduler": {"kind": "contention", "params": {}},
                "workload": {
                    "kind": "single_source",
                    "params": {"node": 0, "count": 8},
                },
            }
        ),
        derive_seeds=False,
    )
    return CampaignSpec(
        name="figure1",
        title="Figure 1 (Standard model, G' = G): BMMB on reliable lines",
        description=(
            "Sweeps line length at fixed k and message count at fixed D "
            "under worst-case acknowledgments; every run must meet "
            "Theorem 3.16's explicit t1 bound, D-scaling must ride on "
            "Fprog and k-scaling on Fack.  A contention-scheduler point "
            "shows the friendly-MAC case is faster still."
        ),
        sweeps=(d_scaling, k_scaling, contention),
        figures=(
            FigureSpec(
                name="time_vs_D",
                title="BMMB completion vs line length (k=2, worst-case acks)",
                x="topology.n",
                series=(SeriesSpec(sweep="d_scaling", label="measured"),),
                bound="bmmb_gg",
                xlabel="line nodes n (D = n-1)",
                ylabel="completion time",
            ),
            FigureSpec(
                name="time_vs_k",
                title="BMMB completion vs message count (worst-case acks)",
                x="workload.count",
                series=(SeriesSpec(sweep="k_scaling", label="measured"),),
                bound="bmmb_gg",
                xlabel="messages k",
                ylabel="completion time",
            ),
        ),
        checks=(
            CheckSpec(kind="solved"),
            CheckSpec(
                kind="upper_bound",
                sweeps=("d_scaling", "k_scaling", "contention_reference"),
                params={"bound": "bmmb_gg"},
            ),
            CheckSpec(
                kind="slope",
                sweeps=("d_scaling",),
                params={
                    "x": "topology.n",
                    "max_slope": FACK / 2,
                    "min_r_squared": 0.95,
                },
            ),
            CheckSpec(
                kind="slope",
                sweeps=("k_scaling",),
                params={
                    "x": "workload.count",
                    "min_slope": FACK / 2,
                    "min_r_squared": 0.95,
                },
            ),
        ),
    )


@register_campaign(
    "figure2_lowerbound",
    "Figure 2 adversary: (D-1)*Fack floor, benign scheduler for contrast",
)
def _figure2_lowerbound(n_max: int | None = None) -> CampaignSpec:
    depths = scaled_values((10, 20, 40, 80), n_max)
    base = ExperimentSpec(
        name="figure2",
        topology=TopologySpec("parallel_lines", {"depth": depths[0]}),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("greyzone_adversary", {"depth": depths[0]}),
        workload=WorkloadSpec("parallel_lines_sources"),
        model=ModelSpec(fack=FACK, fprog=FPROG),
        seed=0,
    )
    adversarial = SweepDirective(
        name="adversarial",
        base=base,
        zip_axes={
            "topology.depth": list(depths),
            "scheduler.depth": list(depths),
        },
        derive_seeds=False,
    )
    benign = SweepDirective(
        name="benign",
        base=ExperimentSpec.from_dict(
            {
                **base.to_dict(),
                "scheduler": {"kind": "uniform", "params": {}},
            }
        ),
        axes={"topology.depth": list(depths)},
    )
    return CampaignSpec(
        name="figure2_lowerbound",
        title="Figure 2 lower bound: frontier starvation forces (D-1)*Fack",
        description=(
            "Runs BMMB against the Lemma 3.19/3.20 frontier-starving "
            "adversary on the two-parallel-lines network across depths; "
            "completion must reach the (D-1)*Fack floor with slope ~Fack "
            "per hop, while a benign scheduler on the same network "
            "finishes an order of magnitude faster — the gap is the "
            "scheduler's doing, not the topology's."
        ),
        sweeps=(adversarial, benign),
        figures=(
            FigureSpec(
                name="completion_vs_depth",
                title="Adversarial vs benign completion on the Figure 2 network",
                x="topology.depth",
                series=(
                    SeriesSpec(sweep="adversarial", label="adversarial"),
                    SeriesSpec(sweep="benign", label="benign"),
                ),
                bound="figure2_floor",
                xlabel="line depth D",
                ylabel="completion time",
            ),
        ),
        checks=(
            CheckSpec(kind="solved"),
            CheckSpec(
                kind="lower_bound",
                sweeps=("adversarial",),
                params={"bound": "figure2_floor"},
            ),
            CheckSpec(
                kind="slope",
                sweeps=("adversarial",),
                params={
                    "x": "topology.depth",
                    "min_slope": FACK - 0.5,
                    "max_slope": FACK + 0.5,
                    "min_r_squared": 0.999,
                },
            ),
        ),
    )


@register_campaign(
    "crossover",
    "BMMB vs FMMB crossover as Fack/Fprog grows (Figure 1's two rows)",
)
def _crossover(n_max: int | None = None) -> CampaignSpec:
    n = min(40, n_max) if n_max is not None else 40
    ratios = [2.0, 10.0, 50.0, 250.0, 1000.0]
    topology = TopologySpec(
        "random_geometric",
        {"n": n, "side": 3.0, "c": 1.6, "grey_edge_probability": 0.4},
    )
    bmmb = SweepDirective(
        name="bmmb",
        base=ExperimentSpec(
            name="crossover-bmmb",
            topology=topology,
            algorithm=AlgorithmSpec("bmmb"),
            scheduler=SchedulerSpec("worstcase"),
            workload=WorkloadSpec("one_each", {"k": 5}),
            model=ModelSpec(fack=ratios[0] * FPROG, fprog=FPROG),
            seed=0,
        ),
        axes={"model.fack": list(ratios)},
        derive_seeds=False,
    )
    fmmb = SweepDirective(
        name="fmmb",
        base=ExperimentSpec(
            name="crossover-fmmb",
            topology=topology,
            algorithm=AlgorithmSpec("fmmb"),
            workload=WorkloadSpec("one_each", {"k": 5}),
            model=ModelSpec(fack=ratios[0] * FPROG, fprog=FPROG),
            substrate="rounds",
            seed=0,
        ),
        # The rounds substrate never consults Fack — the sweep shows the
        # ratio-independence as a flat line over the same axis.
        axes={"model.fack": list(ratios)},
        derive_seeds=False,
    )
    return CampaignSpec(
        name="crossover",
        title="BMMB vs FMMB: completion as the Fack/Fprog ratio grows",
        description=(
            "Fixes one grey-zone network and workload and sweeps the "
            "Fack/Fprog ratio.  BMMB pays Theta((D+k)*Fack) under "
            "worst-case acknowledgments while FMMB's enhanced-model "
            "phases are ratio-independent: cheap acks favor BMMB, "
            "expensive acks must eventually favor FMMB despite its "
            "polylog overhead."
        ),
        sweeps=(bmmb, fmmb),
        figures=(
            FigureSpec(
                name="completion_vs_ratio",
                title="Completion vs Fack/Fprog (n=%d, k=5)" % n,
                x="model.fack",
                series=(
                    SeriesSpec(sweep="bmmb", label="BMMB (worst-case acks)"),
                    SeriesSpec(sweep="fmmb", label="FMMB (ratio-free)"),
                ),
                xlabel="Fack / Fprog",
                ylabel="completion time",
            ),
        ),
        checks=(
            CheckSpec(kind="solved"),
            CheckSpec(
                kind="crossover",
                params={"x": "model.fack", "first": "bmmb", "last": "fmmb"},
            ),
        ),
    )


@register_campaign(
    "fault_resilience",
    "BMMB vs FMMB under crash fractions and link flapping (among survivors)",
)
def _fault_resilience(n_max: int | None = None, seeds: int = 6) -> CampaignSpec:
    n = min(20, n_max) if n_max is not None else 20
    fractions = [0.0, 0.15, 0.3]
    periods = [20.0, 8.0, 3.0]
    topology = TopologySpec(
        "random_geometric",
        {"n": n, "side": 2.2, "c": 1.6, "grey_edge_probability": 0.4},
    )

    def bmmb_base(name: str, fault: FaultSpec) -> ExperimentSpec:
        return ExperimentSpec(
            name=name,
            topology=topology,
            algorithm=AlgorithmSpec("bmmb"),
            workload=WorkloadSpec("one_each", {"k": 3}),
            fault=fault,
            model=ModelSpec(fack=FACK, fprog=FPROG),
            seed=0,
        )

    def fmmb_base(name: str, fault: FaultSpec) -> ExperimentSpec:
        return ExperimentSpec(
            name=name,
            topology=topology,
            algorithm=AlgorithmSpec("fmmb", {"c": 1.6}),
            workload=WorkloadSpec("one_each", {"k": 3}),
            fault=fault,
            model=ModelSpec(fack=FACK, fprog=FPROG),
            substrate="rounds",
            seed=0,
        )

    # Crash windows scale to each algorithm's completion scale (BMMB
    # finishes in a few Fprog, FMMB runs for hundreds of rounds) so the
    # faults hit mid-run rather than after quiescence.
    crash_bmmb = FaultSpec(
        "crash_random",
        {"fraction": 0.0, "earliest": 0.0, "latest": 0.4, "horizon": 5.0},
    )
    crash_fmmb = FaultSpec(
        "crash_random",
        {"fraction": 0.0, "earliest": 0.0, "latest": 0.4, "horizon": 300.0},
    )
    flap = FaultSpec("flap_periodic", {"fraction": 0.8, "period": 20.0, "duty": 0.5})
    sweeps = (
        SweepDirective(
            name="bmmb_crash",
            base=bmmb_base("fault-bmmb", crash_bmmb),
            zip_axes={"fault.fraction": list(fractions)},
            repeats=seeds,
        ),
        SweepDirective(
            name="fmmb_crash",
            base=fmmb_base("fault-fmmb", crash_fmmb),
            zip_axes={"fault.fraction": list(fractions)},
            repeats=seeds,
        ),
        SweepDirective(
            name="bmmb_flap",
            base=bmmb_base("flap-bmmb", flap),
            zip_axes={"fault.period": list(periods)},
            repeats=seeds,
        ),
        SweepDirective(
            name="fmmb_flap",
            base=fmmb_base("flap-fmmb", flap),
            zip_axes={"fault.period": list(periods)},
            repeats=seeds,
        ),
    )
    return CampaignSpec(
        name="fault_resilience",
        title="Fault resilience: BMMB vs FMMB under crashes and flapping",
        description=(
            "Sweeps node-crash fractions and link-flap rates over paired "
            "replication seeds.  Fault-free baselines must solve "
            "outright; BMMB's among-survivors solved rate is "
            "non-increasing in the crash fraction (crashes only destroy "
            "delivery paths); link flapping alone never breaks "
            "solvability (flapped edges only add reliability over the "
            "grey baseline) but perturbs completion."
        ),
        sweeps=sweeps,
        figures=(
            FigureSpec(
                name="solved_vs_crash",
                title="Among-survivors solved rate vs crash fraction",
                x="fault.fraction",
                series=(
                    SeriesSpec(
                        sweep="bmmb_crash", y="solved", agg="mean", label="BMMB"
                    ),
                    SeriesSpec(
                        sweep="fmmb_crash", y="solved", agg="mean", label="FMMB"
                    ),
                ),
                xlabel="crash fraction",
                ylabel="solved rate",
            ),
            FigureSpec(
                name="completion_vs_flap",
                title="Completion (among survivors) vs link-flap period",
                x="fault.period",
                series=(
                    SeriesSpec(sweep="bmmb_flap", label="BMMB"),
                    SeriesSpec(sweep="fmmb_flap", label="FMMB"),
                ),
                xlabel="flap period (smaller = faster flapping)",
                ylabel="completion time",
            ),
        ),
        checks=(
            CheckSpec(
                kind="nonincreasing_rate",
                sweeps=("bmmb_crash",),
                params={"x": "fault.fraction", "require_first": 1.0},
            ),
            CheckSpec(
                kind="rate_at",
                sweeps=("fmmb_crash",),
                params={"x": "fault.fraction", "x_value": 0.0, "min_rate": 1.0},
            ),
            CheckSpec(kind="solved", sweeps=("bmmb_flap", "fmmb_flap")),
        ),
    )


@register_campaign(
    "radio_footnote2",
    "Footnote 2 from below: decay radio MAC yields Fack >> Fprog",
)
def _radio_footnote2(n_max: int | None = None, seeds: int = 3) -> CampaignSpec:
    sizes = scaled_values((6, 12, 24, 48), n_max)
    span_ratio = sizes[-1] / sizes[0]
    stars = SweepDirective(
        name="stars",
        base=ExperimentSpec(
            name="radio-star",
            topology=TopologySpec("star", {"n": sizes[0]}),
            algorithm=AlgorithmSpec("bmmb"),
            workload=WorkloadSpec("one_each", {"nodes": list(range(1, sizes[0]))}),
            model=ModelSpec(params={"max_slots": 500_000}),
            substrate="radio",
            seed=0,
        ),
        zip_axes={
            "topology.n": list(sizes),
            "workload.nodes": [list(range(1, n)) for n in sizes],
        },
        repeats=seeds,
    )
    return CampaignSpec(
        name="radio_footnote2",
        title="Footnote 2 from below: empirical Fack/Fprog over the radio MAC",
        description=(
            "Runs BMMB over the implemented slotted-collision radio MAC "
            "with decay back-off on stars of growing size and extracts "
            "each execution's empirical Fack/Fprog (the smallest "
            "constants satisfying the abstract-MAC timing axioms).  "
            "Fack must grow strongly with contention while Fprog stays "
            "far smaller — the gap the enhanced model abstracts."
        ),
        sweeps=(stars,),
        figures=(
            FigureSpec(
                name="bounds_vs_contention",
                title="Empirical Fack and Fprog vs star size",
                x="topology.n",
                series=(
                    SeriesSpec(
                        sweep="stars",
                        y="metric:empirical_fack",
                        agg="mean",
                        label="empirical Fack",
                    ),
                    SeriesSpec(
                        sweep="stars",
                        y="metric:empirical_fprog",
                        agg="mean",
                        label="empirical Fprog",
                    ),
                ),
                xlabel="star size n (contention)",
                ylabel="slots",
            ),
        ),
        checks=(
            CheckSpec(kind="solved"),
            CheckSpec(
                kind="growth_gap",
                params={
                    "x": "topology.n",
                    "fast": "metric:empirical_fack",
                    "slow": "metric:empirical_fprog",
                    "min_fast_growth": max(1.5, span_ratio / 2.0),
                    # Fprog's polylog shape only pulls clearly ahead of
                    # Fack's linear growth once the ladder spans ~an order
                    # of magnitude; reduced ladders get more headroom.
                    "max_slow_fraction": 0.5 if span_ratio >= 8 else 0.75,
                },
            ),
        ),
    )


@register_campaign(
    "saturation",
    "Load vs latency under open arrivals: locate each substrate's knee",
)
def _saturation(n_max: int | None = None, seeds: int = 3) -> CampaignSpec:
    n = 16 if n_max is None else max(min(16, n_max), 8)
    topology = TopologySpec(
        "random_geometric",
        {"n": n, "side": 2.2, "c": 1.6, "grey_edge_probability": 0.4},
    )
    workload = WorkloadSpec(
        "open_arrivals", {"process": "poisson", "rate": 0.005, "count": 24}
    )
    # Per-substrate rate ladders straddling the empirically located knee
    # (slotted-radio service is far slower than the abstract MAC's, so
    # its ladder sits an order of magnitude lower).
    standard = SweepDirective(
        name="standard",
        base=ExperimentSpec(
            name="saturation-standard",
            topology=topology,
            algorithm=AlgorithmSpec("bmmb"),
            scheduler=SchedulerSpec("worstcase"),
            workload=workload,
            model=ModelSpec(fack=FACK, fprog=FPROG),
            seed=0,
        ),
        axes={"workload.rate": [0.005, 0.02, 0.08, 0.32]},
        repeats=seeds,
        journal=True,
    )
    radio = SweepDirective(
        name="radio",
        base=ExperimentSpec(
            name="saturation-radio",
            topology=topology,
            algorithm=AlgorithmSpec("bmmb"),
            workload=workload,
            model=ModelSpec(params={"max_slots": 5_000_000}),
            substrate="radio",
            seed=0,
        ),
        axes={"workload.rate": [0.002, 0.005, 0.01, 0.02]},
        repeats=seeds,
    )
    sinr = SweepDirective(
        name="sinr",
        base=ExperimentSpec(
            name="saturation-sinr",
            topology=topology,
            algorithm=AlgorithmSpec("bmmb"),
            workload=workload,
            model=ModelSpec(params={"max_slots": 5_000_000}),
            substrate="sinr",
            seed=0,
        ),
        axes={"workload.rate": [0.002, 0.005, 0.01, 0.02]},
        repeats=seeds,
    )
    return CampaignSpec(
        name="saturation",
        title="Steady-state saturation: delivery latency vs arrival rate",
        description=(
            "Sweeps the Poisson arrival rate of the open_arrivals "
            "workload per substrate (standard under worst-case acks, "
            "radio, sinr) and reads the warmup-trimmed steady-state "
            "gauges the traffic subsystem emits.  Each substrate's "
            "load-latency curve must stay flat at low rates and bend "
            "sharply past its service capacity — the saturation knee the "
            "knee check locates; throughput must plateau past it.  The "
            "standard substrate queues but always drains, so it must "
            "solve outright; past the knee a saturated slotted radio may "
            "legitimately fail to drain within the slot budget, so the "
            "radio-family solved gate tolerates a small unsolved tail."
        ),
        sweeps=(standard, radio, sinr),
        figures=(
            FigureSpec(
                name="latency_vs_rate",
                title="Delivery latency p95 vs arrival rate (n=%d)" % n,
                x="workload.rate",
                series=(
                    SeriesSpec(
                        sweep="standard",
                        y="metric:latency_p95",
                        agg="mean",
                        label="standard (worst-case acks)",
                    ),
                    SeriesSpec(
                        sweep="radio",
                        y="metric:latency_p95",
                        agg="mean",
                        label="radio",
                    ),
                    SeriesSpec(
                        sweep="sinr",
                        y="metric:latency_p95",
                        agg="mean",
                        label="sinr",
                    ),
                ),
                xlabel="arrival rate (messages per time unit)",
                ylabel="latency p95 (substrate time units)",
            ),
            FigureSpec(
                name="throughput_vs_rate",
                title="Delivered throughput vs arrival rate (n=%d)" % n,
                x="workload.rate",
                series=(
                    SeriesSpec(
                        sweep="standard",
                        y="metric:throughput",
                        agg="mean",
                        label="standard (worst-case acks)",
                    ),
                    SeriesSpec(
                        sweep="radio",
                        y="metric:throughput",
                        agg="mean",
                        label="radio",
                    ),
                    SeriesSpec(
                        sweep="sinr",
                        y="metric:throughput",
                        agg="mean",
                        label="sinr",
                    ),
                ),
                xlabel="arrival rate (messages per time unit)",
                ylabel="completions per time unit",
            ),
            FigureSpec(
                name="latency_windows",
                title="Per-window delivery latency, standard sweep (n=%d)" % n,
                x="window",
                series=(
                    SeriesSpec(
                        sweep="standard",
                        y="series:window_latency_mean",
                        agg="mean",
                        label="standard (all rates pooled)",
                    ),
                ),
                xlabel="steady-state window index",
                ylabel="mean delivery latency (time units)",
            ),
        ),
        checks=(
            CheckSpec(kind="solved", sweeps=("standard",)),
            CheckSpec(
                kind="solved",
                sweeps=("radio", "sinr"),
                params={"min_rate": 0.9},
            ),
            CheckSpec(
                kind="saturation_knee",
                params={
                    "x": "workload.rate",
                    "y": "metric:latency_p95",
                    "knee_ratio": 3.0,
                    "min_points": 3,
                },
            ),
        ),
        trace_checks=(
            CheckSpec(kind="ack_latency", sweeps=("standard",)),
            CheckSpec(kind="abort_accounting", sweeps=("standard",)),
            CheckSpec(kind="delivery_order", sweeps=("standard",)),
        ),
    )


@register_campaign(
    "sinr_contention",
    "SINR substrate: empirical Fack grows with contention, Fprog stays small",
)
def _sinr_contention(n_max: int | None = None, seeds: int = 3) -> CampaignSpec:
    n = 24 if n_max is None else max(min(24, n_max), 8)
    ks = (1, 2, 4, 8)
    base = ExperimentSpec(
        name="sinr-contention",
        topology=TopologySpec(
            "random_geometric",
            {"n": n, "side": 2.5, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"k": 1}),
        model=ModelSpec(params={"max_slots": 500_000}),
        substrate="sinr",
        seed=0,
    )
    contention = SweepDirective(
        name="contention",
        base=base,
        axes={"workload.k": list(ks)},
        repeats=seeds,
    )
    return CampaignSpec(
        name="sinr_contention",
        title="Footnote 2 under SINR: empirical Fack/Fprog vs message load",
        description=(
            "Runs BMMB over the SINR-reception radio (distance-threshold "
            "signal/interference over an embedded grey-zone network, "
            "the registry-only 'sinr' substrate) with growing message "
            "counts and extracts each execution's empirical Fack/Fprog.  "
            "The abstract-MAC ordering Fack >= Fprog must hold pointwise "
            "even when reliability emerges from SINR geometry rather "
            "than the binary collision model."
        ),
        sweeps=(contention,),
        figures=(
            FigureSpec(
                name="sinr_bounds_vs_k",
                title="Empirical Fack and Fprog vs message count (SINR)",
                x="workload.k",
                series=(
                    SeriesSpec(
                        sweep="contention",
                        y="metric:empirical_fack",
                        agg="mean",
                        label="empirical Fack",
                    ),
                    SeriesSpec(
                        sweep="contention",
                        y="metric:empirical_fprog",
                        agg="mean",
                        label="empirical Fprog",
                    ),
                ),
                xlabel="messages k (contention)",
                ylabel="slots",
            ),
        ),
        checks=(
            CheckSpec(kind="solved"),
            CheckSpec(
                kind="metric_dominates",
                params={
                    "upper": "metric:empirical_fack",
                    "lower": "metric:empirical_fprog",
                },
            ),
        ),
    )


@register_campaign(
    "smoke",
    "Seconds-fast line ladder for fabric drills (chaos/CI smoke)",
)
def _smoke(points: int = 6, k: int = 1, n_max: int | None = None) -> CampaignSpec:
    """A deliberately tiny campaign for exercising the fabric itself.

    Every point is a short reliable-line BMMB run (milliseconds each), so
    chaos drills, budget tests, and CI smoke lanes can kill, hang, and
    corrupt their way through a full campaign in seconds.  The checks are
    real (Theorem 3.16's t1 bound), so a converged chaos run still proves
    something about the simulator, not just the supervisor.
    """
    if points < 1:
        raise ExperimentError(f"smoke needs points >= 1, got {points}")
    sizes = scaled_values(tuple(4 + 2 * i for i in range(points)), n_max)
    base = ExperimentSpec(
        name="smoke",
        topology=TopologySpec("line", {"n": 4}),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("worstcase"),
        workload=WorkloadSpec("single_source", {"node": 0, "count": k}),
        model=ModelSpec(fack=FACK, fprog=FPROG),
        seed=0,
    )
    ladder = SweepDirective(
        name="lines",
        base=base,
        axes={"topology.n": sizes},
        derive_seeds=False,
    )
    return CampaignSpec(
        name="smoke",
        title="Fabric smoke: BMMB on short reliable lines",
        description=(
            "A seconds-fast line ladder used to drill the supervised "
            "campaign fabric (chaos injection, budgets, resume) and as "
            "the CI chaos-smoke workload; bounds are checked for real."
        ),
        sweeps=(ladder,),
        figures=(
            FigureSpec(
                name="smoke_time_vs_D",
                title="BMMB completion vs line length (smoke ladder)",
                x="topology.n",
                series=(SeriesSpec(sweep="lines", label="measured"),),
                bound="bmmb_gg",
                xlabel="line nodes n (D = n-1)",
                ylabel="completion time",
            ),
        ),
        checks=(
            CheckSpec(kind="solved"),
            CheckSpec(kind="upper_bound", params={"bound": "bmmb_gg"}),
        ),
    )


# ----------------------------------------------------------------------
# The all_figures meta-campaign
# ----------------------------------------------------------------------

#: Separator between a source campaign's name and its sweep names inside
#: the merged campaign.  ``:`` cannot appear in campaign or sweep names,
#: so prefixed names never collide and scope globs stay exact.
META_SWEEP_SEP = ":"

#: Separator for figure artifact basenames (which become file names, so
#: they avoid ``:``).
META_FIGURE_SEP = "__"


def _prefix_patterns(name: str, patterns: tuple[str, ...]) -> tuple[str, ...]:
    """Scope a check's sweep globs to one source campaign's sweeps.

    The campaign name is prepended literally, so a pattern matches a
    prefixed sweep name exactly when the original pattern matched the
    original sweep name — ``("*",)`` becomes "every sweep of *this*
    campaign", never a cross-campaign wildcard.
    """
    return tuple(f"{name}{META_SWEEP_SEP}{pattern}" for pattern in patterns)


def _prefix_campaign(name: str, campaign: CampaignSpec) -> CampaignSpec:
    """Namespace one campaign's directives for inclusion in the merge.

    Only *names and scopes* are rewritten — every sweep keeps its base
    spec, axes, and seeds untouched, so the merged campaign expands to
    exactly the same :class:`ExperimentSpec` points (hence the same
    store keys) as the individual campaigns.  Running ``all_figures``
    against a store warmed by individual campaigns is a 100% cache hit,
    and vice versa.
    """
    prefix = f"{name}{META_SWEEP_SEP}"
    sweeps = tuple(
        dataclasses.replace(directive, name=prefix + directive.name)
        for directive in campaign.sweeps
    )
    figures = tuple(
        FigureSpec(
            name=f"{name}{META_FIGURE_SEP}{figure.name}",
            title=f"{campaign.title} — {figure.title}",
            x=figure.x,
            series=tuple(
                SeriesSpec(
                    sweep=prefix + series.sweep,
                    y=series.y,
                    label=f"{name}:{series.label}",
                    agg=series.agg,
                )
                for series in figure.series
            ),
            bound=figure.bound,
            xlabel=figure.xlabel,
            ylabel=figure.ylabel,
        )
        for figure in campaign.figures
    )
    checks = tuple(
        CheckSpec(
            kind=check.kind,
            sweeps=_prefix_patterns(name, check.sweeps),
            params=check.params,
        )
        for check in campaign.checks
    )
    trace_checks = tuple(
        CheckSpec(
            kind=check.kind,
            sweeps=_prefix_patterns(name, check.sweeps),
            params=check.params,
        )
        for check in campaign.trace_checks
    )
    return CampaignSpec(
        name=campaign.name,
        title=campaign.title,
        sweeps=sweeps,
        figures=figures,
        checks=checks,
        trace_checks=trace_checks,
        description=campaign.description,
    )


def _parse_include(include: Any) -> list[str]:
    """``include=`` builder param → ordered campaign names."""
    if isinstance(include, str):
        names = [part.strip() for part in include.split(",") if part.strip()]
    else:
        names = [str(part) for part in include]
    known = [n for n in list_campaigns() if n != "all_figures"]
    unknown = sorted(set(names) - set(known))
    if unknown:
        raise ExperimentError(
            f"all_figures: unknown campaign(s) {', '.join(unknown)} in "
            f"include= (known: {', '.join(known)})"
        )
    if not names:
        raise ExperimentError("all_figures: include= selected no campaigns")
    # Registry order, deduplicated — the merge order is part of the
    # campaign's identity, so it must not depend on how include= was
    # spelled.
    selected = set(names)
    return [n for n in known if n in selected]


@register_campaign(
    "all_figures",
    "Meta-campaign: every built-in campaign, one shared store, one report",
)
def _all_figures(
    n_max: int | None = None,
    seeds: int | None = None,
    include: Any = None,
) -> CampaignSpec:
    """The whole paper as one campaign: every built-in merged.

    Each source campaign's sweeps are renamed ``<campaign>:<sweep>`` and
    its figures ``<campaign>__<figure>``; checks and trace checks keep
    their scopes within their source campaign.  Because only names are
    rewritten, the merged campaign's points are spec-for-spec (and so
    store-key-for-store-key) the individual campaigns' points: one
    shared store serves both, sharding and resume work unchanged, and
    ``repro campaign run all_figures`` regenerates the full paper in a
    single resumable command.

    Args:
        n_max: Forwarded to every builder that accepts it (ladder trim /
            network-size cap, see the module docstring).
        seeds: Forwarded to every builder that accepts it (replication
            count for the seeded campaigns).
        include: Comma-separated campaign names (or a list) to merge a
            subset — e.g. ``--set include=figure1,smoke`` for smoke
            lanes.  Defaults to every built-in campaign.
    """
    if include is None:
        names = [n for n in list_campaigns() if n != "all_figures"]
    else:
        names = _parse_include(include)
    merged_sweeps: list[SweepDirective] = []
    merged_figures: list[FigureSpec] = []
    merged_checks: list[CheckSpec] = []
    merged_trace_checks: list[CheckSpec] = []
    for name in names:
        entry = CAMPAIGNS.get(name)
        accepted = set(inspect.signature(entry.build).parameters)
        params: dict[str, Any] = {}
        if n_max is not None and "n_max" in accepted:
            params["n_max"] = n_max
        if seeds is not None and "seeds" in accepted:
            params["seeds"] = seeds
        prefixed = _prefix_campaign(name, entry.build(**params))
        merged_sweeps.extend(prefixed.sweeps)
        merged_figures.extend(prefixed.figures)
        merged_checks.extend(prefixed.checks)
        merged_trace_checks.extend(prefixed.trace_checks)
    return CampaignSpec(
        name="all_figures",
        title="All figures: the full paper result set",
        description=(
            "Every built-in campaign merged into one resumable unit: the "
            "paper's figures, lower bound, crossover, fault resilience, "
            "radio and SINR contention, saturation, and the smoke ladder "
            "share one content-addressed store and emit one combined "
            "report.  Point specs are identical to the individual "
            "campaigns', so warm stores are reused in both directions."
        ),
        sweeps=tuple(merged_sweeps),
        figures=tuple(merged_figures),
        checks=tuple(merged_checks),
        trace_checks=tuple(merged_trace_checks),
    )
