"""Trace-level campaign validation over persisted observation journals.

Scalar checks (:mod:`repro.campaigns.checks`) see one number per point;
the paper's guarantees are statements about *event orderings* — every
acknowledgment lands within ``F_ack`` of its broadcast, aborts account
for their instances, deliveries respect injection order.  Trace checks
assert exactly those properties, post-hoc, against the observation
journals that ``journal=True`` sweeps persist into the result store.

A :class:`~repro.campaigns.spec.CheckSpec` under
``CampaignSpec.trace_checks`` names an entry in :data:`TRACE_CHECKS`:

    fn(spec, observations, **params) -> list[str]

called once per in-scope point with its spec and the journaled stream;
returned strings are failure descriptions (empty = pass).  The registry
is open — downstream campaigns add entries with
:func:`register_trace_check`.

Built-in checks:

========================  =============================================
``ack_latency``           every ``ack`` within ``fack`` of its
                          ``bcast`` (default: the spec's ``model.fack``;
                          override/loosen with ``fack=``/``slack=``)
``abort_accounting``      terminators are accounted for: every
                          ``ack``/``abort`` references a ``bcast``-ed
                          instance, no instance double-terminates
``mac_axioms``            full MAC-axiom re-certification of the
                          journal via :func:`repro.mac.axioms.check_axioms`
``delivery_order``        deliveries are unique per (node, message) and
                          never precede the message's injection
========================  =============================================
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.experiments.registries import Registry
from repro.experiments.runner import materialize_topology
from repro.experiments.specs import ExperimentSpec
from repro.mac.axioms import check_axioms
from repro.runtime.observations import Observation
from repro.runtime.trace import from_observations, to_instance_log

TRACE_CHECKS = Registry("trace check")


def register_trace_check(name: str):
    """Register ``check(spec, observations, **params) -> list[str]``."""
    return TRACE_CHECKS.register(name)


@register_trace_check("ack_latency")
def _ack_latency(
    spec: ExperimentSpec,
    observations: tuple[Observation, ...],
    fack: float | None = None,
    slack: float = 1e-9,
) -> list[str]:
    """Every acknowledged instance was acknowledged within ``fack``."""
    bound = spec.model.fack if fack is None else float(fack)
    bcast_times: dict[int, float] = {}
    failures: list[str] = []
    for obs in observations:
        if obs.kind == "bcast":
            bcast_times[obs.ref] = obs.time
    for obs in observations:
        if obs.kind != "ack":
            continue
        sent = bcast_times.get(obs.ref)
        if sent is None:
            continue  # abort_accounting owns orphan terminators
        latency = obs.time - sent
        if latency > bound + slack:
            failures.append(
                f"instance {obs.ref} ({obs.key!r}): ack latency "
                f"{latency:.6g} exceeds fack {bound:.6g}"
            )
    return failures


@register_trace_check("abort_accounting")
def _abort_accounting(
    spec: ExperimentSpec,
    observations: tuple[Observation, ...],
) -> list[str]:
    """Terminators account exactly for broadcast instances.

    Every ``ack``/``abort`` must reference a ``bcast``-ed instance, and
    an instance terminates at most once (one ``ack`` *or* one ``abort``,
    never both, never duplicated).
    """
    bcast_refs: set[int] = set()
    failures: list[str] = []
    terminators: dict[int, list[str]] = {}
    for obs in observations:
        if obs.kind == "bcast":
            bcast_refs.add(obs.ref)
        elif obs.kind in ("ack", "abort"):
            terminators.setdefault(obs.ref, []).append(obs.kind)
    for ref in sorted(terminators):
        kinds = terminators[ref]
        if ref not in bcast_refs:
            failures.append(
                f"instance {ref}: {'/'.join(kinds)} without a bcast"
            )
        if len(kinds) > 1:
            failures.append(
                f"instance {ref}: terminated {len(kinds)} times "
                f"({', '.join(kinds)})"
            )
    return failures


@register_trace_check("mac_axioms")
def _mac_axioms(
    spec: ExperimentSpec,
    observations: tuple[Observation, ...],
    allow_pending: bool = True,
    check_progress: bool = False,
) -> list[str]:
    """Re-certify the journaled MAC events against the layer axioms.

    Rebuilds the instance log from the stream and runs the full
    :func:`~repro.mac.axioms.check_axioms` certification.  Defaults are
    journal-appropriate: pending instances are allowed (faulted and
    budget-capped runs truncate legitimately) and the progress bound is
    skipped (it needs fault-plan context a journal of a faulted run does
    not carry); tighten with ``allow_pending=False`` /
    ``check_progress=True`` on clean campaigns.
    """
    events = from_observations(observations)
    if not events:
        return ["journal carries no MAC events to certify"]
    log = to_instance_log(events)
    dual = materialize_topology(spec)
    report = check_axioms(
        log,
        dual,
        fack=spec.model.fack,
        fprog=spec.model.fprog,
        allow_pending=allow_pending,
        check_progress=check_progress,
    )
    return list(report.violations)


@register_trace_check("delivery_order")
def _delivery_order(
    spec: ExperimentSpec,
    observations: tuple[Observation, ...],
    eps: float = 1e-9,
) -> list[str]:
    """Deliveries are unique per (node, message) and follow injection."""
    arrival_times: dict[str, float] = {}
    failures: list[str] = []
    seen: set[tuple[int | None, str]] = set()
    for obs in observations:
        if obs.kind == "arrival" and obs.key not in arrival_times:
            arrival_times[obs.key] = obs.time
    for obs in observations:
        if obs.kind != "deliver":
            continue
        slot = (obs.node, obs.key)
        if slot in seen:
            failures.append(
                f"node {obs.node} delivered message {obs.key!r} twice"
            )
        seen.add(slot)
        injected = arrival_times.get(obs.key)
        if injected is not None and obs.time < injected - eps:
            failures.append(
                f"node {obs.node} delivered {obs.key!r} at {obs.time:.6g} "
                f"before its injection at {injected:.6g}"
            )
    return failures


def run_trace_check(
    kind: str,
    spec: ExperimentSpec,
    observations: tuple[Observation, ...],
    **params,
) -> list[str]:
    """Run one registered trace check; raises on bad params."""
    check = TRACE_CHECKS.get(kind)
    try:
        return check(spec, observations, **params)
    except TypeError as exc:
        raise ExperimentError(
            f"trace check {kind!r} rejected params {sorted(params)}: {exc}"
        ) from exc
