"""String-keyed component registries backing the declarative experiment API.

Every axis a spec can vary — topology, scheduler, algorithm, MAC layer,
workload — has a registry mapping a stable string key to a builder.  The
built-in entries wrap the package's existing generators, schedulers,
automata, and MAC layers; downstream code adds its own scenarios with the
``@register_*`` decorators and they immediately work in specs, sweeps, and
the CLI (``repro registry`` lists everything).

Builder conventions:

* topology: ``build(rng, **params) -> DualGraph`` (deterministic families
  ignore ``rng``);
* scheduler: ``build(rng, **params) -> Scheduler``;
* workload: ``build(dual, rng, **params) -> MessageAssignment |
  ArrivalSchedule``;
* algorithm: ``build(**params) -> AutomatonFactory`` for the event-driven
  substrates; the ``fmmb`` entry instead returns its
  :class:`~repro.core.fmmb.config.FMMBConfig` (the rounds substrate owns
  its node drivers);
* mac: the registry stores the MAC layer class (or an equivalent builder
  ``build(dual_or_sim, rng, **params)``, like the ``sinr`` entry).

Execution engines have their own registry in
:mod:`repro.experiments.substrates` (``@register_substrate``); this module
stays limited to the components a substrate assembles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.baselines import RedundantFloodingNode
from repro.core.bmmb import BMMBNode
from repro.core.consensus import FloodConsensusNode, consensus_reached
from repro.core.fmmb import FMMBConfig
from repro.core.leader import FloodMaxNode, elected_correctly
from repro.core.problem import ArrivalSchedule
from repro.errors import ExperimentError
from repro.ids import MessageAssignment
from repro.mac.enhanced import EnhancedMACLayer
from repro.mac.schedulers import (
    ChokeAdversary,
    ContentionScheduler,
    GreyZoneAdversary,
    UniformDelayScheduler,
    WorstCaseAckScheduler,
)
from repro.mac.standard import StandardMACLayer
from repro.radio import RadioMACLayer, sinr_mac_layer
from repro.topology.generators import (
    grid_network,
    line_graph,
    line_network,
    ring_network,
    star_network,
    tree_network,
    with_arbitrary_unreliable,
    with_r_restricted_unreliable,
)
from repro.topology.adversarial import choke_star_network, parallel_lines_network
from repro.topology.geometric import random_geometric_network


class Registry:
    """A named map from string keys to builders, with helpful errors."""

    def __init__(self, label: str):
        self.label = label
        self._entries: dict[str, Any] = {}

    def register(self, name: str) -> Callable[[Any], Any]:
        """Decorator: register the decorated object under ``name``."""
        if not name:
            raise ExperimentError(f"{self.label} registry key must be non-empty")

        def _decorator(obj: Any) -> Any:
            if name in self._entries:
                raise ExperimentError(
                    f"{self.label} registry already has an entry {name!r}"
                )
            self._entries[name] = obj
            return obj

        return _decorator

    def get(self, name: str) -> Any:
        """The entry for ``name``; raises with the known keys otherwise."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<empty>"
            raise ExperimentError(
                f"unknown {self.label} {name!r}; registered: {known}"
            ) from None

    def names(self) -> list[str]:
        """All registered keys, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class AlgorithmEntry:
    """An algorithm registration.

    Attributes:
        build: ``build(**params)`` — returns the per-node automaton factory
            (or, for ``fmmb``, the :class:`FMMBConfig`).
        substrates: The substrates the algorithm can run on.
        postcondition: Optional oracle check ``(dual, automata) -> bool``
            evaluated at quiescence on the ``protocol`` substrate; defines
            that substrate's ``solved`` flag.
    """

    build: Callable[..., Any]
    substrates: tuple[str, ...] = ("standard",)
    postcondition: Callable[..., bool] | None = field(default=None, compare=False)


TOPOLOGIES = Registry("topology")
SCHEDULERS = Registry("scheduler")
ALGORITHMS = Registry("algorithm")
MACS = Registry("mac layer")
WORKLOADS = Registry("workload")
FAULTS = Registry("fault scenario")


def register_topology(name: str):
    """Register ``build(rng, **params) -> DualGraph`` under ``name``."""
    return TOPOLOGIES.register(name)


def register_scheduler(name: str):
    """Register ``build(rng, **params) -> Scheduler`` under ``name``."""
    return SCHEDULERS.register(name)


def register_mac(name: str):
    """Register a MAC layer class under ``name``."""
    return MACS.register(name)


def register_workload(name: str):
    """Register ``build(dual, rng, **params) -> workload`` under ``name``."""
    return WORKLOADS.register(name)


def register_fault(name: str):
    """Register ``build(dual, rng, **params) -> FaultPlan`` under ``name``.

    The built-in scenarios live in :mod:`repro.faults.scenarios`; a spec
    selects one with its ``fault`` field (``FaultSpec(kind, params)``).
    """
    return FAULTS.register(name)


def register_algorithm(
    name: str,
    substrates: tuple[str, ...] = ("standard",),
    postcondition: Callable[..., bool] | None = None,
):
    """Register an algorithm builder under ``name``.

    The decorated callable is the entry's ``build``; ``substrates`` and
    ``postcondition`` complete the :class:`AlgorithmEntry`.
    """

    def _decorator(build: Callable[..., Any]) -> Callable[..., Any]:
        ALGORITHMS.register(name)(
            AlgorithmEntry(
                build=build, substrates=substrates, postcondition=postcondition
            )
        )
        return build

    return _decorator


def list_topologies() -> list[str]:
    """Registered topology keys."""
    return TOPOLOGIES.names()


def list_schedulers() -> list[str]:
    """Registered scheduler keys."""
    return SCHEDULERS.names()


def list_algorithms() -> list[str]:
    """Registered algorithm keys."""
    return ALGORITHMS.names()


def list_macs() -> list[str]:
    """Registered MAC layer keys."""
    return MACS.names()


def list_workloads() -> list[str]:
    """Registered workload keys."""
    return WORKLOADS.names()


def list_faults() -> list[str]:
    """Registered fault-scenario keys."""
    return FAULTS.names()


# ----------------------------------------------------------------------
# Built-in topologies
# ----------------------------------------------------------------------
@register_topology("line")
def _build_line(rng, n: int = 20):
    return line_network(n)


@register_topology("ring")
def _build_ring(rng, n: int = 20):
    return ring_network(n)


@register_topology("star")
def _build_star(rng, n: int = 12):
    return star_network(n)


@register_topology("grid")
def _build_grid(rng, rows: int = 5, cols: int = 5):
    return grid_network(rows, cols)


@register_topology("tree")
def _build_tree(rng, branching: int = 2, height: int = 4):
    return tree_network(branching, height)


@register_topology("random_geometric")
def _build_random_geometric(
    rng,
    n: int = 40,
    side: float = 3.0,
    c: float = 1.6,
    grey_edge_probability: float = 0.4,
    connect: bool = True,
):
    return random_geometric_network(
        n,
        side=side,
        c=c,
        grey_edge_probability=grey_edge_probability,
        rng=rng,
        connect=connect,
    )


@register_topology("r_restricted_line")
def _build_r_restricted_line(
    rng, n: int = 20, r: int = 3, probability: float = 0.5
):
    return with_r_restricted_unreliable(line_graph(n), r=r, probability=probability, rng=rng)


@register_topology("arbitrary_line")
def _build_arbitrary_line(rng, n: int = 20, extra_edges: int = 10):
    return with_arbitrary_unreliable(line_graph(n), extra_edges, rng=rng)


@register_topology("parallel_lines")
def _build_parallel_lines(rng, depth: int = 10):
    return parallel_lines_network(depth).dual


@register_topology("choke_star")
def _build_choke_star(rng, k: int = 8, clique_sources: bool = True):
    return choke_star_network(k, clique_sources=clique_sources).dual


# ----------------------------------------------------------------------
# Built-in schedulers
# ----------------------------------------------------------------------
@register_scheduler("uniform")
def _build_uniform(
    rng,
    p_unreliable: float = 0.5,
    rcv_fraction: float = 0.9,
    ack_lag_fraction: float = 0.0,
    delay_floor: float = 0.0,
):
    return UniformDelayScheduler(
        rng,
        p_unreliable=p_unreliable,
        rcv_fraction=rcv_fraction,
        ack_lag_fraction=ack_lag_fraction,
        delay_floor=delay_floor,
    )


@register_scheduler("contention")
def _build_contention(
    rng,
    p_unreliable: float = 0.5,
    slot_fraction: float = 0.95,
    deadline_fraction: float = 0.9,
    unreliable_service_bias: float = 0.25,
):
    return ContentionScheduler(
        rng,
        p_unreliable=p_unreliable,
        slot_fraction=slot_fraction,
        deadline_fraction=deadline_fraction,
        unreliable_service_bias=unreliable_service_bias,
    )


@register_scheduler("worstcase")
def _build_worstcase(
    rng, p_unreliable: float = 0.5, rcv_fraction: float = 0.9
):
    return WorstCaseAckScheduler(
        rng, p_unreliable=p_unreliable, rcv_fraction=rcv_fraction
    )


@register_scheduler("choke")
def _build_choke(rng, rcv_fraction: float = 0.9):
    return ChokeAdversary(rcv_fraction=rcv_fraction)


@register_scheduler("greyzone_adversary")
def _build_greyzone_adversary(rng, depth: int = 10, inject_fraction: float = 0.25):
    # The Figure 2 frontier-starving adversary is bound to the
    # parallel-lines gadget; rebuilding the network here is deterministic,
    # so pairing this entry with the "parallel_lines" topology (same
    # depth) reproduces the Lemma 3.19/3.20 execution from a pure spec.
    return GreyZoneAdversary(
        parallel_lines_network(depth), inject_fraction=inject_fraction
    )


# ----------------------------------------------------------------------
# Built-in algorithms
# ----------------------------------------------------------------------
@register_algorithm("bmmb", substrates=("standard", "radio", "sinr"))
def _build_bmmb():
    return lambda _node: BMMBNode()


@register_algorithm("redundant_flooding", substrates=("standard",))
def _build_redundant_flooding(redundancy: int = 2):
    return lambda _node: RedundantFloodingNode(redundancy)


@register_algorithm(
    "flood_max", substrates=("protocol",), postcondition=elected_correctly
)
def _build_flood_max():
    return lambda _node: FloodMaxNode()


@register_algorithm(
    "flood_consensus", substrates=("protocol",), postcondition=consensus_reached
)
def _build_flood_consensus(value_prefix: str = "v"):
    return lambda node: FloodConsensusNode(f"{value_prefix}{node}")


@register_algorithm("fmmb", substrates=("rounds",))
def _build_fmmb(**config):
    return FMMBConfig(**config)


# ----------------------------------------------------------------------
# Built-in MAC layers
# ----------------------------------------------------------------------
register_mac("standard")(StandardMACLayer)
register_mac("enhanced")(EnhancedMACLayer)
register_mac("radio")(RadioMACLayer)
register_mac("sinr")(sinr_mac_layer)


# ----------------------------------------------------------------------
# Built-in workloads
# ----------------------------------------------------------------------
@register_workload("one_each")
def _build_one_each(dual, rng, k: int = 1, nodes=None, prefix: str = "m"):
    chosen = list(nodes) if nodes is not None else list(dual.nodes[:k])
    return MessageAssignment.one_each(chosen, prefix)


@register_workload("single_source")
def _build_single_source(
    dual, rng, count: int = 1, node=None, prefix: str = "m"
):
    source = dual.nodes[0] if node is None else node
    return MessageAssignment.single_source(source, count, prefix)


@register_workload("staggered")
def _build_staggered(
    dual, rng, count: int = 4, spacing: float = 5.0, node=None, prefix: str = "m"
):
    source = dual.nodes[0] if node is None else node
    return ArrivalSchedule.staggered(source, count, spacing, prefix)


@register_workload("poisson")
def _build_poisson(
    dual, rng, count: int = 4, mean_gap: float = 5.0, prefix: str = "m"
):
    return ArrivalSchedule.poisson(list(dual.nodes), count, mean_gap, rng, prefix)


@register_workload("parallel_lines_sources")
def _build_parallel_lines_sources(dual, rng):
    # The canonical Figure 2 instance: m0 at the head of line A, m1 at the
    # head of line B.  The depth is implied by the dual graph itself, so
    # this workload needs no parameters and cannot drift from the topology.
    return parallel_lines_network(dual.n // 2).assignment
