"""Shared CLI override grammar: scalars, ``key=value`` pairs, sweep axes.

The ``sweep`` and ``campaign`` subcommands historically carried two
near-identical hand parsers for their override flags (``--param
PATH=V1,V2,...`` and ``--set KEY=VALUE``) with subtly different error
text and exit behavior.  This module is the single grammar both now
share (``--fault`` and ``--check`` parameter lists reuse the same scalar
and assignment pieces):

* :func:`parse_scalar` — one value literal: int, then float, then bool,
  then bare string;
* :func:`parse_assignment` / :func:`parse_assignments` — ``key=value``
  pairs from a repeatable flag;
* :func:`parse_axis` / :func:`parse_axes` — ``path=v1,v2,...`` sweep
  axes from a repeatable flag.

Every parse failure raises :class:`~repro.errors.ExperimentError`, which
the CLI's ``main()`` reports as ``error: ...`` with exit status 2 — a
usage error reads the same no matter which flag produced it.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ExperimentError

__all__ = [
    "parse_scalar",
    "parse_assignment",
    "parse_assignments",
    "parse_axis",
    "parse_axes",
]


def parse_scalar(token: str) -> Any:
    """CLI value literal: int, then float, then bool, then bare string."""
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            pass
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    return token


def parse_assignment(
    item: str, *, flag: str = "--set", require_value: bool = False
) -> tuple[str, Any]:
    """One ``key=value`` pair; ``require_value`` rejects ``key=``."""
    key, sep, value = item.partition("=")
    if not sep or not key or (require_value and not value):
        raise ExperimentError(
            f"{flag} needs key=value syntax, got {item!r}"
        )
    return key, parse_scalar(value)


def parse_assignments(
    items: Iterable[str] | None,
    *,
    flag: str = "--set",
    require_value: bool = False,
) -> dict[str, Any]:
    """Fold a repeatable ``key=value`` flag into a dict (later wins)."""
    params: dict[str, Any] = {}
    for item in items or []:
        key, value = parse_assignment(
            item, flag=flag, require_value=require_value
        )
        params[key] = value
    return params


def parse_axis(
    item: str, *, flag: str = "--param"
) -> tuple[str, list[Any]]:
    """One ``path=v1,v2,...`` sweep axis (values parsed as scalars)."""
    path, sep, raw_values = item.partition("=")
    if not sep or not path or not raw_values:
        raise ExperimentError(
            f"{flag} needs path=v1,v2,... syntax, got {item!r}"
        )
    return path, [parse_scalar(token) for token in raw_values.split(",")]


def parse_axes(
    items: Iterable[str] | None, *, flag: str = "--param"
) -> dict[str, list[Any]]:
    """Fold a repeatable axis flag into ``{path: [values]}`` (later wins)."""
    axes: dict[str, list[Any]] = {}
    for item in items or []:
        path, values = parse_axis(item, flag=flag)
        axes[path] = values
    return axes
