"""The single entry point: ``run(spec) -> ExperimentResult``.

The dispatcher materializes a spec's components from the registries and
routes to the right execution engine:

* ``standard`` — :func:`repro.runtime.runner.run_standard` (event-driven
  abstract MAC, MMB workloads);
* ``protocol`` — :func:`repro.runtime.runner.run_protocol` (wakeup-driven
  protocols such as leader election and consensus, no arrivals);
* ``rounds`` — :func:`repro.core.fmmb.run_fmmb` (FMMB's lock-step round
  substrate on the enhanced model);
* ``radio`` — :class:`repro.radio.RadioMACLayer` (the slotted collision
  radio below the abstraction, with empirical ``Fack``/``Fprog``).

Stream derivation is fixed and documented: the root stream is
``RandomSource(spec.seed, "experiment")`` and components draw from the
children ``topology``, ``scheduler``, ``workload``, and ``radio``.  The
``rounds`` substrate passes ``spec.seed`` straight to ``run_fmmb`` so a
spec run reproduces the legacy entry point exactly.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.core.fmmb import run_fmmb
from repro.core.problem import ArrivalSchedule
from repro.errors import ExperimentError
from repro.experiments.registries import (
    ALGORITHMS,
    FAULTS,
    MACS,
    SCHEDULERS,
    TOPOLOGIES,
    WORKLOADS,
    AlgorithmEntry,
)
from repro.experiments.specs import ExperimentSpec
from repro.faults.engine import FaultEngine
from repro.faults.outcome import survivor_outcome
from repro.ids import MessageAssignment
from repro.runtime.runner import run_protocol, run_standard
from repro.runtime.validate import required_deliveries
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph

#: Name of the root stream every spec-driven execution derives from.
ROOT_STREAM = "experiment"
#: Child stream fault scenarios compile their plans from.
FAULT_STREAM = "faults"


@dataclass(frozen=True)
class ExperimentResult:
    """Substrate-independent summary of one spec execution.

    Equality ignores ``wall_time`` and ``raw``, so two runs of the same
    spec — in the same process or different ones — compare equal exactly
    when their observable outcomes match.

    Attributes:
        spec: The spec that produced this result.
        solved: Whether the execution met its success criterion (MMB
            solved; protocol postcondition at quiescence; radio MMB
            solved within the slot budget).
        completion_time: Solution time (substrate units: simulated time,
            or slots × slot duration for radio); ``inf`` when unsolved.
        broadcast_count: Number of ``bcast`` events (0 on the rounds
            substrate, which counts rounds in ``metrics`` instead).
        delivered_count: Number of recorded MMB deliveries.
        metrics: Substrate-specific scalar metrics (round counts,
            empirical bounds, event totals, ...).
        wall_time: Host seconds the run took (excluded from equality).
        raw: The legacy result object (``RunResult``, ``ProtocolRun``,
            ``FMMBResult``, or ``RadioRun``); ``None`` when summarized for
            a sweep.  Excluded from equality.
    """

    spec: ExperimentSpec
    solved: bool
    completion_time: float
    broadcast_count: int
    delivered_count: int
    metrics: dict[str, float] = field(default_factory=dict)
    wall_time: float = field(default=0.0, compare=False)
    raw: Any = field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        """The summary as a strict-JSON dict (``raw``/``wall_time`` dropped).

        Non-finite floats are encoded as strings (``"inf"``, ``"-inf"``,
        ``"nan"``) so the document survives strict JSON parsers and hashes
        identically everywhere.  ``from_dict(to_dict(r)) == r`` because
        equality already ignores the dropped fields.
        """
        return {
            "spec": self.spec.to_dict(),
            "solved": self.solved,
            "completion_time": encode_float(self.completion_time),
            "broadcast_count": self.broadcast_count,
            "delivered_count": self.delivered_count,
            "metrics": {
                key: encode_float(value)
                for key, value in sorted(self.metrics.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a summary written by :meth:`to_dict`."""
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            solved=bool(data["solved"]),
            completion_time=decode_float(data["completion_time"]),
            broadcast_count=int(data["broadcast_count"]),
            delivered_count=int(data["delivered_count"]),
            metrics={
                key: decode_float(value)
                for key, value in data.get("metrics", {}).items()
            },
        )


def encode_float(value: float) -> float | str:
    """A float as a strict-JSON value (non-finite become strings)."""
    number = float(value)
    return number if math.isfinite(number) else repr(number)


def decode_float(value: Any) -> float:
    """Invert :func:`encode_float` (accepts plain numbers too)."""
    return float(value)


@dataclass
class RadioRun:
    """Raw outcome of a radio-substrate execution.

    Attributes:
        layer: The radio MAC adapter after the run (instances, deliveries,
            empirical-bound extraction).
        slots: Radio slots consumed.
        automata: The per-node automata after the run.
    """

    layer: Any
    slots: int
    automata: dict[int, Any]


def root_stream(spec: ExperimentSpec) -> RandomSource:
    """The root random stream of a spec execution."""
    return RandomSource(spec.seed, ROOT_STREAM)


#: Process-local memo of built topologies.  Keyed by (kind, params, seed),
#: so a hit returns the *identical* (deterministically built, immutable)
#: network — sweep workers that run many points over the same topology
#: (explicit seeds, ``derive_seeds=False``) skip the rebuild per point.
_TOPOLOGY_CACHE: dict[str, DualGraph] = {}
_TOPOLOGY_CACHE_MAX = 8


def clear_topology_cache() -> None:
    """Drop the process-local topology memo.

    Benchmarks call this between timed repeats so every repeat pays the
    cold build (a cache hit would misattribute build cost to execution
    and make comparisons against cacheless revisions unfair).
    """
    _TOPOLOGY_CACHE.clear()


def materialize_topology(spec: ExperimentSpec) -> DualGraph:
    """Build the spec's network exactly as :func:`run` will.

    Useful for computing topology-dependent model constants (diameters,
    contention-provisioned ``Fack``) before constructing the final spec:
    the build is deterministic in ``spec.seed`` and ``spec.topology``, so
    the network returned here is the one the run will use.  Results are
    memoized per process (the build is pure and :class:`DualGraph` is
    immutable, so sharing the object is safe).
    """
    stream = root_stream(spec).child("topology")
    key = (
        f"{spec.topology.kind}|"
        f"{sorted(spec.topology.params.items())!r}|{stream.seed}"
    )
    cached = _TOPOLOGY_CACHE.get(key)
    if cached is not None:
        return cached
    build = TOPOLOGIES.get(spec.topology.kind)
    dual = build(stream, **spec.topology.params)
    if len(_TOPOLOGY_CACHE) >= _TOPOLOGY_CACHE_MAX:
        _TOPOLOGY_CACHE.clear()
    _TOPOLOGY_CACHE[key] = dual
    return dual


def materialize_workload(spec: ExperimentSpec, dual: DualGraph):
    """Build the spec's workload against an already-built network."""
    if spec.workload is None:
        raise ExperimentError(
            f"substrate {spec.substrate!r} needs a workload, got None"
        )
    build = WORKLOADS.get(spec.workload.kind)
    return build(dual, root_stream(spec).child("workload"), **spec.workload.params)


def materialize_fault_engine(
    spec: ExperimentSpec, dual: DualGraph
) -> FaultEngine | None:
    """Compile the spec's fault scenario into an engine (None when off).

    The plan draws only from the ``faults`` child stream, so enabling or
    tuning faults never perturbs the topology/scheduler/workload streams —
    and ``FaultSpec("none")`` builds nothing at all, keeping fault-free
    specs bit-identical to pre-fault behavior.
    """
    fault = spec.fault
    if fault is None or not fault.enabled:
        return None
    build = FAULTS.get(fault.kind)
    try:
        plan = build(dual, root_stream(spec).child(FAULT_STREAM), **fault.params)
    except TypeError as exc:
        # A param the builder doesn't take, or a value of the wrong type:
        # surface it as a spec-composition error, not a traceback.
        raise ExperimentError(
            f"fault scenario {fault.kind!r} rejected params "
            f"{sorted(fault.params)}: {exc}"
        ) from exc
    return FaultEngine(dual, plan)


def _fault_mmb_result(
    dual: DualGraph,
    workload,
    delivery_times,
    engine: FaultEngine,
) -> tuple[bool, float, dict[str, float]]:
    """Among-survivors verdict + fault metrics for an MMB execution."""
    arrival_times = (
        workload.arrival_times()
        if isinstance(workload, ArrivalSchedule)
        else None
    )
    outcome = survivor_outcome(
        dual,
        _static_assignment(workload),
        delivery_times,
        engine,
        arrival_times=arrival_times,
    )
    metrics = engine.metrics()
    metrics.update(outcome.metrics())
    return outcome.solved, outcome.completion_time, metrics


def _algorithm_entry(spec: ExperimentSpec) -> AlgorithmEntry:
    entry = ALGORITHMS.get(spec.algorithm.kind)
    if spec.substrate not in entry.substrates:
        raise ExperimentError(
            f"algorithm {spec.algorithm.kind!r} does not run on substrate "
            f"{spec.substrate!r} (supported: {', '.join(entry.substrates)})"
        )
    return entry


def _static_assignment(workload) -> MessageAssignment:
    if isinstance(workload, ArrivalSchedule):
        return workload.as_assignment()
    return workload


# ----------------------------------------------------------------------
# Substrate runners
# ----------------------------------------------------------------------
def _run_standard(spec: ExperimentSpec, keep_raw: bool) -> ExperimentResult:
    root = root_stream(spec)
    dual = materialize_topology(spec)
    entry = _algorithm_entry(spec)
    factory = entry.build(**spec.algorithm.params)
    scheduler = SCHEDULERS.get(spec.scheduler.kind)(
        root.child("scheduler"), **spec.scheduler.params
    )
    workload = materialize_workload(spec, dual)
    mac_class = MACS.get(spec.model.mac)
    engine = materialize_fault_engine(spec, dual)
    result = run_standard(
        dual,
        workload,
        factory,
        scheduler,
        spec.model.fack,
        spec.model.fprog,
        max_time=spec.model.max_time,
        max_events=spec.model.max_events,
        keep_instances=keep_raw,
        mac_class=mac_class,
        fault_engine=engine,
    )
    solved = result.solved
    completion = result.completion_time
    metrics = {
        "rcv_count": float(result.rcv_count),
        "sim_events": float(result.sim_events),
        "max_latency": result.max_latency,
    }
    if engine is not None:
        solved, completion, fault_metrics = _fault_mmb_result(
            dual, workload, result.deliveries.times, engine
        )
        metrics.update(fault_metrics)
    return ExperimentResult(
        spec=spec,
        solved=solved,
        completion_time=completion,
        broadcast_count=result.broadcast_count,
        delivered_count=len(result.deliveries.times),
        metrics=metrics,
        raw=result if keep_raw else None,
    )


def _run_protocol(spec: ExperimentSpec, keep_raw: bool) -> ExperimentResult:
    root = root_stream(spec)
    dual = materialize_topology(spec)
    entry = _algorithm_entry(spec)
    factory = entry.build(**spec.algorithm.params)
    scheduler = SCHEDULERS.get(spec.scheduler.kind)(
        root.child("scheduler"), **spec.scheduler.params
    )
    mac_class = MACS.get(spec.model.mac)
    engine = materialize_fault_engine(spec, dual)
    result = run_protocol(
        dual,
        factory,
        scheduler,
        spec.model.fack,
        spec.model.fprog,
        max_time=spec.model.max_time,
        max_events=spec.model.max_events,
        mac_class=mac_class,
        fault_engine=engine,
    )
    metrics = {
        "end_time": result.end_time,
        "quiesced": float(result.quiesced),
    }
    if engine is None:
        solved = result.quiesced and (
            entry.postcondition is None
            or entry.postcondition(dual, result.automata)
        )
        completion = result.end_time
    else:
        # Judge the postcondition among survivors: the engine's view
        # answers the same component queries as the static graph.
        view = engine.view()
        survivors = {v: result.automata[v] for v in view.nodes}
        solved = result.quiesced and (
            entry.postcondition is None
            or entry.postcondition(view, survivors)
        )
        # end_time includes draining the installed fault timeline; the
        # protocol's actual end is the last MAC/automaton event.
        completion = result.last_activity
        metrics["last_activity"] = result.last_activity
        metrics.update(engine.metrics())
    return ExperimentResult(
        spec=spec,
        solved=solved,
        completion_time=completion if solved else math.inf,
        broadcast_count=result.broadcast_count,
        delivered_count=0,
        metrics=metrics,
        raw=result if keep_raw else None,
    )


def _run_rounds(spec: ExperimentSpec, keep_raw: bool) -> ExperimentResult:
    dual = materialize_topology(spec)
    entry = _algorithm_entry(spec)
    config = entry.build(**spec.algorithm.params)
    workload = materialize_workload(spec, dual)
    if isinstance(workload, ArrivalSchedule):
        raise ExperimentError(
            "the rounds substrate takes time-0 assignments, not arrival "
            "schedules"
        )
    engine = materialize_fault_engine(spec, dual)
    result = run_fmmb(
        dual,
        workload,
        fprog=spec.model.fprog,
        seed=spec.seed,
        config=config,
        fault_engine=engine,
    )
    solved = result.solved
    completion = result.completion_time
    metrics = {
        "rounds_total": float(result.total_rounds),
        "rounds_mis": float(result.mis_result.rounds_used),
        "rounds_gather": float(result.gather_result.rounds_used),
        "rounds_spread": float(result.spread_result.rounds_used),
        "completion_rounds": float(result.completion_rounds),
        "mis_valid": float(result.mis_valid),
    }
    if engine is not None:
        # Replay any fault events past the last simulated round so the
        # final engine state (survivors, joins) is judged at the same
        # cutoff as the other substrates, which drain the timeline.
        engine.advance_to(math.inf)
        # A delivery in round r is available by the end of slot r.
        delivery_times = {
            key: (rnd + 1) * spec.model.fprog
            for key, rnd in result.delivery_rounds.items()
        }
        solved, completion, fault_metrics = _fault_mmb_result(
            dual, workload, delivery_times, engine
        )
        metrics.update(fault_metrics)
    return ExperimentResult(
        spec=spec,
        solved=solved,
        completion_time=completion,
        broadcast_count=0,
        delivered_count=len(result.delivery_rounds),
        metrics=metrics,
        raw=result if keep_raw else None,
    )


def _run_radio(spec: ExperimentSpec, keep_raw: bool) -> ExperimentResult:
    root = root_stream(spec)
    dual = materialize_topology(spec)
    entry = _algorithm_entry(spec)
    factory = entry.build(**spec.algorithm.params)
    params = dict(spec.model.params)
    max_slots = int(params.pop("max_slots", 500_000))
    engine = materialize_fault_engine(spec, dual)
    if engine is not None:
        params["fault_engine"] = engine
    layer = MACS.get("radio")(dual, root.child("radio"), **params)
    automata = {node: factory(node) for node in dual.nodes}
    for node, automaton in automata.items():
        layer.register(node, automaton)
    workload = materialize_workload(spec, dual)
    if isinstance(workload, ArrivalSchedule):
        for arrival in workload.sorted_by_time():
            layer.inject_arrival(arrival.node, arrival.message, time=arrival.time)
    else:
        for node, messages in sorted(workload.messages.items()):
            for message in messages:
                layer.inject_arrival(node, message)
    slots = layer.run(max_slots=max_slots)
    static = _static_assignment(workload)
    metrics: dict[str, float] = {}
    if engine is not None:
        solved, completion, metrics = _fault_mmb_result(
            dual, workload, layer.deliveries, engine
        )
    else:
        required = required_deliveries(dual, static)
        solved = True
        completion = 0.0
        for mid, nodes in required.items():
            for node in nodes:
                delivered_at = layer.deliveries.get((node, mid))
                if delivered_at is None:
                    solved = False
                    completion = math.inf
                    break
                completion = max(completion, delivered_at)
            if not solved:
                break
    bounds = layer.empirical_bounds()
    metrics.update(
        {
            "slots": float(slots),
            "empirical_fack": bounds.fack,
            "empirical_fprog": bounds.fprog,
            "delivery_success_rate": bounds.delivery_success_rate,
        }
    )
    return ExperimentResult(
        spec=spec,
        solved=solved,
        completion_time=completion,
        broadcast_count=len(layer.instances),
        delivered_count=len(layer.deliveries),
        metrics=metrics,
        raw=RadioRun(layer=layer, slots=slots, automata=automata)
        if keep_raw
        else None,
    )


_SUBSTRATE_RUNNERS: dict[str, Callable[[ExperimentSpec, bool], ExperimentResult]] = {
    "standard": _run_standard,
    "protocol": _run_protocol,
    "rounds": _run_rounds,
    "radio": _run_radio,
}


def run(spec: ExperimentSpec, keep_raw: bool = True) -> ExperimentResult:
    """Execute one spec and summarize the outcome.

    Args:
        spec: The experiment description.
        keep_raw: Retain the substrate's native result object in
            ``result.raw`` (instance logs, automata, delivery tables).
            Disable for sweeps — summaries stay small, picklable, and
            comparable across processes.

    Returns:
        The :class:`ExperimentResult`.
    """
    try:
        runner = _SUBSTRATE_RUNNERS[spec.substrate]
    except KeyError:
        raise ExperimentError(
            f"unknown substrate {spec.substrate!r}; choose from "
            f"{', '.join(sorted(_SUBSTRATE_RUNNERS))}"
        ) from None
    started = _time.perf_counter()
    result = runner(spec, keep_raw)
    return replace(result, wall_time=_time.perf_counter() - started)
