"""The single entry point: ``run(spec) -> ExperimentResult``.

``run`` contains no substrate-specific dispatch.  It resolves the spec's
substrate from the :data:`~repro.experiments.substrates.SUBSTRATES`
registry, enforces the substrate's declared capabilities (faults,
arrivals), builds a shared
:class:`~repro.experiments.substrates.ExecutionContext` (seed-derived
streams, topology, workload, fault engine), and hands the context to the
engine:

    substrate = SUBSTRATES.get(spec.substrate)
    outcome = substrate.execute(ExecutionContext(spec, keep_raw))

Everything engine-specific — the five built-in substrates ``standard``,
``protocol``, ``rounds``, ``radio``, and ``sinr``, plus any third-party
``@register_substrate`` entry — lives in
:mod:`repro.experiments.substrates`.  Stream derivation is fixed and
documented there: the root stream is ``RandomSource(spec.seed,
"experiment")`` and components draw from the children ``topology``,
``scheduler``, ``workload``, ``radio``, and ``faults``.

This module keeps the substrate-independent result type
(:class:`ExperimentResult`) and re-exports the materialization helpers
(``materialize_topology`` and friends) that predate the substrate API.
"""

from __future__ import annotations

import math
import sys
import time as _time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ExperimentError
from repro.experiments.specs import ExperimentSpec
from repro.experiments.substrates import (
    FAULT_STREAM,
    ROOT_STREAM,
    SUBSTRATES,
    ExecutionContext,
    RadioRun,
    check_capabilities,
    check_workload_capability,
    clear_topology_cache,
    materialize_fault_engine,
    materialize_topology,
    materialize_workload,
    root_stream,
)
from repro.runtime.journal import write_journal
from repro.runtime.observations import Observation

#: Names in ``__all__`` are re-exported on purpose: the pre-substrate
#: dispatcher lived here, and downstream code (CLI, perf harness, golden
#: recorder) still imports these helpers from this module.
__all__ = [
    "ExperimentResult",
    "RadioRun",
    "RunOptions",
    "run",
    "encode_float",
    "decode_float",
    "ROOT_STREAM",
    "FAULT_STREAM",
    "SUBSTRATES",
    "ExecutionContext",
    "check_capabilities",
    "check_workload_capability",
    "clear_topology_cache",
    "materialize_fault_engine",
    "materialize_topology",
    "materialize_workload",
    "root_stream",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Substrate-independent summary of one spec execution.

    Equality ignores ``wall_time``, ``raw``, and ``observations``, so two
    runs of the same spec — in the same process or different ones —
    compare equal exactly when their observable outcomes match.

    Attributes:
        spec: The spec that produced this result.
        solved: Whether the execution met its success criterion (MMB
            solved; protocol postcondition at quiescence; radio-family MMB
            solved within the slot budget).
        completion_time: Solution time (substrate units: simulated time,
            or slots × slot duration for the radio family); ``inf`` when
            unsolved.
        broadcast_count: Number of ``bcast`` events (0 on the rounds
            substrate, which counts rounds in ``metrics`` instead).
        delivered_count: Number of recorded MMB deliveries.
        metrics: Substrate-specific scalar metrics (round counts,
            empirical bounds, event totals, ...) — exactly the gauges the
            substrate registered on its execution probe.
        series: Named non-scalar curves — ``(x, y)`` point tuples the
            probe registered (per-window latency/throughput on
            open-arrival runs).  Deterministic, serialized, and part of
            equality like ``metrics``.
        wall_time: Host seconds the run took (excluded from equality).
        raw: The substrate's native result object (``RunResult``,
            ``ProtocolRun``, ``FMMBResult``, or ``RadioRun``); ``None``
            when summarized for a sweep.  Excluded from equality.
        observations: The typed observation stream (see
            :mod:`repro.runtime.observations`), with run-level
            ``profile`` markers appended by ``run``; empty on
            ``keep_raw=False`` runs.  Excluded from equality and
            serialization (persist it with ``run(spec, journal=...)``).
    """

    spec: ExperimentSpec
    solved: bool
    completion_time: float
    broadcast_count: int
    delivered_count: int
    metrics: dict[str, float] = field(default_factory=dict)
    series: dict[str, tuple[tuple[float, float], ...]] = field(
        default_factory=dict
    )
    wall_time: float = field(default=0.0, compare=False)
    raw: Any = field(default=None, compare=False, repr=False)
    observations: tuple[Observation, ...] = field(
        default=(), compare=False, repr=False
    )

    def to_dict(self) -> dict[str, Any]:
        """The summary as a strict-JSON dict (``raw``/``wall_time``/
        ``observations`` dropped).

        Non-finite floats are encoded as strings (``"inf"``, ``"-inf"``,
        ``"nan"``) so the document survives strict JSON parsers and hashes
        identically everywhere.  ``from_dict(to_dict(r)) == r`` because
        equality already ignores the dropped fields.
        """
        return {
            "spec": self.spec.to_dict(),
            "solved": self.solved,
            "completion_time": encode_float(self.completion_time),
            "broadcast_count": self.broadcast_count,
            "delivered_count": self.delivered_count,
            "metrics": {
                key: encode_float(value)
                for key, value in sorted(self.metrics.items())
            },
            "series": {
                name: [
                    [encode_float(x), encode_float(y)] for x, y in points
                ]
                for name, points in sorted(self.series.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a summary written by :meth:`to_dict`."""
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            solved=bool(data["solved"]),
            completion_time=decode_float(data["completion_time"]),
            broadcast_count=int(data["broadcast_count"]),
            delivered_count=int(data["delivered_count"]),
            metrics={
                key: decode_float(value)
                for key, value in data.get("metrics", {}).items()
            },
            series={
                name: tuple(
                    (decode_float(x), decode_float(y)) for x, y in points
                )
                for name, points in data.get("series", {}).items()
            },
        )


def encode_float(value: float) -> float | str:
    """A float as a strict-JSON value (non-finite become strings)."""
    number = float(value)
    return number if math.isfinite(number) else repr(number)


def decode_float(value: Any) -> float:
    """Invert :func:`encode_float` (accepts plain numbers too)."""
    return float(value)


def _profile_observations(
    ctx: ExecutionContext,
    outcome,
    setup_seconds: float,
    execute_seconds: float,
    heap_blocks_delta: int,
) -> tuple[Observation, ...]:
    """Run-level profiling as ``profile`` observations.

    One record per gauge, stamped at the stream's last event time (with
    ``profile`` ordered last among kinds, appending keeps the stream
    chronological).  These carry wall-clock and allocator numbers, so
    they are machine-dependent by design — journal writers exclude them
    by default and they never enter ``metrics`` or result equality.
    """
    end = max((o.time for o in outcome.observations), default=0.0)
    events = 0.0
    for key in ("sim_events", "slots"):
        if key in outcome.metrics:
            events = outcome.metrics[key]
            break
    else:
        events = float(len(outcome.observations))
    gauges = {
        "wall_setup_s": setup_seconds,
        "wall_execute_s": execute_seconds,
        "events_per_s": (
            events / execute_seconds if execute_seconds > 0 else 0.0
        ),
        "heap_blocks_delta": float(heap_blocks_delta),
        "rng_draws": float(ctx.root.draws),
    }
    return tuple(
        Observation(time=end, kind="profile", key=key, value=value)
        for key, value in sorted(gauges.items())
    )


@dataclass(frozen=True)
class RunOptions:
    """How one execution is captured — orthogonal to *what* runs.

    The spec describes the experiment; ``RunOptions`` describes what the
    caller wants back from it (raw handles, windowed folding, a persisted
    journal).  Options never influence the execution's random streams or
    outcome, so two runs of the same spec under different options compare
    equal as :class:`ExperimentResult` values.

    Combination rules are validated at construction, not at ``run`` time,
    so an invalid bundle fails where it is written:

    * ``journal`` needs the raw stream and cannot be combined with
      ``window`` (which folds the stream away);
    * ``max_windows`` requires ``window``;
    * ``window`` implies ``keep_raw=False`` — bounded memory is the point
      of windowing, so the flag is normalized here rather than silently
      at run time.

    Attributes:
        keep_raw: Retain the substrate's native result object in
            ``result.raw`` and the typed observation stream in
            ``result.observations``.  Disable for sweeps — summaries stay
            small, picklable, and comparable across processes.
        window: Fold observations into time-window aggregates of this
            width instead of retaining the raw stream (long-horizon
            service runs); surfaces the ``obs_*`` window gauges in
            ``result.metrics``.
        max_windows: Bound on retained window aggregates (oldest evicted
            first); requires ``window``.
        journal: Write the observation stream to this path as a
            deterministic journal (see :mod:`repro.runtime.journal`).
            The stream is captured for the journal even when
            ``keep_raw=False`` (the returned summary stays stripped).
    """

    keep_raw: bool = True
    window: float | None = None
    max_windows: int | None = None
    journal: str | Path | None = None

    def __post_init__(self) -> None:
        if self.window is not None:
            if self.journal is not None:
                raise ExperimentError(
                    "journal capture needs the raw observation stream and "
                    "cannot be combined with windowed folding (window=...)"
                )
            if self.keep_raw:
                object.__setattr__(self, "keep_raw", False)
        elif self.max_windows is not None:
            raise ExperimentError(
                "max_windows requires a window width (window=...)"
            )

    @classmethod
    def summary(cls) -> "RunOptions":
        """The sweep default: small, picklable summaries (no raw/stream)."""
        return cls(keep_raw=False)

    @classmethod
    def observed(cls) -> "RunOptions":
        """Keep the typed observation stream (journaling sweeps)."""
        return cls(keep_raw=True)


#: Sentinel distinguishing "kwarg not passed" from an explicit value in
#: the deprecated ``run(spec, keep_raw=..., ...)`` compatibility surface.
_LEGACY_UNSET: Any = object()


def _resolve_options(
    options: RunOptions | bool | None,
    keep_raw: Any,
    window: Any,
    max_windows: Any,
    journal: Any,
) -> RunOptions:
    """Fold the deprecated per-kwarg surface into a :class:`RunOptions`."""
    if isinstance(options, bool):
        # Historical positional form ``run(spec, False)`` — the second
        # argument used to be ``keep_raw``.
        if keep_raw is not _LEGACY_UNSET:
            raise ExperimentError(
                "run() got keep_raw twice (positionally and by keyword)"
            )
        options, keep_raw = None, options
    legacy = {
        name: value
        for name, value in (
            ("keep_raw", keep_raw),
            ("window", window),
            ("max_windows", max_windows),
            ("journal", journal),
        )
        if value is not _LEGACY_UNSET
    }
    if not legacy:
        return options if options is not None else RunOptions()
    if options is not None:
        raise ExperimentError(
            "pass run options either as RunOptions(...) or as the legacy "
            f"keyword arguments, not both (got options and "
            f"{', '.join(sorted(legacy))})"
        )
    warnings.warn(
        "run(spec, keep_raw=..., window=..., max_windows=..., journal=...) "
        "is deprecated; pass run(spec, RunOptions(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return RunOptions(**legacy)


def run(
    spec: ExperimentSpec,
    options: RunOptions | bool | None = None,
    *,
    keep_raw: bool = _LEGACY_UNSET,
    window: float | None = _LEGACY_UNSET,
    max_windows: int | None = _LEGACY_UNSET,
    journal: str | Path | None = _LEGACY_UNSET,
) -> ExperimentResult:
    """Execute one spec on its substrate and summarize the outcome.

    Args:
        spec: The experiment description.
        options: Capture/persistence options (see :class:`RunOptions`);
            ``None`` means the defaults.  The individual keyword
            arguments are the deprecated pre-``RunOptions`` surface —
            still honored (with a :class:`DeprecationWarning`), but they
            cannot be combined with ``options``.

    Returns:
        The :class:`ExperimentResult`.

    Raises:
        ExperimentError: Unknown substrate, a capability mismatch (e.g. a
            fault scenario on a substrate with ``supports_faults=False``),
            or an invalid option bundle.
    """
    opts = _resolve_options(options, keep_raw, window, max_windows, journal)
    substrate = SUBSTRATES.get(spec.substrate)
    check_capabilities(spec, substrate)
    started = _time.perf_counter()
    record_stream = opts.keep_raw or opts.journal is not None
    ctx = ExecutionContext(
        spec,
        keep_raw=record_stream,
        window=opts.window,
        max_windows=opts.max_windows,
    )
    check_workload_capability(ctx, substrate)
    count_blocks = getattr(sys, "getallocatedblocks", lambda: 0)
    setup_seconds = _time.perf_counter() - started
    blocks_before = count_blocks()
    outcome = substrate.execute(ctx)
    execute_seconds = _time.perf_counter() - started - setup_seconds
    observations = outcome.observations
    if observations:
        observations += _profile_observations(
            ctx,
            outcome,
            setup_seconds,
            execute_seconds,
            count_blocks() - blocks_before,
        )
    if opts.journal is not None:
        write_journal(
            opts.journal, observations, meta={"spec": spec.to_dict()}
        )
    return ExperimentResult(
        spec=spec,
        solved=outcome.solved,
        completion_time=outcome.completion_time,
        broadcast_count=outcome.broadcast_count,
        delivered_count=outcome.delivered_count,
        metrics=outcome.metrics,
        series=outcome.series,
        wall_time=_time.perf_counter() - started,
        raw=outcome.raw if opts.keep_raw else None,
        observations=observations if opts.keep_raw else (),
    )
