"""Declarative experiments: specs, registries, one runner, parallel sweeps.

This subsystem is the single way to describe and run executions:

* :mod:`~repro.experiments.specs` — frozen, JSON-round-trippable
  descriptions (:class:`ExperimentSpec` and its component specs);
* :mod:`~repro.experiments.registries` — string-keyed registries of
  topologies, schedulers, algorithms, MAC layers, and workloads, populated
  with everything the package ships and open to extension via the
  ``@register_*`` decorators;
* :mod:`~repro.experiments.runner` — ``run(spec)``, dispatching to the
  standard, protocol, FMMB-round, and radio substrates;
* :mod:`~repro.experiments.sweep` — spec grids with derived per-point
  seeds and a process-parallel ``run_sweep``.

Example::

    from repro.experiments import ExperimentSpec, TopologySpec, run

    spec = ExperimentSpec(
        topology=TopologySpec("random_geometric", {"n": 40, "side": 3.0}),
        seed=7,
    )
    result = run(spec)
"""

from repro.experiments.registries import (
    ALGORITHMS,
    FAULTS,
    MACS,
    SCHEDULERS,
    TOPOLOGIES,
    WORKLOADS,
    AlgorithmEntry,
    Registry,
    list_algorithms,
    list_faults,
    list_macs,
    list_schedulers,
    list_topologies,
    list_workloads,
    register_algorithm,
    register_fault,
    register_mac,
    register_scheduler,
    register_topology,
    register_workload,
)
from repro.experiments.runner import (
    ExperimentResult,
    RadioRun,
    materialize_fault_engine,
    materialize_topology,
    materialize_workload,
    run,
)
from repro.experiments.specs import (
    SUBSTRATES,
    AlgorithmSpec,
    ExperimentSpec,
    FaultSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.experiments.sweep import Sweep, SweepResult, run_sweep

__all__ = [
    # specs
    "ExperimentSpec",
    "TopologySpec",
    "SchedulerSpec",
    "AlgorithmSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ModelSpec",
    "SUBSTRATES",
    # registries
    "Registry",
    "AlgorithmEntry",
    "TOPOLOGIES",
    "SCHEDULERS",
    "ALGORITHMS",
    "MACS",
    "WORKLOADS",
    "FAULTS",
    "register_topology",
    "register_scheduler",
    "register_algorithm",
    "register_mac",
    "register_workload",
    "register_fault",
    "list_topologies",
    "list_schedulers",
    "list_algorithms",
    "list_macs",
    "list_workloads",
    "list_faults",
    # runner
    "run",
    "ExperimentResult",
    "RadioRun",
    "materialize_fault_engine",
    "materialize_topology",
    "materialize_workload",
    # sweep
    "Sweep",
    "SweepResult",
    "run_sweep",
]
