"""Declarative experiments: specs, registries, substrates, parallel sweeps.

This subsystem is the single way to describe and run executions:

* :mod:`~repro.experiments.specs` — frozen, JSON-round-trippable
  descriptions (:class:`ExperimentSpec` and its component specs);
* :mod:`~repro.experiments.registries` — string-keyed registries of
  topologies, schedulers, algorithms, MAC layers, workloads, and fault
  scenarios, populated with everything the package ships and open to
  extension via the ``@register_*`` decorators;
* :mod:`~repro.experiments.substrates` — the pluggable execution-engine
  layer: the :class:`Substrate` protocol (``prepare``/``execute`` plus
  declared capabilities), the :data:`SUBSTRATES` registry with
  ``@register_substrate``, the shared :class:`ExecutionContext`
  (seed-derived streams, topology/workload/fault materialization), and
  the five built-in engines ``standard``, ``protocol``, ``rounds``,
  ``radio``, and ``sinr``;
* :mod:`~repro.experiments.runner` — ``run(spec)``, a thin generic loop
  over the substrate registry that summarizes every execution as an
  :class:`ExperimentResult` carrying scalar metrics and the typed
  observation stream (:mod:`repro.runtime.observations`);
* :mod:`~repro.experiments.sweep` — spec grids with derived per-point
  seeds and a process-parallel ``run_sweep`` (``"substrate"`` is a
  sweepable axis like any other).

Example::

    from repro.experiments import ExperimentSpec, TopologySpec, run

    spec = ExperimentSpec(
        topology=TopologySpec("random_geometric", {"n": 40, "side": 3.0}),
        substrate="sinr",
        seed=7,
    )
    result = run(spec)
"""

from repro.experiments.registries import (
    ALGORITHMS,
    FAULTS,
    MACS,
    SCHEDULERS,
    TOPOLOGIES,
    WORKLOADS,
    AlgorithmEntry,
    Registry,
    list_algorithms,
    list_faults,
    list_macs,
    list_schedulers,
    list_topologies,
    list_workloads,
    register_algorithm,
    register_fault,
    register_mac,
    register_scheduler,
    register_topology,
    register_workload,
)
from repro.experiments.runner import (
    ExperimentResult,
    RunOptions,
    run,
)
from repro.experiments.specs import (
    BUILTIN_SUBSTRATES,
    AlgorithmSpec,
    ExperimentSpec,
    FaultSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.experiments.substrates import (
    SUBSTRATES,
    Execution,
    ExecutionContext,
    Outcome,
    RadioRun,
    Substrate,
    SubstrateBase,
    get_substrate,
    list_substrates,
    materialize_fault_engine,
    materialize_topology,
    materialize_workload,
    register_substrate,
    smoke_spec,
    substrate_smoke,
)
from repro.experiments.sweep import Sweep, SweepResult, run_sweep
from repro.runtime.observations import Observation, Probe

# Imported for its registration side effects: repro.traffic registers the
# arrival processes and the "open_arrivals" workload kind, so any importer
# of this package (CLI, sweep workers, spec unpickling) sees them.
import repro.traffic  # noqa: E402  (must follow the registries above)

__all__ = [
    # specs
    "ExperimentSpec",
    "TopologySpec",
    "SchedulerSpec",
    "AlgorithmSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ModelSpec",
    "BUILTIN_SUBSTRATES",
    # registries
    "Registry",
    "AlgorithmEntry",
    "TOPOLOGIES",
    "SCHEDULERS",
    "ALGORITHMS",
    "MACS",
    "WORKLOADS",
    "FAULTS",
    "SUBSTRATES",
    "register_topology",
    "register_scheduler",
    "register_algorithm",
    "register_mac",
    "register_workload",
    "register_fault",
    "register_substrate",
    "list_topologies",
    "list_schedulers",
    "list_algorithms",
    "list_macs",
    "list_workloads",
    "list_faults",
    "list_substrates",
    # substrates
    "Substrate",
    "SubstrateBase",
    "ExecutionContext",
    "Execution",
    "Outcome",
    "get_substrate",
    "smoke_spec",
    "substrate_smoke",
    "materialize_fault_engine",
    "materialize_topology",
    "materialize_workload",
    # runner
    "run",
    "RunOptions",
    "ExperimentResult",
    "RadioRun",
    # observations
    "Observation",
    "Probe",
    # sweep
    "Sweep",
    "SweepResult",
    "run_sweep",
]
