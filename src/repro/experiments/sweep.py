"""Parameter sweeps over experiment specs, serial or process-parallel.

:meth:`Sweep.grid` expands a base spec over axes addressed by dotted paths
(``"topology.n"``, ``"model.fack"``, ``"scheduler.p_unreliable"``,
``"seed"``), deriving an independent per-point seed from the base seed so
replicated points are statistically independent yet exactly reproducible.
:func:`run_sweep` executes a spec list — serially, or fanned out over a
``ProcessPoolExecutor`` — and aggregates the summaries in a
:class:`SweepResult` (rates, summary statistics, percentiles).

Because specs are frozen value objects and results summarize to plain
scalars, a parallel sweep returns *exactly* the results of a serial one,
in the same order; only the wall clock differs.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.analysis.stats import Summary, percentile, summarize
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult, RunOptions, run
from repro.experiments.specs import ExperimentSpec, ModelSpec, _KindSpec
from repro.sim.rng import derive_seed

#: Percentiles reported by default in sweep summaries.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


def _with_path(spec: ExperimentSpec, path: str, value: Any) -> ExperimentSpec:
    """Return a copy of ``spec`` with the dotted ``path`` set to ``value``.

    Top-level fields (``seed``, ``substrate``, ``name``) are addressed
    directly.  Within a kind-spec component, ``kind`` is replaced and any
    other tail is a params key (``topology.n``, ``scheduler.p_unreliable``
    — params are the open surface there).  :class:`ModelSpec` has a closed
    field set, so unknown tails are rejected instead of silently landing
    in params; substrate extras are addressed explicitly as
    ``model.params.<key>`` (e.g. ``model.params.max_slots``).
    """
    head, _, rest = path.partition(".")
    field_names = {f.name for f in dataclasses.fields(spec)}
    if head not in field_names:
        raise ExperimentError(
            f"sweep axis {path!r} does not address an ExperimentSpec field"
        )
    if not rest:
        return dataclasses.replace(spec, **{head: value})
    sub = getattr(spec, head)
    if sub is None:
        raise ExperimentError(
            f"sweep axis {path!r} addresses {head!r}, which is None"
        )
    if isinstance(sub, (ModelSpec, _KindSpec)):
        sub_fields = {f.name for f in dataclasses.fields(sub)}
        params_key = rest[len("params."):] if rest.startswith("params.") else None
        if rest in sub_fields and rest != "params":
            new_sub = dataclasses.replace(sub, **{rest: value})
            if rest == "kind" and value != sub.kind:
                # Params are kind-specific: swapping the kind must not
                # carry the old kind's params into the new builder.  Kind
                # axes are applied before sibling param axes, so a grid
                # pairing workload.kind with workload.rate still lands
                # the rate on the new kind.
                new_sub = dataclasses.replace(new_sub, params={})
        elif params_key:
            params = dict(sub.params)
            params[params_key] = value
            new_sub = dataclasses.replace(sub, params=params)
        elif isinstance(sub, ModelSpec):
            raise ExperimentError(
                f"sweep axis {path!r} is not a ModelSpec field "
                f"({', '.join(sorted(sub_fields - {'params'}))}); use "
                f"model.params.<key> for substrate extras"
            )
        else:
            params = dict(sub.params)
            params[rest] = value
            new_sub = dataclasses.replace(sub, params=params)
        return dataclasses.replace(spec, **{head: new_sub})
    raise ExperimentError(f"sweep axis {path!r} addresses a non-spec field")


def with_path(spec: ExperimentSpec, path: str, value: Any) -> ExperimentSpec:
    """Public alias of :func:`_with_path` (campaign expansion uses it)."""
    return _with_path(spec, path, value)


def path_value(spec: ExperimentSpec, path: str) -> Any:
    """Read the value a sweep axis ``path`` addresses on ``spec``.

    The inverse of :func:`with_path`: top-level fields directly, component
    fields by name, and params keys otherwise (``model.params.<key>`` for
    substrate extras).  Raises :class:`ExperimentError` for paths that
    address nothing, so figure directives fail loudly instead of plotting
    blanks.
    """
    head, _, rest = path.partition(".")
    field_names = {f.name for f in dataclasses.fields(spec)}
    if head not in field_names:
        raise ExperimentError(
            f"path {path!r} does not address an ExperimentSpec field"
        )
    sub = getattr(spec, head)
    if not rest:
        return sub
    if sub is None:
        raise ExperimentError(f"path {path!r} addresses {head!r}, which is None")
    if isinstance(sub, (ModelSpec, _KindSpec)):
        sub_fields = {f.name for f in dataclasses.fields(sub)}
        if rest in sub_fields and rest != "params":
            return getattr(sub, rest)
        if rest.startswith("params."):
            key = rest[len("params.") :]
            if key in sub.params:
                return sub.params[key]
        elif not isinstance(sub, ModelSpec) and rest in sub.params:
            return sub.params[rest]
        raise ExperimentError(f"path {path!r} addresses nothing on {head!r}")
    raise ExperimentError(f"path {path!r} addresses a non-spec field")


class Sweep:
    """Spec-grid builders."""

    @staticmethod
    def grid(
        base: ExperimentSpec,
        axes: Mapping[str, Sequence[Any]] | None = None,
        repeats: int = 1,
        derive_seeds: bool = True,
    ) -> list[ExperimentSpec]:
        """The cartesian product of ``axes`` applied to ``base``.

        Args:
            base: The spec every grid point starts from.
            axes: Dotted path → values (see :func:`_with_path`).  ``None``
                or empty sweeps nothing but still honors ``repeats``.
            repeats: Independent replications of every grid point.
            derive_seeds: Give each produced spec
                ``derive_seed(base.seed, point-label)`` so points are
                independent streams.  Skipped when the caller sweeps
                ``seed`` explicitly; with ``derive_seeds=False`` every
                point inherits its swept/base seed verbatim.

        Returns:
            Specs in deterministic (sorted-axis, row-major) order.
        """
        if repeats < 1:
            raise ExperimentError(f"repeats must be >= 1, got {repeats}")
        axes = dict(axes or {})
        if "seed" in axes and repeats > 1:
            raise ExperimentError(
                "sweeping an explicit 'seed' axis with repeats > 1 would "
                "duplicate identical runs; drop the axis or set repeats=1"
            )
        keys = sorted(axes)
        for key, values in axes.items():
            if not values:
                raise ExperimentError(f"sweep axis {key!r} has no values")
        specs: list[ExperimentSpec] = []
        for values in itertools.product(*(axes[key] for key in keys)):
            point = base
            # Apply *.kind axes before sibling param axes: a grid pairing
            # "fault.kind" with "fault.fraction" must set the kind first,
            # or the intermediate spec (e.g. kind "none" + params) would
            # fail component validation.  Labels and derived seeds still
            # use the sorted-axis order, so existing sweeps are unchanged.
            ordered = sorted(
                zip(keys, values),
                key=lambda kv: (kv[0].rpartition(".")[2] != "kind", kv[0]),
            )
            for key, value in ordered:
                point = _with_path(point, key, value)
            label = ",".join(f"{k}={v}" for k, v in zip(keys, values))
            for rep in range(repeats):
                tag = f"{label}#{rep}" if label else f"#{rep}"
                produced = dataclasses.replace(
                    point, name=f"{base.name}[{tag}]"
                )
                if derive_seeds and "seed" not in axes:
                    produced = dataclasses.replace(
                        produced, seed=derive_seed(base.seed, f"sweep/{tag}")
                    )
                specs.append(produced)
        return specs

    @staticmethod
    def seeds(base: ExperimentSpec, count: int) -> list[ExperimentSpec]:
        """``count`` independent replications of one spec."""
        return Sweep.grid(base, axes=None, repeats=count)


def _run_with_options(
    spec: ExperimentSpec, options: RunOptions
) -> ExperimentResult:
    """One sweep point under ``options``, sweep-safe.

    The substrate's ``raw`` handle is always dropped (engine objects are
    neither picklable nor comparable across processes); the typed
    :class:`Observation` tuple — plain frozen records — travels back to
    the parent when ``options.keep_raw`` asks for it, which is what
    journaling campaign sweeps persist.
    """
    result = run(spec, options)
    if result.raw is not None:
        result = dataclasses.replace(result, raw=None)
    return result


def _run_summary(spec: ExperimentSpec) -> ExperimentResult:
    """Top-level worker function (must be picklable for process pools)."""
    return _run_with_options(spec, RunOptions.summary())


def _run_observed(spec: ExperimentSpec) -> ExperimentResult:
    """Summary worker that keeps the observation stream."""
    return _run_with_options(spec, RunOptions.observed())


def _run_indexed(
    job: tuple[int, ExperimentSpec, RunOptions],
) -> tuple[int, ExperimentResult]:
    """Chunk-friendly worker: tags each summary with its submission index.

    ``imap_unordered`` returns results in completion order; the index lets
    the parent restore submission order exactly, so a parallel sweep stays
    byte-identical to a serial one.
    """
    index, spec, options = job
    return index, _run_with_options(spec, options)


def _run_indexed_observed(
    job: tuple[int, ExperimentSpec],
) -> tuple[int, ExperimentResult]:
    """Indexed variant of :func:`_run_observed` (parallel journaling)."""
    index, spec = job
    return index, _run_observed(spec)


def default_chunksize(jobs: int, workers: int) -> int:
    """A sensible ``imap_unordered`` chunk size.

    Large enough to amortize pickling/IPC per task (each worker receives
    whole chunks of specs at once and deserializes them together), small
    enough to keep ~4 chunks per worker in flight for load balancing.
    """
    if workers <= 0:
        return 1
    return max(1, jobs // (workers * 4))


@dataclass(frozen=True)
class SweepResult:
    """Aggregated outcome of a sweep, in submission order."""

    results: tuple[ExperimentResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> ExperimentResult:
        return self.results[index]

    @property
    def solved_rate(self) -> float:
        """Fraction of runs that solved (0.0 for an empty sweep)."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.solved) / len(self.results)

    def completion_times(self, solved_only: bool = True) -> list[float]:
        """Completion times (unsolved runs excluded by default)."""
        return [
            r.completion_time
            for r in self.results
            if r.solved or not solved_only
        ]

    def completion_summary(self) -> Summary:
        """Mean/spread summary of solved completion times."""
        return summarize(self.completion_times())

    def completion_percentiles(
        self, ps: Iterable[float] = DEFAULT_PERCENTILES
    ) -> dict[float, float]:
        """Completion-time percentiles over the solved runs."""
        times = self.completion_times()
        return {p: percentile(times, p) for p in ps}

    def metric(self, key: str) -> list[float]:
        """One scalar metric across all runs (missing entries skipped)."""
        return [r.metrics[key] for r in self.results if key in r.metrics]

    def table_rows(self) -> list[dict[str, Any]]:
        """Per-run rows for :func:`repro.analysis.tables.render_table`."""
        return [
            {
                "name": r.spec.name,
                "seed": r.spec.seed,
                "solved": r.solved,
                "completion": r.completion_time,
                "broadcasts": r.broadcast_count,
                "wall s": round(r.wall_time, 4),
            }
            for r in self.results
        ]


def run_sweep(
    specs: Iterable[ExperimentSpec],
    workers: int | None = None,
    chunksize: int | None = None,
    keep_observations: bool = False,
    options: RunOptions | None = None,
) -> SweepResult:
    """Run every spec and aggregate the summaries.

    Args:
        specs: The specs to run (order is preserved in the result).
        workers: ``None`` or ``<= 1`` runs serially in-process; otherwise a
            :class:`multiprocessing.Pool` with that many workers fans the
            specs out.  Results are identical either way — every run is
            seed-deterministic and summaries carry no live objects.
        chunksize: Specs handed to a worker per task (parallel mode only).
            Chunking amortizes per-point pickling/dispatch — each worker
            process deserializes a whole chunk at once and reuses its
            warm interpreter (imported registries, topology caches) across
            the chunk instead of paying per-point setup.  Defaults to
            :func:`default_chunksize`.
        keep_observations: Carry each run's typed observation stream back
            in ``result.observations`` (``raw`` stays dropped).  Summary
            equality is unaffected — the field is excluded from
            comparison — but memory grows with the event count, so this
            is for journaling sweeps, not routine aggregation.  Shorthand
            for ``options=RunOptions.observed()``.
        options: Per-point capture options (see
            :class:`~repro.experiments.runner.RunOptions`); mutually
            exclusive with ``keep_observations``.  ``options.journal`` is
            rejected — a single journal path cannot hold many points;
            journaling sweeps capture streams (``keep_raw``) and persist
            them per point (the campaign store does exactly that).

    Returns:
        The :class:`SweepResult`.
    """
    if options is not None:
        if keep_observations:
            raise ExperimentError(
                "pass either options=RunOptions(...) or "
                "keep_observations=True, not both"
            )
        if options.journal is not None:
            raise ExperimentError(
                "options.journal is per-run and cannot journal a sweep; "
                "capture streams with RunOptions(keep_raw=True) and "
                "persist them per point instead"
            )
    else:
        options = (
            RunOptions.observed() if keep_observations else RunOptions.summary()
        )
    spec_list = list(specs)
    if workers is not None and workers > 1 and len(spec_list) > 1:
        if chunksize is None:
            chunksize = default_chunksize(len(spec_list), workers)
        if chunksize < 1:
            raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
        jobs = [
            (index, spec, options) for index, spec in enumerate(spec_list)
        ]
        ordered: list[ExperimentResult | None] = [None] * len(jobs)
        with multiprocessing.Pool(processes=workers) as pool:
            for index, result in pool.imap_unordered(
                _run_indexed, jobs, chunksize=chunksize
            ):
                ordered[index] = result
        results = [r for r in ordered if r is not None]
        if len(results) != len(jobs):  # pragma: no cover - defensive
            raise ExperimentError("parallel sweep lost results")
    else:
        results = [_run_with_options(spec, options) for spec in spec_list]
    return SweepResult(tuple(results))
