"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a frozen, JSON-round-trippable description of
one execution: *what* network, *which* algorithm, *which* scheduler, under
*which* model constants, on *which* substrate.  Specs name components by
registry key (see :mod:`repro.experiments.registries`), so a spec contains
no live objects — its JSON form can key a results store, ship to a worker
process, and rebuild the spec bit-identically.

Determinism contract: every random stream an execution uses is derived from
``spec.seed`` with :func:`repro.sim.rng.derive_seed`, so ``run(spec)`` run
twice (in the same or a different process) yields identical results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ExperimentError
from repro.ids import Time

#: The built-in substrate keys.  Validation does **not** use this tuple —
#: specs are checked against the live registry
#: (:data:`repro.experiments.substrates.SUBSTRATES`), so third-party
#: ``@register_substrate`` entries are spec-expressible.  This constant
#: only documents what the package itself ships.
BUILTIN_SUBSTRATES = ("standard", "protocol", "rounds", "radio", "sinr")


def _params_dict(params: Mapping[str, Any] | None) -> dict[str, Any]:
    """Copy params into a plain dict (shields callers' mappings)."""
    return dict(params) if params else {}


@dataclass(frozen=True)
class _KindSpec:
    """A component named by registry key plus its keyword parameters.

    ``params`` must hold JSON-native values only (numbers, strings, bools,
    lists, dicts) so that ``from_json(to_json(spec)) == spec`` holds.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ExperimentError(f"{type(self).__name__} needs a non-empty kind")
        object.__setattr__(self, "params", _params_dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_KindSpec":
        return cls(kind=data["kind"], params=_params_dict(data.get("params")))


class TopologySpec(_KindSpec):
    """Names a topology builder: ``kind`` ∈ ``list_topologies()``."""


class SchedulerSpec(_KindSpec):
    """Names a message scheduler: ``kind`` ∈ ``list_schedulers()``."""


class AlgorithmSpec(_KindSpec):
    """Names an algorithm: ``kind`` ∈ ``list_algorithms()``."""


class WorkloadSpec(_KindSpec):
    """Names a workload generator: ``kind`` ∈ ``list_workloads()``."""


class FaultSpec(_KindSpec):
    """Names a fault scenario: ``kind`` ∈ ``list_faults()``.

    ``FaultSpec("none")`` (the default) disables fault injection entirely:
    the runner builds no engine and the execution is bit-identical to one
    from a spec without the field.  Any other kind compiles to a
    :class:`~repro.faults.plan.FaultPlan` from the seed-derived ``faults``
    stream; scenario parameters live in ``params`` and are sweepable as
    ``fault.<param>`` dotted paths.

    ``none`` rejects params: sweeping ``fault.fraction`` over a base spec
    that never names a scenario would otherwise be a silent no-op — every
    grid point fault-free — which turns a resilience comparison into
    meaningless numbers.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind == "none" and self.params:
            raise ExperimentError(
                "fault kind 'none' takes no params "
                f"(got {sorted(self.params)}); name a scenario kind — e.g. "
                "FaultSpec('crash_random', ...) or a 'fault.kind' sweep "
                "axis / CLI --fault — for fault.* parameters to apply"
            )

    @property
    def enabled(self) -> bool:
        """True when the spec actually injects faults."""
        return self.kind != "none"


def _default_fault() -> FaultSpec:
    return FaultSpec("none")


@dataclass(frozen=True)
class ModelSpec:
    """The abstract-MAC model constants plus execution budgets.

    Attributes:
        fack: Acknowledgment bound.
        fprog: Progress bound (``fprog <= fack``).
        mac: MAC-layer registry key (``standard`` or ``enhanced``; the
            ``radio`` substrate always uses the radio adapter).
        max_time: Optional wall on simulated time.
        max_events: Simulator event budget.
        params: Substrate-specific extras (e.g. ``max_slots``,
            ``slot_duration``, ``adaptive`` for the radio substrate).
        engine: Reception-engine key for radio-family substrates
            (``reference``, ``vectorized``, or ``auto``; see
            :data:`repro.radio.engines.RECEPTION_ENGINES`).  All engines
            compute identical receptions from the same seed, so this field
            selects an implementation, never an outcome.  Serialization
            omits the default, keeping existing spec JSON (and every
            store/journal keyed on it) byte-identical.
    """

    fack: Time = 20.0
    fprog: Time = 1.0
    mac: str = "standard"
    max_time: Time | None = None
    max_events: int = 50_000_000
    params: dict[str, Any] = field(default_factory=dict)
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.fack <= 0 or self.fprog <= 0:
            raise ExperimentError(
                f"model bounds must be positive (fack={self.fack}, "
                f"fprog={self.fprog})"
            )
        if self.fprog > self.fack:
            raise ExperimentError(
                f"Fprog must not exceed Fack ({self.fprog} > {self.fack})"
            )
        object.__setattr__(self, "params", _params_dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        data = {
            "fack": self.fack,
            "fprog": self.fprog,
            "mac": self.mac,
            "max_time": self.max_time,
            "max_events": self.max_events,
            "params": dict(self.params),
        }
        if self.engine != "reference":
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelSpec":
        return cls(
            fack=data.get("fack", 20.0),
            fprog=data.get("fprog", 1.0),
            mac=data.get("mac", "standard"),
            max_time=data.get("max_time"),
            max_events=data.get("max_events", 50_000_000),
            params=_params_dict(data.get("params")),
            engine=data.get("engine", "reference"),
        )


def _default_workload() -> WorkloadSpec:
    return WorkloadSpec("one_each", {"k": 1})


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-described execution.

    Attributes:
        topology: The network to build.
        algorithm: The algorithm to run on it.
        scheduler: The message scheduler (ignored by the ``rounds``
            substrate, whose round scheduler is seeded from ``seed``, and by
            the ``radio`` substrate, where contention *is* the scheduler).
        workload: The MMB message workload; ``None`` for workload-free
            protocols (leader election, consensus).
        fault: The fault/dynamics scenario injected into the execution
            (crashes, churn, link flapping); defaults to ``none``.
        model: Model constants and budgets.
        substrate: Which execution engine runs the spec — ``standard``
            (event-driven abstract MAC), ``protocol`` (wakeup-driven, no
            arrivals), ``rounds`` (FMMB's lock-step substrate), or
            ``radio`` (slotted collision radio below the abstraction).
        seed: Root seed; every stream in the execution derives from it.
        name: Human label; never affects results.
    """

    topology: TopologySpec
    algorithm: AlgorithmSpec = field(default_factory=lambda: AlgorithmSpec("bmmb"))
    scheduler: SchedulerSpec = field(
        default_factory=lambda: SchedulerSpec("uniform")
    )
    workload: WorkloadSpec | None = field(default_factory=_default_workload)
    fault: FaultSpec = field(default_factory=_default_fault)
    model: ModelSpec = field(default_factory=ModelSpec)
    substrate: str = "standard"
    seed: int = 0
    name: str = "experiment"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ExperimentSpec":
        """Check the spec against the live substrate registry.

        Raises :class:`~repro.errors.ExperimentError` when the substrate
        is not registered (the message lists what is) or when the spec
        asks for a capability the substrate does not declare — e.g. a
        fault scenario on a substrate with ``supports_faults=False``.
        Returns ``self`` so the call chains.

        The import is deferred: :mod:`repro.experiments.substrates`
        imports this module for its type definitions, and by validating
        against the registry at *use* time, any ``@register_substrate``
        entry added after import — including third-party ones — is
        immediately spec-expressible.
        """
        from repro.experiments.substrates import (
            SUBSTRATES,
            check_capabilities,
        )

        substrate = SUBSTRATES.get(self.substrate)
        check_capabilities(self, substrate)
        return self

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_seed(self, seed: int) -> "ExperimentSpec":
        """The same experiment under a different root seed."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "topology": self.topology.to_dict(),
            "algorithm": self.algorithm.to_dict(),
            "scheduler": self.scheduler.to_dict(),
            "workload": self.workload.to_dict() if self.workload else None,
            "fault": self.fault.to_dict(),
            "model": self.model.to_dict(),
            "substrate": self.substrate,
            "seed": self.seed,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        workload = data.get("workload")
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            algorithm=AlgorithmSpec.from_dict(
                data.get("algorithm", {"kind": "bmmb"})
            ),
            scheduler=SchedulerSpec.from_dict(
                data.get("scheduler", {"kind": "uniform"})
            ),
            workload=WorkloadSpec.from_dict(workload) if workload else None,
            fault=FaultSpec.from_dict(data.get("fault") or {"kind": "none"}),
            model=ModelSpec.from_dict(data.get("model", {})),
            substrate=data.get("substrate", "standard"),
            seed=data.get("seed", 0),
            name=data.get("name", "experiment"),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to JSON (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
