"""First-class execution substrates: the pluggable engine layer of ``run``.

A *substrate* is an execution engine that can run an
:class:`~repro.experiments.specs.ExperimentSpec` end to end.  The package
ships five:

* ``standard`` — event-driven abstract MAC (standard/enhanced layers, MMB
  workloads) via :func:`repro.runtime.runner.run_standard`;
* ``protocol`` — wakeup-driven protocols (leader election, consensus; no
  arrivals) via :func:`repro.runtime.runner.run_protocol`;
* ``rounds`` — FMMB's lock-step round substrate via
  :func:`repro.core.fmmb.run_fmmb`;
* ``radio`` — the slotted collision radio below the abstraction
  (:class:`repro.radio.RadioMACLayer` over
  :class:`repro.radio.SlottedRadioNetwork`);
* ``sinr`` — the same MAC adapter over an SINR-reception radio
  (:class:`repro.radio.SINRRadioNetwork`): distance-based
  signal-to-interference threshold on an embedded topology.

Substrates are registry entries, exactly like topologies and schedulers:
``@register_substrate("name")`` on a :class:`SubstrateBase` subclass makes
the engine spec-expressible (``ExperimentSpec(substrate="name")``),
sweepable (a ``"substrate"`` axis), and visible to the CLI
(``python -m repro registry``).  ``run(spec)`` contains no
substrate-specific dispatch — it resolves the entry and calls
:meth:`Substrate.execute`.

The contract:

* **capabilities** — every substrate declares ``supports_faults``,
  ``supports_arrivals``, and its ``scheduler_role`` (``"explicit"``: the
  spec's scheduler drives message timing; ``"seeded"``: the engine derives
  its own round scheduler from ``spec.seed``; ``"emergent"``: contention
  *is* the scheduler).  ``run`` enforces capabilities up front with a
  clear :class:`~repro.errors.ExperimentError` instead of a deep
  traceback.
* **prepare(ctx) → Execution** — resolve every component from the shared
  :class:`ExecutionContext` (topology, algorithm, scheduler, workload,
  fault engine — all built from the documented seed-derived streams).
* **execute(ctx) → Outcome** — run the prepared execution and summarize
  it: verdict, completion, counters, metric gauges, and the typed
  observation stream (:mod:`repro.runtime.observations`), emitted
  *after* the engine ran so observation capture never perturbs a single
  RNG draw.

Stream derivation is centralized here and fixed: the root stream is
``RandomSource(spec.seed, "experiment")`` and components draw from the
children ``topology``, ``scheduler``, ``workload``, ``radio``, and
``faults``.  The ``rounds`` substrate passes ``spec.seed`` straight to
``run_fmmb`` so a spec run reproduces the legacy entry point exactly.
Same-seed executions are bit-identical to the pre-registry dispatcher
(``tests/test_perf_golden.py`` replays byte-for-byte).

Writing a new substrate (see the README's "Writing a new substrate" for
the worked ``sinr`` example)::

    from repro.experiments.substrates import (
        Execution, Outcome, SubstrateBase, register_substrate,
    )

    @register_substrate("my_engine")
    class MySubstrate(SubstrateBase):
        \"\"\"One-line description (shown by ``repro registry``).\"\"\"

        supports_faults = False
        scheduler_role = "seeded"

        def prepare(self, ctx):
            dual = ctx.dual                     # seed-derived topology
            workload = ctx.time_zero_workload(self.name)
            def _run():
                ...run the engine...
                ctx.probe.gauge("my_metric", 1.0)
                return self.outcome(ctx, solved=True, completion_time=0.0)
            return Execution(ctx, _run)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from repro.core.fmmb import run_fmmb
from repro.core.problem import ArrivalSchedule
from repro.errors import ExperimentError
from repro.experiments.registries import (
    ALGORITHMS,
    FAULTS,
    MACS,
    SCHEDULERS,
    TOPOLOGIES,
    WORKLOADS,
    AlgorithmEntry,
    Registry,
)
from repro.experiments.specs import (
    AlgorithmSpec,
    ExperimentSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.faults.engine import FaultEngine
from repro.faults.outcome import survivor_outcome
from repro.ids import MessageAssignment
from repro.runtime.observations import Observation, Probe
from repro.runtime.runner import run_protocol, run_standard
from repro.runtime.validate import required_deliveries
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph

#: Name of the root stream every spec-driven execution derives from.
ROOT_STREAM = "experiment"
#: Child stream fault scenarios compile their plans from.
FAULT_STREAM = "faults"

#: The substrate registry: string key -> :class:`Substrate` instance.
SUBSTRATES = Registry("substrate")

#: The scheduler roles a substrate may declare.
SCHEDULER_ROLES = ("explicit", "seeded", "emergent")


def root_stream(spec: ExperimentSpec) -> RandomSource:
    """The root random stream of a spec execution."""
    return RandomSource(spec.seed, ROOT_STREAM)


# ----------------------------------------------------------------------
# Component materialization (shared by substrates, the CLI, and tests)
# ----------------------------------------------------------------------
#: Process-local memo of built topologies.  Keyed by (kind, params, seed),
#: so a hit returns the *identical* (deterministically built, immutable)
#: network — sweep workers that run many points over the same topology
#: (explicit seeds, ``derive_seeds=False``) skip the rebuild per point.
_TOPOLOGY_CACHE: dict[str, DualGraph] = {}
_TOPOLOGY_CACHE_MAX = 8


def clear_topology_cache() -> None:
    """Drop the process-local topology memo.

    Benchmarks call this between timed repeats so every repeat pays the
    cold build (a cache hit would misattribute build cost to execution
    and make comparisons against cacheless revisions unfair).
    """
    _TOPOLOGY_CACHE.clear()


def materialize_topology(spec: ExperimentSpec) -> DualGraph:
    """Build the spec's network exactly as :func:`~repro.experiments.run`
    will.

    Useful for computing topology-dependent model constants (diameters,
    contention-provisioned ``Fack``) before constructing the final spec:
    the build is deterministic in ``spec.seed`` and ``spec.topology``, so
    the network returned here is the one the run will use.  Results are
    memoized per process (the build is pure and :class:`DualGraph` is
    immutable, so sharing the object is safe).
    """
    stream = root_stream(spec).child("topology")
    key = (
        f"{spec.topology.kind}|"
        f"{sorted(spec.topology.params.items())!r}|{stream.seed}"
    )
    cached = _TOPOLOGY_CACHE.get(key)
    if cached is not None:
        return cached
    build = TOPOLOGIES.get(spec.topology.kind)
    dual = build(stream, **spec.topology.params)
    if len(_TOPOLOGY_CACHE) >= _TOPOLOGY_CACHE_MAX:
        _TOPOLOGY_CACHE.clear()
    _TOPOLOGY_CACHE[key] = dual
    return dual


def materialize_workload(spec: ExperimentSpec, dual: DualGraph):
    """Build the spec's workload against an already-built network."""
    if spec.workload is None:
        raise ExperimentError(
            f"substrate {spec.substrate!r} needs a workload, got None"
        )
    build = WORKLOADS.get(spec.workload.kind)
    return build(dual, root_stream(spec).child("workload"), **spec.workload.params)


def materialize_fault_engine(
    spec: ExperimentSpec, dual: DualGraph
) -> FaultEngine | None:
    """Compile the spec's fault scenario into an engine (None when off).

    The plan draws only from the ``faults`` child stream, so enabling or
    tuning faults never perturbs the topology/scheduler/workload streams —
    and ``FaultSpec("none")`` builds nothing at all, keeping fault-free
    specs bit-identical to pre-fault behavior.
    """
    fault = spec.fault
    if fault is None or not fault.enabled:
        return None
    build = FAULTS.get(fault.kind)
    try:
        plan = build(dual, root_stream(spec).child(FAULT_STREAM), **fault.params)
    except TypeError as exc:
        # A param the builder doesn't take, or a value of the wrong type:
        # surface it as a spec-composition error, not a traceback.
        raise ExperimentError(
            f"fault scenario {fault.kind!r} rejected params "
            f"{sorted(fault.params)}: {exc}"
        ) from exc
    return FaultEngine(dual, plan)


def _static_assignment(workload) -> MessageAssignment:
    if isinstance(workload, ArrivalSchedule):
        return workload.as_assignment()
    return workload


def _arrival_capable_substrates() -> list[str]:
    """Registered substrates declaring ``supports_arrivals=True`` (live —
    includes third-party registrations)."""
    return sorted(
        name
        for name in SUBSTRATES
        if getattr(SUBSTRATES.get(name), "supports_arrivals", False)
    )


def _arrival_rejection(substrate_name: str, workload_kind: str | None) -> str:
    """The capability-rejection message for timed arrivals on a time-0
    substrate: names the substrate, the workload kind, and which
    registered substrates do take arrival schedules."""
    capable = ", ".join(_arrival_capable_substrates()) or "none registered"
    kind = f"workload {workload_kind!r}" if workload_kind else "the workload"
    return (
        f"the {substrate_name} substrate takes time-0 assignments, "
        f"not arrival schedules, but {kind} produced timed arrivals; "
        f"arrival-capable substrates: {capable}"
    )


# ----------------------------------------------------------------------
# The execution context: one per run, shared component derivation
# ----------------------------------------------------------------------
_UNSET = object()


class ExecutionContext:
    """Everything a substrate needs to run one spec, derived one way.

    Centralizes the stream-derivation contract (root stream
    ``RandomSource(spec.seed, "experiment")``; children by fixed names),
    topology materialization, workload construction, and fault-engine
    compilation, so substrates cannot drift from the documented contract.
    Components are built lazily and memoized — a substrate that never asks
    for a scheduler never derives the ``scheduler`` stream.

    Attributes:
        spec: The experiment being executed.
        keep_raw: Whether the run retains native result objects and the
            observation stream (disabled for sweep summaries).
        window: Observation-window width for long-horizon service runs
            (``None`` off); the probe folds events into O(window-count)
            aggregates instead of retaining the raw stream.
        probe: The run's :class:`~repro.runtime.observations.Probe`;
            substrates register metric gauges and emit observations here.
        root: The root random stream.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        keep_raw: bool = True,
        window: float | None = None,
        max_windows: int | None = None,
    ):
        self.spec = spec
        self.keep_raw = keep_raw
        self.window = window
        self.probe = Probe(window=window, max_windows=max_windows)
        self.root = root_stream(spec)
        self._dual: DualGraph | None = None
        self._workload: Any = _UNSET
        self._engine: Any = _UNSET

    @property
    def record_observations(self) -> bool:
        """Whether substrates should emit observations for this run.

        True on ``keep_raw`` runs (raw stream retained) and on windowed
        runs (events folded into bounded aggregates); summary-only runs
        skip emission entirely.
        """
        return self.keep_raw or self.window is not None

    def stream(self, name: str) -> RandomSource:
        """The named child stream of the run's root stream."""
        return self.root.child(name)

    @property
    def dual(self) -> DualGraph:
        """The materialized network (memoized)."""
        if self._dual is None:
            self._dual = materialize_topology(self.spec)
        return self._dual

    def algorithm_entry(self, substrate_name: str) -> AlgorithmEntry:
        """The spec's algorithm entry, checked against the substrate."""
        entry = ALGORITHMS.get(self.spec.algorithm.kind)
        if substrate_name not in entry.substrates:
            raise ExperimentError(
                f"algorithm {self.spec.algorithm.kind!r} does not run on "
                f"substrate {substrate_name!r} "
                f"(supported: {', '.join(entry.substrates)})"
            )
        return entry

    def build_algorithm(self, substrate_name: str):
        """The algorithm's factory/config, built with the spec's params."""
        return self.algorithm_entry(substrate_name).build(
            **self.spec.algorithm.params
        )

    def scheduler(self):
        """The spec's message scheduler over the ``scheduler`` stream."""
        return SCHEDULERS.get(self.spec.scheduler.kind)(
            self.stream("scheduler"), **self.spec.scheduler.params
        )

    def mac_class(self):
        """The MAC-layer entry named by ``spec.model.mac``."""
        return MACS.get(self.spec.model.mac)

    def workload(self):
        """The spec's workload over the ``workload`` stream (memoized)."""
        if self._workload is _UNSET:
            self._workload = materialize_workload(self.spec, self.dual)
        return self._workload

    def time_zero_workload(self, substrate_name: str) -> MessageAssignment:
        """The workload, rejected if it carries timed arrivals."""
        workload = self.workload()
        if isinstance(workload, ArrivalSchedule):
            kind = self.spec.workload.kind if self.spec.workload else None
            raise ExperimentError(_arrival_rejection(substrate_name, kind))
        return workload

    def fault_engine(self) -> FaultEngine | None:
        """The compiled fault engine, or None when faults are off
        (memoized)."""
        if self._engine is _UNSET:
            self._engine = materialize_fault_engine(self.spec, self.dual)
        return self._engine

    # ------------------------------------------------------------------
    # Observation helpers shared by the MMB substrates
    # ------------------------------------------------------------------
    def observe_workload_arrivals(self) -> None:
        """Emit one ``arrival`` observation per environment input."""
        workload = self.workload()
        if isinstance(workload, ArrivalSchedule):
            self.probe.observe_arrivals(
                (a.node, a.message.mid, a.time)
                for a in workload.sorted_by_time()
            )
        else:
            self.probe.observe_arrivals(
                (node, message.mid, 0.0)
                for node, messages in sorted(workload.messages.items())
                for message in messages
            )

    def observe_faults(self) -> None:
        """Emit the fault timeline when a fault engine is installed."""
        engine = self.fault_engine()
        if engine is not None:
            self.probe.observe_fault_plan(engine)


# ----------------------------------------------------------------------
# The substrate protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Outcome:
    """What one substrate execution produced, engine-independent.

    ``run`` copies these fields onto the
    :class:`~repro.experiments.ExperimentResult` verbatim (adding
    ``spec`` and ``wall_time``).
    """

    solved: bool
    completion_time: float
    broadcast_count: int
    delivered_count: int
    metrics: dict[str, float] = field(default_factory=dict)
    raw: Any = None
    observations: tuple[Observation, ...] = ()
    series: dict[str, tuple[tuple[float, float], ...]] = field(
        default_factory=dict
    )


class Execution:
    """A prepared execution: components resolved, ready to run once."""

    def __init__(self, ctx: ExecutionContext, run: Callable[[], Outcome]):
        self.ctx = ctx
        self._run = run
        self._outcome: Outcome | None = None

    def run(self) -> Outcome:
        """Run the engine (idempotent: the outcome is cached)."""
        if self._outcome is None:
            self._outcome = self._run()
        return self._outcome


@runtime_checkable
class Substrate(Protocol):
    """What ``run`` requires of an execution engine."""

    name: str
    supports_faults: bool
    supports_arrivals: bool
    supports_reception_engines: bool
    scheduler_role: str

    def prepare(self, ctx: ExecutionContext) -> Execution:
        """Resolve components and return a ready-to-run execution."""
        ...

    def execute(self, ctx: ExecutionContext) -> Outcome:
        """Run the spec end to end and summarize it."""
        ...


class SubstrateBase:
    """Base class for substrates: capability defaults + execute loop.

    Subclasses override :meth:`prepare` and the capability class
    attributes; the class docstring's first line is the one-line
    description shown by ``python -m repro registry``.
    """

    #: Registry key; filled in by :func:`register_substrate`.
    name: str = ""
    #: Whether fault/dynamics scenarios (``spec.fault``) can be injected.
    supports_faults: bool = True
    #: Whether timed arrival schedules (vs time-0 assignments) are legal.
    supports_arrivals: bool = False
    #: Whether ``spec.model.engine`` selects a reception engine (radio
    #: family only — other substrates have no slot-reception loop).
    supports_reception_engines: bool = False
    #: How message timing is decided: ``explicit`` (the spec's scheduler),
    #: ``seeded`` (engine-owned scheduler derived from the seed), or
    #: ``emergent`` (contention in the engine is the scheduler).
    scheduler_role: str = "explicit"

    def describe(self) -> str:
        """One-line description (the class docstring's first line)."""
        doc = (self.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    def capabilities(self) -> dict[str, Any]:
        """The declared capability flags as a plain dict."""
        return {
            "supports_faults": self.supports_faults,
            "supports_arrivals": self.supports_arrivals,
            "supports_reception_engines": self.supports_reception_engines,
            "scheduler_role": self.scheduler_role,
        }

    def prepare(self, ctx: ExecutionContext) -> Execution:
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> Outcome:
        """Prepare and run in one step (the generic ``run`` entry)."""
        return self.prepare(ctx).run()

    def outcome(
        self,
        ctx: ExecutionContext,
        solved: bool,
        completion_time: float,
        broadcast_count: int = 0,
        delivered_count: int = 0,
        raw: Any = None,
    ) -> Outcome:
        """Assemble the :class:`Outcome` from the context's probe.

        Metrics are exactly the probe's gauges; named series travel on
        every run; the observation stream is attached only on
        ``keep_raw`` runs (sweep summaries stay small and picklable).
        """
        return Outcome(
            solved=solved,
            completion_time=completion_time,
            broadcast_count=broadcast_count,
            delivered_count=delivered_count,
            metrics=ctx.probe.metrics(),
            raw=raw if ctx.keep_raw else None,
            observations=ctx.probe.events() if ctx.keep_raw else (),
            series=ctx.probe.series(),
        )


def register_substrate(name: str):
    """Register a substrate under ``name`` (class or instance).

    Classes are instantiated once; the instance's ``name`` attribute is
    set to the registry key.  The decorated object is returned unchanged,
    so the decorator works on classes and ready-made instances alike.
    """

    def _decorator(obj):
        instance = obj() if isinstance(obj, type) else obj
        instance.name = name
        if instance.scheduler_role not in SCHEDULER_ROLES:
            raise ExperimentError(
                f"substrate {name!r} declares unknown scheduler_role "
                f"{instance.scheduler_role!r}; one of "
                f"{', '.join(SCHEDULER_ROLES)}"
            )
        SUBSTRATES.register(name)(instance)
        return obj

    return _decorator


def list_substrates() -> list[str]:
    """Registered substrate keys."""
    return SUBSTRATES.names()


def get_substrate(name: str) -> Substrate:
    """The registered substrate for ``name`` (helpful error otherwise)."""
    return SUBSTRATES.get(name)


def check_capabilities(spec: ExperimentSpec, substrate: Substrate) -> None:
    """Reject spec/substrate capability mismatches with a clear error.

    Everything knowable from the spec alone is checked here (and hence at
    spec construction, via :meth:`ExperimentSpec.validate`).  Whether a
    workload carries timed arrivals is only known once the workload
    builder runs, so that half of the contract is enforced by
    :func:`check_workload_capability` just before execution.
    """
    if (
        spec.fault is not None
        and spec.fault.enabled
        and not substrate.supports_faults
    ):
        raise ExperimentError(
            f"substrate {substrate.name!r} does not support fault injection "
            f"(supports_faults=False), but the spec names fault scenario "
            f"{spec.fault.kind!r}; drop the fault or pick a fault-capable "
            "substrate"
        )
    engine = spec.model.engine
    if engine != "reference":
        # Deferred: repro.radio.engines is import-light, but keeping the
        # dependency out of module scope mirrors the registry-at-use-time
        # policy above.
        from repro.radio.engines import AUTO_ENGINE, RECEPTION_ENGINES

        if engine != AUTO_ENGINE and engine not in RECEPTION_ENGINES:
            known = ", ".join([AUTO_ENGINE] + RECEPTION_ENGINES.names())
            raise ExperimentError(
                f"unknown reception engine {engine!r}; one of {known}"
            )
        if not getattr(substrate, "supports_reception_engines", False):
            raise ExperimentError(
                f"substrate {substrate.name!r} has no slot-reception loop "
                f"(supports_reception_engines=False), but the spec selects "
                f"reception engine {engine!r}; drop model.engine or pick a "
                "radio-family substrate"
            )


def check_workload_capability(
    ctx: ExecutionContext, substrate: Substrate
) -> None:
    """Reject timed-arrival workloads on substrates that declare
    ``supports_arrivals=False``.

    Materializes the workload (memoized — substrates that use it pay
    nothing extra) so the check covers third-party workload kinds, and
    runs before the engine starts so a mismatch is a clear
    :class:`~repro.errors.ExperimentError` instead of silently ignored
    arrivals.
    """
    if ctx.spec.workload is None or substrate.supports_arrivals:
        return
    if isinstance(ctx.workload(), ArrivalSchedule):
        raise ExperimentError(
            _arrival_rejection(substrate.name, ctx.spec.workload.kind)
        )


# ----------------------------------------------------------------------
# Shared steady-state service gauges (open-arrival workloads only)
# ----------------------------------------------------------------------
def _observe_steady(
    probe,
    arrival_times: dict[str, float],
    completion_times: dict[str, float],
    warmup_fraction: float,
) -> None:
    """Warmup-trimmed service gauges + per-window series onto the probe.

    Only reached when the workload is an
    :class:`~repro.traffic.OpenArrivalSchedule` (it carries
    ``warmup_fraction``), so every pre-existing workload kind keeps its
    exact metric set.  Gauges become metrics; the per-window
    latency/throughput curves become named probe series
    (``window_latency_mean`` / ``window_throughput``).  Imported lazily:
    ``repro.traffic`` registers workloads and must be importable after
    this module.
    """
    from repro.traffic.metrics import steady_state_metrics, window_series

    probe.gauges(
        steady_state_metrics(
            arrival_times, completion_times, warmup_fraction=warmup_fraction
        )
    )
    for name, points in window_series(
        arrival_times, completion_times, warmup_fraction=warmup_fraction
    ).items():
        probe.set_series(name, points)


# ----------------------------------------------------------------------
# Shared MMB fault verdict
# ----------------------------------------------------------------------
def _fault_mmb_result(
    dual: DualGraph,
    workload,
    delivery_times,
    engine: FaultEngine,
) -> tuple[bool, float, dict[str, float]]:
    """Among-survivors verdict + fault metrics for an MMB execution."""
    arrival_times = (
        workload.arrival_times()
        if isinstance(workload, ArrivalSchedule)
        else None
    )
    outcome = survivor_outcome(
        dual,
        _static_assignment(workload),
        delivery_times,
        engine,
        arrival_times=arrival_times,
    )
    metrics = engine.metrics()
    metrics.update(outcome.metrics())
    return outcome.solved, outcome.completion_time, metrics


# ----------------------------------------------------------------------
# Built-in substrates
# ----------------------------------------------------------------------
@register_substrate("standard")
class StandardSubstrate(SubstrateBase):
    """Event-driven abstract MAC (standard/enhanced layers, MMB workloads)."""

    supports_faults = True
    supports_arrivals = True
    scheduler_role = "explicit"

    def prepare(self, ctx: ExecutionContext) -> Execution:
        spec = ctx.spec
        dual = ctx.dual
        factory = ctx.build_algorithm(self.name)
        scheduler = ctx.scheduler()
        workload = ctx.workload()
        mac_class = ctx.mac_class()
        engine = ctx.fault_engine()
        delivered_cap = spec.model.params.get("delivered_cap")

        def _run() -> Outcome:
            result = run_standard(
                dual,
                workload,
                factory,
                scheduler,
                spec.model.fack,
                spec.model.fprog,
                max_time=spec.model.max_time,
                max_events=spec.model.max_events,
                keep_instances=ctx.keep_raw,
                mac_class=mac_class,
                fault_engine=engine,
                delivered_cap=delivered_cap,
            )
            solved = result.solved
            completion = result.completion_time
            probe = ctx.probe
            probe.gauges(
                {
                    "rcv_count": float(result.rcv_count),
                    "sim_events": float(result.sim_events),
                    "max_latency": result.max_latency,
                }
            )
            warmup = getattr(workload, "warmup_fraction", None)
            if warmup is not None:
                _observe_steady(
                    probe,
                    workload.arrival_times(),
                    result.per_message_completion,
                    warmup,
                )
            if engine is not None:
                solved, completion, fault_metrics = _fault_mmb_result(
                    dual, workload, result.deliveries.times, engine
                )
                probe.gauges(fault_metrics)
            if ctx.record_observations:
                ctx.observe_workload_arrivals()
                if result.instances is not None:
                    probe.observe_instances(result.instances)
                probe.observe_deliveries(result.deliveries.times)
                ctx.observe_faults()
            return self.outcome(
                ctx,
                solved=solved,
                completion_time=completion,
                broadcast_count=result.broadcast_count,
                delivered_count=len(result.deliveries.times),
                raw=result,
            )

        return Execution(ctx, _run)


@register_substrate("protocol")
class ProtocolSubstrate(SubstrateBase):
    """Wakeup-driven protocols to quiescence (leader election, consensus)."""

    supports_faults = True
    supports_arrivals = False
    scheduler_role = "explicit"

    def prepare(self, ctx: ExecutionContext) -> Execution:
        spec = ctx.spec
        dual = ctx.dual
        entry = ctx.algorithm_entry(self.name)
        factory = entry.build(**spec.algorithm.params)
        scheduler = ctx.scheduler()
        mac_class = ctx.mac_class()
        engine = ctx.fault_engine()

        def _run() -> Outcome:
            result = run_protocol(
                dual,
                factory,
                scheduler,
                spec.model.fack,
                spec.model.fprog,
                max_time=spec.model.max_time,
                max_events=spec.model.max_events,
                mac_class=mac_class,
                fault_engine=engine,
            )
            probe = ctx.probe
            probe.gauges(
                {
                    "end_time": result.end_time,
                    "quiesced": float(result.quiesced),
                }
            )
            if engine is None:
                solved = result.quiesced and (
                    entry.postcondition is None
                    or entry.postcondition(dual, result.automata)
                )
                completion = result.end_time
            else:
                # Judge the postcondition among survivors: the engine's
                # view answers the same component queries as the static
                # graph.
                view = engine.view()
                survivors = {v: result.automata[v] for v in view.nodes}
                solved = result.quiesced and (
                    entry.postcondition is None
                    or entry.postcondition(view, survivors)
                )
                # end_time includes draining the installed fault timeline;
                # the protocol's actual end is the last MAC/automaton
                # event.
                completion = result.last_activity
                probe.gauge("last_activity", result.last_activity)
                probe.gauges(engine.metrics())
            if ctx.record_observations:
                probe.observe_instances(result.instances)
                ctx.observe_faults()
            return self.outcome(
                ctx,
                solved=solved,
                completion_time=completion if solved else math.inf,
                broadcast_count=result.broadcast_count,
                delivered_count=0,
                raw=result,
            )

        return Execution(ctx, _run)


@register_substrate("rounds")
class RoundsSubstrate(SubstrateBase):
    """FMMB's lock-step round substrate on the enhanced model."""

    supports_faults = True
    supports_arrivals = False
    scheduler_role = "seeded"

    def prepare(self, ctx: ExecutionContext) -> Execution:
        spec = ctx.spec
        dual = ctx.dual
        config = ctx.build_algorithm(self.name)
        workload = ctx.time_zero_workload(self.name)
        engine = ctx.fault_engine()

        def _run() -> Outcome:
            result = run_fmmb(
                dual,
                workload,
                fprog=spec.model.fprog,
                seed=spec.seed,
                config=config,
                fault_engine=engine,
            )
            solved = result.solved
            completion = result.completion_time
            probe = ctx.probe
            probe.gauges(
                {
                    "rounds_total": float(result.total_rounds),
                    "rounds_mis": float(result.mis_result.rounds_used),
                    "rounds_gather": float(result.gather_result.rounds_used),
                    "rounds_spread": float(result.spread_result.rounds_used),
                    "completion_rounds": float(result.completion_rounds),
                    "mis_valid": float(result.mis_valid),
                }
            )
            # A delivery in round r is available by the end of slot r.
            delivery_times = {
                key: (rnd + 1) * spec.model.fprog
                for key, rnd in result.delivery_rounds.items()
            }
            if engine is not None:
                # Replay any fault events past the last simulated round so
                # the final engine state (survivors, joins) is judged at
                # the same cutoff as the other substrates, which drain the
                # timeline.
                engine.advance_to(math.inf)
                solved, completion, fault_metrics = _fault_mmb_result(
                    dual, workload, delivery_times, engine
                )
                probe.gauges(fault_metrics)
            if ctx.record_observations:
                ctx.observe_workload_arrivals()
                probe.observe_deliveries(delivery_times)
                probe.observe_clock(
                    "round",
                    result.total_rounds,
                    result.total_rounds * spec.model.fprog,
                )
                ctx.observe_faults()
            return self.outcome(
                ctx,
                solved=solved,
                completion_time=completion,
                broadcast_count=0,
                delivered_count=len(result.delivery_rounds),
                raw=result,
            )

        return Execution(ctx, _run)


@dataclass
class RadioRun:
    """Raw outcome of a radio-family substrate execution.

    Attributes:
        layer: The radio MAC adapter after the run (instances, deliveries,
            empirical-bound extraction).
        slots: Radio slots consumed.
        automata: The per-node automata after the run.
    """

    layer: Any
    slots: int
    automata: dict[int, Any]


@register_substrate("radio")
class RadioSubstrate(SubstrateBase):
    """Slotted collision radio below the abstraction (decay MAC adapter)."""

    supports_faults = True
    supports_arrivals = True
    supports_reception_engines = True
    scheduler_role = "emergent"
    #: MAC registry key the adapter is built from; the ``sinr`` subclass
    #: swaps the reception model by naming a different entry.
    mac_key = "radio"

    def prepare(self, ctx: ExecutionContext) -> Execution:
        spec = ctx.spec
        dual = ctx.dual
        factory = ctx.build_algorithm(self.name)
        params = dict(spec.model.params)
        max_slots = int(params.pop("max_slots", 500_000))
        engine = ctx.fault_engine()
        if engine is not None:
            params["fault_engine"] = engine
        if spec.model.engine != "reference":
            # Only forwarded when non-default so historical call shapes
            # (and any third-party MAC entry without the kwarg) are
            # untouched by the engine API.
            params["engine"] = spec.model.engine
        layer = MACS.get(self.mac_key)(dual, ctx.stream("radio"), **params)
        automata = {node: factory(node) for node in dual.nodes}
        for node, automaton in automata.items():
            layer.register(node, automaton)
        workload = ctx.workload()

        def _run() -> Outcome:
            if isinstance(workload, ArrivalSchedule):
                for arrival in workload.sorted_by_time():
                    layer.inject_arrival(
                        arrival.node, arrival.message, time=arrival.time
                    )
            else:
                for node, messages in sorted(workload.messages.items()):
                    for message in messages:
                        layer.inject_arrival(node, message)
            slots = layer.run(max_slots=max_slots)
            static = _static_assignment(workload)
            probe = ctx.probe
            if engine is not None:
                solved, completion, fault_metrics = _fault_mmb_result(
                    dual, workload, layer.deliveries, engine
                )
                probe.gauges(fault_metrics)
            else:
                required = required_deliveries(dual, static)
                per_message: dict[str, float] = {}
                for mid, nodes in required.items():
                    worst = 0.0
                    for node in nodes:
                        delivered_at = layer.deliveries.get((node, mid))
                        if delivered_at is None:
                            worst = math.inf
                            break
                        worst = max(worst, delivered_at)
                    per_message[mid] = worst
                solved = all(math.isfinite(t) for t in per_message.values())
                completion = max(per_message.values(), default=0.0)
                warmup = getattr(workload, "warmup_fraction", None)
                if warmup is not None:
                    _observe_steady(
                        probe, workload.arrival_times(), per_message, warmup
                    )
            bounds = layer.empirical_bounds()
            probe.gauges(
                {
                    "slots": float(slots),
                    "empirical_fack": bounds.fack,
                    "empirical_fprog": bounds.fprog,
                    "delivery_success_rate": bounds.delivery_success_rate,
                }
            )
            if ctx.record_observations:
                ctx.observe_workload_arrivals()
                probe.observe_instances(layer.instances)
                probe.observe_deliveries(layer.deliveries)
                probe.observe_clock(
                    "slot", slots, slots * layer.slot_duration
                )
                ctx.observe_faults()
            return self.outcome(
                ctx,
                solved=solved,
                completion_time=completion,
                broadcast_count=len(layer.instances),
                delivered_count=len(layer.deliveries),
                raw=RadioRun(layer=layer, slots=slots, automata=automata),
            )

        return Execution(ctx, _run)


@register_substrate("sinr")
class SINRSubstrate(RadioSubstrate):
    """Slotted SINR-reception radio (distance-based signal/interference)."""

    mac_key = "sinr"


# ----------------------------------------------------------------------
# Smoke specs: one tiny, fast, solvable run per built-in substrate
# ----------------------------------------------------------------------
def _smoke_rgg(n: int, side: float) -> TopologySpec:
    return TopologySpec(
        "random_geometric",
        {"n": n, "side": side, "c": 1.6, "grey_edge_probability": 0.4},
    )


#: Builders of the per-substrate smoke specs (tiny, deterministic, must
#: solve).  The cross-substrate matrix test and the CI ``substrate-smoke``
#: step both run these, so every registered built-in stays executable.
SMOKE_SPEC_BUILDERS: dict[str, Callable[[int], ExperimentSpec]] = {
    "standard": lambda seed: ExperimentSpec(
        name="smoke-standard",
        topology=TopologySpec("line", {"n": 8}),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("uniform"),
        workload=WorkloadSpec("one_each", {"k": 2}),
        model=ModelSpec(fack=20.0, fprog=1.0),
        seed=seed,
    ),
    "protocol": lambda seed: ExperimentSpec(
        name="smoke-protocol",
        topology=TopologySpec("line", {"n": 8}),
        algorithm=AlgorithmSpec("flood_max"),
        scheduler=SchedulerSpec("uniform"),
        workload=None,
        model=ModelSpec(fack=20.0, fprog=1.0),
        substrate="protocol",
        seed=seed,
    ),
    "rounds": lambda seed: ExperimentSpec(
        name="smoke-rounds",
        topology=_smoke_rgg(12, 2.0),
        algorithm=AlgorithmSpec("fmmb", {"c": 1.6}),
        workload=WorkloadSpec("one_each", {"k": 2}),
        model=ModelSpec(fack=20.0, fprog=1.0),
        substrate="rounds",
        seed=seed,
    ),
    "radio": lambda seed: ExperimentSpec(
        name="smoke-radio",
        topology=TopologySpec("star", {"n": 6}),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"nodes": [1, 2, 3]}),
        model=ModelSpec(params={"max_slots": 100_000}),
        substrate="radio",
        seed=seed,
    ),
    "sinr": lambda seed: ExperimentSpec(
        name="smoke-sinr",
        topology=_smoke_rgg(10, 2.0),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"k": 2}),
        model=ModelSpec(params={"max_slots": 200_000}),
        substrate="sinr",
        seed=seed,
    ),
}


def smoke_spec(name: str, seed: int = 3) -> ExperimentSpec:
    """A tiny, solvable spec exercising the named built-in substrate."""
    try:
        build = SMOKE_SPEC_BUILDERS[name]
    except KeyError:
        raise ExperimentError(
            f"no smoke spec for substrate {name!r}; recipes exist for "
            f"{', '.join(sorted(SMOKE_SPEC_BUILDERS))}"
        ) from None
    return build(seed)


def substrate_smoke(verbose: bool = False) -> dict[str, Any]:
    """Run every built-in substrate's smoke spec; raise unless all solve.

    CI's ``substrate-smoke`` step calls this; it covers exactly the
    substrates with a recipe in :data:`SMOKE_SPEC_BUILDERS` (third-party
    registrations run their own smoke tests).
    """
    from repro.experiments.runner import (  # circular at module load
        RunOptions,
        run,
    )

    results: dict[str, Any] = {}
    failures: list[str] = []
    for name in sorted(SMOKE_SPEC_BUILDERS):
        if name not in SUBSTRATES:  # pragma: no cover - defensive
            failures.append(f"{name}: not registered")
            continue
        result = run(smoke_spec(name), RunOptions.summary())
        results[name] = result
        if verbose:
            print(
                f"substrate {name}: solved={result.solved} "
                f"completion={result.completion_time:.3f} "
                f"wall={result.wall_time:.3f}s"
            )
        if not result.solved:
            failures.append(f"{name}: smoke spec did not solve")
    if failures:
        raise ExperimentError(
            "substrate smoke failed: " + "; ".join(failures)
        )
    return results
