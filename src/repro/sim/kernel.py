"""The discrete-event simulator.

A deliberately small, predictable kernel:

* ``schedule(delay, fn, *args)`` — relative scheduling; ``delay`` may be 0,
  producing a same-timestamp FIFO chain (used for the paper's zero-time
  broadcast/ack cascades in the lower-bound constructions).
* ``schedule_at(time, fn, *args)`` — absolute scheduling.
* ``run(until=...)`` — drain events in ``(time, priority, seq)`` order.
* an event budget (``max_events``) guards against accidental livelock in
  adversarial schedules.

The kernel is single-threaded and deterministic: given the same scheduling
calls it produces the same execution, which is what makes fixed-seed
experiments reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.ids import TIME_EPS, Time
from repro.sim.events import EventHandle, ScheduledEvent


class Simulator:
    """Heap-based discrete-event loop.

    Args:
        max_events: Hard cap on the number of events processed by
            :meth:`run`; exceeding it raises :class:`SimulationError`.  The
            default is generous for every experiment in this package while
            still catching runaway zero-delay loops quickly.
    """

    def __init__(self, max_events: int = 50_000_000):
        self._now: Time = 0.0
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._processed = 0
        self._max_events = max_events
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> Time:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-unfired events (including cancelled)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: Time,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero delays are explicitly allowed
        and run after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: Time,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now - TIME_EPS:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        event = ScheduledEvent(max(time, self._now), priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._advance_to(event.time)
            self._processed += 1
            if self._processed > self._max_events:
                raise SimulationError(
                    f"event budget exceeded ({self._max_events} events); "
                    "likely a zero-delay livelock"
                )
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Time | None = None) -> Time:
        """Drain the event queue.

        Args:
            until: If given, stop once the next event would fire strictly
                after ``until`` and fast-forward the clock to ``until``.

        Returns:
            The simulation time when execution stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until + TIME_EPS:
                    break
                self.step()
            if until is not None and until > self._now:
                self._advance_to(until)
            return self._now
        finally:
            self._running = False

    def _advance_to(self, time: Time) -> None:
        if time < self._now - TIME_EPS:
            raise SimulationError(
                f"time went backwards: {time} < {self._now}"
            )
        if time > self._now:
            self._now = time
