"""The discrete-event simulator.

A deliberately small, predictable kernel:

* ``schedule(delay, fn, *args)`` — relative scheduling; ``delay`` may be 0,
  producing a same-timestamp FIFO chain (used for the paper's zero-time
  broadcast/ack cascades in the lower-bound constructions).
* ``schedule_at(time, fn, *args)`` — absolute scheduling.
* ``schedule_many(items)`` — batched scheduling: fan one broadcast's
  deliveries into the queue in a single pass (heapify when the batch is
  large relative to the heap) instead of per-receiver pushes.
* ``run(until=...)`` — drain events in ``(time, priority, seq)`` order.
* an event budget (``max_events``) guards against accidental livelock in
  adversarial schedules.

Performance design (behavior-preserving — the pop order is fully
determined by the total ``(time, priority, seq)`` key, so none of this
changes any execution):

* Heap entries are plain lists compared element-wise in C (see
  :mod:`repro.sim.events`), not objects with a Python ``__lt__``.
* Events scheduled at the *current* instant with non-decreasing priority
  go to a FIFO side queue instead of the heap — zero-delay cascades cost
  O(1) per event instead of O(log n).  The run loop always fires the
  smaller of the two queue heads, so ordering is exactly the heap order.
* Cancellation is lazy: a cancelled entry stays queued (with its callback
  nulled) and is skipped at pop time; when cancelled entries exceed half
  the queue the kernel compacts in place, so dead events never accumulate.
  ``pending_events`` counts only live events; ``cancelled_events`` counts
  every cancellation for introspection.

The kernel is single-threaded and deterministic: given the same scheduling
calls it produces the same execution, which is what makes fixed-seed
experiments reproducible.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable

from repro.errors import SimulationError
from repro.ids import TIME_EPS, Time
from repro.sim.events import (
    STATE_CANCELLED,
    STATE_FIRED,
    STATE_PENDING,
    EventEntry,
    EventHandle,
)

#: Minimum batch size before ``schedule_many`` considers a bulk heapify.
_BULK_MIN = 16


class Simulator:
    """Heap-based discrete-event loop.

    Args:
        max_events: Hard cap on the number of events processed by
            :meth:`run`; exceeding it raises :class:`SimulationError`.  The
            default is generous for every experiment in this package while
            still catching runaway zero-delay loops quickly.
    """

    def __init__(self, max_events: int = 50_000_000):
        #: Current simulation time.  A plain attribute (not a property):
        #: it is read several times per event across the package, and the
        #: property indirection was measurable.  Treat as read-only.
        self.now: Time = 0.0
        self._heap: list[EventEntry] = []
        self._fifo: deque[EventEntry] = deque()
        self._seq = 0
        self._processed = 0
        self._cancelled_total = 0
        self._cancelled_pending = 0
        self._max_events = max_events
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-unfired live events (cancelled excluded)."""
        return len(self._heap) + len(self._fifo) - self._cancelled_pending

    @property
    def cancelled_events(self) -> int:
        """Total number of events ever cancelled (monotone counter)."""
        return self._cancelled_total

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: Time,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero delays are explicitly allowed
        and run after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: Time,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        now = self.now
        if time < now - TIME_EPS:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={now})"
            )
        if time < now:
            time = now
        entry: EventEntry = [time, priority, self._seq, fn, args, STATE_PENDING]
        self._seq += 1
        fifo = self._fifo
        # Same-timestamp FIFO fast path: an event for the current instant
        # whose priority does not precede the FIFO tail keeps the side
        # queue sorted by (time, priority, seq), so it can bypass the heap.
        if time == now and (not fifo or priority >= fifo[-1][1]):
            fifo.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return EventHandle(self, entry)

    def schedule_at_raw(
        self,
        time: Time,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancellation handle.

        Scheduling is identical; only the :class:`EventHandle` allocation
        is skipped.  For hot loops (per-receiver service events, deadline
        flushes) whose events are never cancelled.
        """
        # Body duplicated from schedule_at rather than shared through a
        # helper: this is the hottest entry point and an extra call frame
        # per event is exactly what the raw variant exists to avoid.
        now = self.now
        if time < now - TIME_EPS:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={now})"
            )
        if time < now:
            time = now
        entry: EventEntry = [time, priority, self._seq, fn, args, STATE_PENDING]
        self._seq += 1
        fifo = self._fifo
        if time == now and (not fifo or priority >= fifo[-1][1]):
            fifo.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    def schedule_many(
        self,
        items: Iterable[tuple[Time, Callable[..., None], tuple[Any, ...]]],
        priority: int = 0,
    ) -> list[EventHandle]:
        """Schedule a batch of ``(time, fn, args)`` events in one pass.

        Equivalent to calling :meth:`schedule_at` once per item in order
        (sequence numbers — and therefore tie-breaking — are identical),
        but large batches are appended and re-heapified in O(heap + batch)
        instead of O(batch · log heap) pushes.  Used by the MAC layers to
        fan one broadcast's deliveries out to all G'-neighbors.
        """
        return [
            EventHandle(self, entry)
            for entry in self._insert_batch(items, priority)
        ]

    def schedule_many_entries(
        self,
        items: Iterable[tuple[Time, Callable[..., None], tuple[Any, ...]]],
        priority: int = 0,
    ) -> list[EventEntry]:
        """Advanced :meth:`schedule_many`: returns the raw queue entries.

        For callers that may need to bulk-cancel the batch later via
        :meth:`cancel_entries` without paying one :class:`EventHandle`
        allocation per event (the MAC layers' delivery fan-out under fault
        injection).  Entries are opaque — treat them as tokens.
        """
        return self._insert_batch(items, priority)

    def cancel_entries(self, entries: Iterable[EventEntry]) -> None:
        """Cancel raw entries from :meth:`schedule_many_entries` in bulk.

        Idempotent per entry (fired or already-cancelled entries are
        skipped); the compaction check runs once for the whole batch.
        """
        cancelled = 0
        for entry in entries:
            if entry[5] == STATE_PENDING:
                entry[5] = STATE_CANCELLED
                entry[3] = None
                entry[4] = ()
                cancelled += 1
        if cancelled:
            self._cancelled_total += cancelled
            self._cancelled_pending += cancelled
            pending = self._cancelled_pending
            if pending > 64 and pending * 2 >= len(self._heap) + len(self._fifo):
                self._compact()

    def schedule_many_raw(
        self,
        items: Iterable[tuple[Time, Callable[..., None], tuple[Any, ...]]],
        priority: int = 0,
    ) -> None:
        """Fire-and-forget :meth:`schedule_many`: no cancellation handles.

        Scheduling (sequence numbers, execution order) is identical; only
        the per-event :class:`EventHandle` allocation is skipped.  Use when
        the caller will never cancel the batch — e.g. delivery fan-out on a
        fault-free standard MAC layer, where nothing aborts.
        """
        self._insert_batch(items, priority)

    def _insert_batch(
        self,
        items: Iterable[tuple[Time, Callable[..., None], tuple[Any, ...]]],
        priority: int,
    ) -> list[EventEntry]:
        now = self.now
        seq = self._seq
        entries: list[EventEntry] = []
        for time, fn, args in items:
            if time < now - TIME_EPS:
                raise SimulationError(
                    f"cannot schedule into the past (t={time} < now={now})"
                )
            if time < now:
                time = now
            entries.append([time, priority, seq, fn, args, STATE_PENDING])
            seq += 1
        self._seq = seq
        heap = self._heap
        if len(entries) >= _BULK_MIN and len(entries) * 8 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        return entries

    # ------------------------------------------------------------------
    # Cancellation bookkeeping (called by EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_total += 1
        self._cancelled_pending += 1
        pending = self._cancelled_pending
        if pending > 64 and pending * 2 >= len(self._heap) + len(self._fifo):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries (in place — the run loop holds aliases)."""
        heap = self._heap
        heap[:] = [e for e in heap if e[5] == STATE_PENDING]
        heapq.heapify(heap)
        fifo = self._fifo
        if fifo:
            live = [e for e in fifo if e[5] == STATE_PENDING]
            fifo.clear()
            fifo.extend(live)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _peek_live(self) -> tuple[EventEntry | None, bool]:
        """Next live entry and whether it sits in the FIFO side queue.

        Prunes cancelled entries from both queue heads as a side effect.
        """
        heap = self._heap
        fifo = self._fifo
        heappop = heapq.heappop
        while heap and heap[0][5] == STATE_CANCELLED:
            heappop(heap)
            self._cancelled_pending -= 1
        while fifo and fifo[0][5] == STATE_CANCELLED:
            fifo.popleft()
            self._cancelled_pending -= 1
        if not fifo:
            return (heap[0], False) if heap else (None, False)
        if not heap:
            return fifo[0], True
        # List comparison resolves on (time, priority, seq): seq is unique.
        return (fifo[0], True) if fifo[0] < heap[0] else (heap[0], False)

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        entry, from_fifo = self._peek_live()
        if entry is None:
            return False
        if from_fifo:
            self._fifo.popleft()
        else:
            heapq.heappop(self._heap)
        self._advance_to(entry[0])
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"event budget exceeded ({self._max_events} events); "
                "likely a zero-delay livelock"
            )
        entry[5] = STATE_FIRED
        entry[3](*entry[4])
        return True

    def run(self, until: Time | None = None) -> Time:
        """Drain the event queue.

        Args:
            until: If given, stop once the next event would fire strictly
                after ``until`` and fast-forward the clock to ``until``.

        Returns:
            The simulation time when execution stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        heappop = heapq.heappop
        popleft = self._fifo.popleft
        fifo = self._fifo
        heap = self._heap
        max_events = self._max_events
        cancelled = STATE_CANCELLED
        try:
            # The body below is _peek_live + step fused into one loop —
            # the per-event call overhead matters at millions of events.
            while True:
                while heap and heap[0][5] == cancelled:
                    heappop(heap)
                    self._cancelled_pending -= 1
                while fifo and fifo[0][5] == cancelled:
                    popleft()
                    self._cancelled_pending -= 1
                if fifo:
                    entry = fifo[0]
                    from_fifo = True
                    if heap and heap[0] < entry:
                        entry = heap[0]
                        from_fifo = False
                elif heap:
                    entry = heap[0]
                    from_fifo = False
                else:
                    break
                time = entry[0]
                if until is not None and time > until + TIME_EPS:
                    break
                if from_fifo:
                    popleft()
                else:
                    heappop(heap)
                if time > self.now:
                    self.now = time
                self._processed += 1
                if self._processed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events} events); "
                        "likely a zero-delay livelock"
                    )
                entry[5] = STATE_FIRED
                entry[3](*entry[4])
            if until is not None and until > self.now:
                self._advance_to(until)
            return self.now
        finally:
            self._running = False

    def _advance_to(self, time: Time) -> None:
        if time < self.now - TIME_EPS:
            raise SimulationError(
                f"time went backwards: {time} < {self.now}"
            )
        if time > self.now:
            self.now = time
