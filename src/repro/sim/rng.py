"""Hierarchical, reproducible randomness.

The paper models randomness by handing each node "sufficiently many random
bits" at the start of the execution.  We realize this with a tree of named
random streams: the experiment owns a root :class:`RandomSource`, and every
component (the message scheduler, each node automaton, each FMMB subroutine)
derives an independent child stream with :meth:`RandomSource.child`.

Key property: a component's draws are unaffected by how many draws *other*
components make, so adding instrumentation or reordering unrelated code never
perturbs an experiment.  Child seeds are derived with SHA-256 over the parent
seed and the child name, which is stable across processes and Python
versions (unlike ``hash``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a parent seed and a name."""
    digest = hashlib.sha256(f"{parent_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """A named, seeded random stream with child-stream derivation.

    Thin wrapper around :class:`random.Random` exposing only the operations
    the package uses, plus :meth:`child` for hierarchy.
    """

    def __init__(self, seed: int, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._rng = random.Random(self.seed)
        # Tree-wide wrapper-draw tally, shared by reference with every
        # derived child stream (a one-element list so children mutate the
        # root's cell).  Draws taken through ``raw`` bindings bypass it.
        self._draws = [0]

    def child(self, name: str) -> "RandomSource":
        """An independent stream addressed by ``name`` under this stream."""
        node = RandomSource(derive_seed(self.seed, name), f"{self.name}/{name}")
        node._draws = self._draws
        return node

    @property
    def draws(self) -> int:
        """Wrapper-level draws taken across this stream's whole tree.

        A profiling gauge, not an exact entropy count: hot loops that
        bind ``raw`` methods directly are invisible here, and
        :meth:`bitstring` counts as one draw.  The value is deterministic
        for a given spec, so it doubles as a cheap divergence sentinel.
        """
        return self._draws[0]

    @property
    def raw(self) -> random.Random:
        """The backing :class:`random.Random` stream.

        Hot loops may bind its methods directly (e.g. ``random``,
        ``uniform``) to skip the wrapper call frames; every draw taken
        through ``raw`` is draw-for-draw identical to the corresponding
        wrapper method, so reproducibility is unaffected.
        """
        return self._rng

    @property
    def randbelow_raw(self):
        """Bound fast uniform-index draw: ``randbelow_raw(n)`` in [0, n).

        ``seq[rng.randbelow_raw(len(seq))]`` is draw-for-draw identical
        to ``rng.choice(seq)`` — CPython implements ``choice`` exactly
        that way.  This is the package's single point of dependence on
        the private ``random.Random._randbelow``; the equivalence is
        pinned by a unit test so a future Python changing ``choice``'s
        implementation fails loudly there, not as a mysterious
        golden-trace mismatch.
        """
        return self._rng._randbelow

    # ------------------------------------------------------------------
    # Draw operations
    # ------------------------------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        self._draws[0] += 1
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        self._draws[0] += 1
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi], inclusive."""
        self._draws[0] += 1
        return self._rng.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        self._draws[0] += 1
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct elements without replacement."""
        self._draws[0] += 1
        return self._rng.sample(seq, count)

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher–Yates shuffle."""
        self._draws[0] += 1
        self._rng.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        self._draws[0] += 1
        return self._rng.random() < p

    def bitstring(self, length: int) -> tuple[int, ...]:
        """A uniform random bit tuple of the given length.

        Used by the FMMB election subroutine, where each active node draws a
        ``4·log n``-bit string (paper §4.2).
        """
        self._draws[0] += 1
        return tuple(self._rng.getrandbits(1) for _ in range(length))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(name={self.name!r}, seed={self.seed})"
