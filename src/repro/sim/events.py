"""Event records and cancellation handles for the DES kernel.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a monotonically
increasing counter assigned at scheduling time, which makes same-time,
same-priority events run in FIFO order — this is what lets the package
express the paper's "no time passes" event chains deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ids import Time


@dataclass(order=True)
class ScheduledEvent:
    """Internal heap entry for one scheduled callback.

    Attributes:
        time: Absolute simulation time at which to fire.
        priority: Secondary sort key; lower fires first at equal times.
        seq: Tertiary FIFO tie-breaker assigned by the simulator.
        fn: The callback (compared never; excluded from ordering).
        args: Positional arguments passed to ``fn``.
        cancelled: Set by :meth:`EventHandle.cancel`; fired events are skipped.
    """

    time: Time
    priority: int
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation token returned by :meth:`repro.sim.kernel.Simulator.schedule`.

    Holding a handle does not keep the event alive; it only allows the owner
    to cancel it before it fires.  Cancelling an already-fired or
    already-cancelled event is a harmless no-op, which keeps timer code in
    the enhanced MAC layer simple.
    """

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent):
        self._event = event

    @property
    def time(self) -> Time:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, {state})"
