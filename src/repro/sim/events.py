"""Event records and cancellation handles for the DES kernel.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a monotonically
increasing counter assigned at scheduling time, which makes same-time,
same-priority events run in FIFO order — this is what lets the package
express the paper's "no time passes" event chains deterministically.

Hot-path representation: an event is a plain 6-element list
``[time, priority, seq, fn, args, state]`` (see the ``EVT_*`` index
constants).  Python compares lists element-wise in C, and ``seq`` is unique
per simulator, so heap comparisons resolve on the first three scalar slots
without ever calling back into Python — this is what removed the
dataclass-``__lt__`` overhead that used to dominate kernel profiles.
``state`` tracks the event lifecycle (pending → fired | cancelled);
cancellation nulls ``fn``/``args`` so a cancelled entry pins no objects
alive while it waits to be popped or compacted out of the heap.

:class:`ScheduledEvent` survives as a read-only view over an entry for
introspection and debugging; the kernel itself never allocates one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.ids import Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

#: Index of the absolute firing time in an event entry.
EVT_TIME = 0
#: Index of the priority (lower fires first at equal times).
EVT_PRIORITY = 1
#: Index of the FIFO tie-breaker sequence number.
EVT_SEQ = 2
#: Index of the callback (``None`` once cancelled).
EVT_FN = 3
#: Index of the callback's positional arguments.
EVT_ARGS = 4
#: Index of the lifecycle state.
EVT_STATE = 5

#: Lifecycle states stored at ``EVT_STATE``.
STATE_PENDING = 0
STATE_FIRED = 1
STATE_CANCELLED = 2

#: Type alias for the raw heap entry.  The kernel inlines entry
#: construction at its three scheduling entry points (a call frame per
#: event is measurable); keep those literals in sync with the EVT_*
#: layout above.
EventEntry = list


class ScheduledEvent:
    """Read-only view of one scheduled callback (debugging/introspection).

    Attributes mirror the historical dataclass: ``time``, ``priority``,
    ``seq``, ``fn``, ``args``, ``cancelled``.  Ordering compares
    ``(time, priority, seq)``.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: EventEntry):
        self._entry = entry

    @property
    def time(self) -> Time:
        return self._entry[EVT_TIME]

    @property
    def priority(self) -> int:
        return self._entry[EVT_PRIORITY]

    @property
    def seq(self) -> int:
        return self._entry[EVT_SEQ]

    @property
    def fn(self) -> Callable[..., None] | None:
        return self._entry[EVT_FN]

    @property
    def args(self) -> tuple[Any, ...]:
        return self._entry[EVT_ARGS]

    @property
    def cancelled(self) -> bool:
        return self._entry[EVT_STATE] == STATE_CANCELLED

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self._entry[:3] < other._entry[:3]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduledEvent(t={self.time!r}, priority={self.priority}, "
            f"seq={self.seq}, state={self._entry[EVT_STATE]})"
        )


class EventHandle:
    """Cancellation token returned by :meth:`repro.sim.kernel.Simulator.schedule`.

    Holding a handle does not keep the event's callback alive after
    cancellation; it only allows the owner to cancel the event before it
    fires.  Cancelling an already-fired or already-cancelled event is a
    harmless no-op, which keeps timer code in the enhanced MAC layer simple.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: EventEntry):
        self._sim = sim
        self._entry = entry

    @property
    def time(self) -> Time:
        """Scheduled firing time."""
        return self._entry[EVT_TIME]

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._entry[EVT_STATE] == STATE_CANCELLED

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        entry = self._entry
        if entry[EVT_STATE] == STATE_PENDING:
            entry[EVT_STATE] = STATE_CANCELLED
            entry[EVT_FN] = None
            entry[EVT_ARGS] = ()
            self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, {state})"
