"""Discrete-event simulation kernel.

This subpackage is the substrate on which the abstract MAC layer and all
algorithms run.  It provides:

* :class:`~repro.sim.kernel.Simulator` — a heap-based event loop with
  deterministic tie-breaking for same-timestamp events (FIFO in scheduling
  order), cancellable events, and an event budget guard.
* :class:`~repro.sim.events.EventHandle` — a cancellation token.
* :class:`~repro.sim.rng.RandomSource` — hierarchical seeded randomness so
  every component (scheduler, each node, each subroutine) draws from an
  independent, reproducible stream.
"""

from repro.sim.events import EventHandle, ScheduledEvent
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomSource

__all__ = ["EventHandle", "ScheduledEvent", "Simulator", "RandomSource"]
