"""Closed-form bound predictions for every cell of the paper's Figure 1.

Where the paper proves an explicit constant we use it (Theorem 3.16's
``t1``); where the statement is asymptotic we expose the bound's *shape*
with unit constants, which is what the benchmarks compare scaling against.
"""

from __future__ import annotations

from repro.core.fmmb.config import log2n
from repro.errors import ExperimentError
from repro.ids import Time


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ExperimentError(message)


def bmmb_r_restricted_bound(
    diameter: int, k: int, r: int, fack: Time, fprog: Time
) -> Time:
    """Theorem 3.16's explicit bound for BMMB with an ``r``-restricted G'.

    ``t1 = (D + (r+1)·k − 2)·Fprog + r·(k−1)·Fack``.
    """
    _require(diameter >= 0 and k >= 1 and r >= 1, "need D >= 0, k >= 1, r >= 1")
    return (diameter + (r + 1) * k - 2) * fprog + r * (k - 1) * fack


def bmmb_gg_bound(diameter: int, k: int, fack: Time, fprog: Time) -> Time:
    """The ``G' = G`` cell: Theorem 3.16 with ``r = 1``.

    1-restriction forces ``E' = E``, so this specializes the r-restricted
    bound and matches the ``O(D·Fprog + k·Fack)`` shape of [30].
    """
    return bmmb_r_restricted_bound(diameter, k, 1, fack, fprog)


def bmmb_arbitrary_bound(diameter: int, k: int, fack: Time) -> Time:
    """Theorem 3.1: BMMB finishes within ``(D + k)·Fack`` for arbitrary G'.

    The proof's key claim gives exactly ``t_k(v)·Fack ≤ (D + k)·Fack``.
    """
    _require(diameter >= 0 and k >= 1, "need D >= 0 and k >= 1")
    return (diameter + k) * fack


def figure2_lower_bound(depth: int, fack: Time) -> Time:
    """Lemma 3.20's concrete floor on the Figure 2 network.

    The frontier adversary holds each of the ``depth − 1`` hops of each
    line for a full ``Fack``.
    """
    _require(depth >= 2, "need depth >= 2")
    return (depth - 1) * fack


def choke_lower_bound(k: int, fack: Time) -> Time:
    """Lemma 3.18's concrete floor on the choke-star network.

    The hub forwards ``k − 1`` stored messages (its own plus the leaves',
    minus the one the sink hears directly from the hub's first send) at one
    per ``Fack``.
    """
    _require(k >= 2, "need k >= 2")
    return (k - 1) * fack


def combined_lower_bound(depth: int, k: int, fack: Time) -> Time:
    """Theorem 3.17 on the composed network: ``max(D−1, k−2)·Fack``.

    Since ``max(a, b) ≥ (a+b)/2`` this certifies the ``Ω((D+k)·Fack)``
    shape.
    """
    _require(depth >= 2 and k >= 2, "need depth >= 2 and k >= 2")
    return max(depth - 1, k - 2) * fack


def fmmb_bound_rounds(diameter: int, k: int, n: int, c: float = 1.6) -> float:
    """Theorem 4.1's round count shape (unit constants).

    ``D·log n + k·log n + log³ n`` — the ``c`` factors (``c²`` on the log
    terms, ``c⁴`` on the cube) are folded in for budget comparisons.
    """
    _require(diameter >= 0 and k >= 1 and n >= 1, "need D >= 0, k >= 1, n >= 1")
    ln = log2n(n)
    c2 = c * c
    return c2 * (diameter * ln + k * ln) + c2 * c2 * ln**3


def fmmb_bound_time(
    diameter: int, k: int, n: int, fprog: Time, c: float = 1.6
) -> Time:
    """Theorem 4.1's time bound shape: rounds × ``Fprog`` (no ``Fack``!)."""
    return fmmb_bound_rounds(diameter, k, n, c) * fprog
