"""Analysis: closed-form bounds, scaling fits, and report tables.

The paper's evaluation is its table of asymptotic results (Figure 1); this
package provides the machinery the benchmarks use to compare measured
completion times against those bounds:

* :mod:`~repro.analysis.bounds` — closed-form predictions for every cell of
  Figure 1 (with the explicit constants the proofs yield, where available);
* :mod:`~repro.analysis.fitting` — least-squares scaling fits (is measured
  time linear in ``D``? in ``k``? with what slope?);
* :mod:`~repro.analysis.tables` — ASCII rendering of paper-style tables;
* :mod:`~repro.analysis.stats` — small summary-statistics helpers.
"""

from repro.analysis.bounds import (
    bmmb_arbitrary_bound,
    bmmb_gg_bound,
    bmmb_r_restricted_bound,
    choke_lower_bound,
    figure2_lower_bound,
    fmmb_bound_rounds,
    fmmb_bound_time,
)
from repro.analysis.fitting import linear_fit
from repro.analysis.tables import render_table

__all__ = [
    "bmmb_gg_bound",
    "bmmb_r_restricted_bound",
    "bmmb_arbitrary_bound",
    "figure2_lower_bound",
    "choke_lower_bound",
    "fmmb_bound_rounds",
    "fmmb_bound_time",
    "linear_fit",
    "render_table",
]
