"""Paper-style ASCII tables for benchmark output."""

from __future__ import annotations

from typing import Mapping, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    Args:
        rows: One mapping per row; missing keys render as blanks.
        columns: Column order; defaults to the union of keys in first-seen
            order.
        title: Optional heading line.

    Returns:
        The table as a single string (no trailing newline).
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)
