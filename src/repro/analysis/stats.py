"""Small summary-statistics helpers for repeated-seed experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of one measured series."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def half_width_95(self) -> float:
        """Approximate 95% confidence half-width (normal, 1.96·σ/√n)."""
        if self.count < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.count)


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty series."""
    if not values:
        raise ExperimentError("cannot summarize an empty series")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def success_rate(outcomes: Sequence[bool]) -> float:
    """Fraction of True outcomes (for w.h.p. claims measured over seeds)."""
    if not outcomes:
        raise ExperimentError("cannot compute a rate over no outcomes")
    return sum(1 for ok in outcomes if ok) / len(outcomes)
