"""Small summary-statistics helpers for repeated-seed experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of one measured series.

    Order statistics (:attr:`median`, :attr:`p05`, :attr:`p95`) are
    available when the summary was produced by :func:`summarize`, which
    retains the sorted series; a hand-built ``Summary`` without values
    raises on them.  ``values`` is excluded from equality so summaries
    still compare by their scalar statistics.
    """

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    values: tuple[float, ...] = field(default=(), compare=False, repr=False)

    @property
    def half_width_95(self) -> float:
        """Approximate 95% confidence half-width (normal, 1.96·σ/√n)."""
        if self.count < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.count)

    def _order_statistic(self, q: float) -> float:
        if not self.values:
            raise ExperimentError(
                "order statistics need the retained series; build this "
                "Summary with summarize()"
            )
        return percentile(self.values, q)

    @property
    def median(self) -> float:
        """The 50th percentile of the summarized series."""
        return self._order_statistic(50.0)

    @property
    def p05(self) -> float:
        """The 5th percentile of the summarized series."""
        return self._order_statistic(5.0)

    @property
    def p95(self) -> float:
        """The 95th percentile of the summarized series."""
        return self._order_statistic(95.0)


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty series."""
    if not values:
        raise ExperimentError("cannot summarize an empty series")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        values=tuple(sorted(values)),
    )


def success_rate(outcomes: Sequence[bool]) -> float:
    """Fraction of True outcomes (for w.h.p. claims measured over seeds)."""
    if not outcomes:
        raise ExperimentError("cannot compute a rate over no outcomes")
    return sum(1 for ok in outcomes if ok) / len(outcomes)


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (linear interpolation between ranks).

    Args:
        values: A non-empty series (need not be sorted).
        p: Percentile in ``[0, 100]``; 50 is the median.
    """
    if not values:
        raise ExperimentError("cannot take a percentile of an empty series")
    if not 0.0 <= p <= 100.0:
        raise ExperimentError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def percentiles(
    values: Sequence[float], ps: Sequence[float] = (50.0, 90.0, 99.0)
) -> dict[float, float]:
    """Several percentiles of one series (see :func:`percentile`)."""
    return {p: percentile(values, p) for p in ps}
