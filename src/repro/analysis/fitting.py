"""Least-squares scaling fits for benchmark series.

Pure python on purpose: ``repro.analysis`` sits on the package import
path, and numpy is an optional extra (the ``vectorized`` reception
engine's) — a degree-1 least-squares fit needs nothing beyond
``math.fsum``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class LinearFit:
    """Result of a one-dimensional linear fit ``y ≈ slope·x + intercept``.

    ``r_squared`` is the coefficient of determination; a value near 1 on a
    (parameter, completion-time) series is the evidence the benchmarks use
    for "time is linear in D" style claims.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit ``ys ≈ slope·xs + intercept`` by least squares."""
    if len(xs) != len(ys):
        raise ExperimentError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise ExperimentError("need at least two points to fit a line")
    n = len(xs)
    x = [float(v) for v in xs]
    y = [float(v) for v in ys]
    mean_x = math.fsum(x) / n
    mean_y = math.fsum(y) / n
    ss_xx = math.fsum((xi - mean_x) ** 2 for xi in x)
    if ss_xx == 0.0:
        raise ExperimentError("need at least two distinct x values to fit a line")
    ss_xy = math.fsum((xi - mean_x) * (yi - mean_y) for xi, yi in zip(x, y))
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    ss_res = math.fsum((yi - (slope * xi + intercept)) ** 2 for xi, yi in zip(x, y))
    ss_tot = math.fsum((yi - mean_y) ** 2 for yi in y)
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Ratio of endpoint growth rates: (y_n/y_0) / (x_n/x_0).

    ≈ 1 for linear scaling, ≪ 1 for sublinear, ≫ 1 for superlinear; a
    cruder but assumption-free companion to :func:`linear_fit`.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ExperimentError("need two aligned points")
    if xs[0] == 0 or ys[0] == 0:
        raise ExperimentError("growth ratio undefined from a zero start")
    return (ys[-1] / ys[0]) / (xs[-1] / xs[0])
