"""Terminal visualizations: embedded networks and measurement series.

Pure-text rendering (no plotting dependency is installed or needed):

* :func:`render_embedding` — scatter an embedded dual graph onto a
  character grid (MIS/backbone members can be highlighted);
* :func:`render_series` — a quick bar chart of a (label, value) series,
  used by examples to show scaling shapes inline.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import TopologyError
from repro.ids import NodeId
from repro.topology.dualgraph import DualGraph


def render_embedding(
    dual: DualGraph,
    width: int = 60,
    height: int = 20,
    highlight: Iterable[NodeId] = (),
    highlight_char: str = "#",
    node_char: str = "o",
) -> str:
    """Render an embedded network as a character grid.

    Highlighted nodes (e.g. MIS members) draw as ``highlight_char``; other
    nodes as ``node_char``.  Collisions on a cell prefer the highlight.

    Raises :class:`TopologyError` when the graph has no embedding.
    """
    if dual.positions is None:
        raise TopologyError("render_embedding requires an embedded network")
    if width < 2 or height < 2:
        raise TopologyError("grid must be at least 2x2")
    xs = [p[0] for p in dual.positions.values()]
    ys = [p[1] for p in dual.positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    highlighted = set(highlight)

    def cell(node: NodeId) -> tuple[int, int]:
        x, y = dual.positions[node]  # type: ignore[index]
        col = round((x - min_x) / span_x * (width - 1))
        row = round((max_y - y) / span_y * (height - 1))
        return row, col

    for node in dual.nodes:
        row, col = cell(node)
        current = grid[row][col]
        if node in highlighted:
            grid[row][col] = highlight_char
        elif current == " ":
            grid[row][col] = node_char
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def render_series(
    series: Sequence[tuple[object, float]] | Mapping[object, float],
    width: int = 40,
    bar_char: str = "█",
) -> str:
    """Render (label, value) pairs as a horizontal bar chart."""
    if isinstance(series, Mapping):
        pairs = list(series.items())
    else:
        pairs = list(series)
    if not pairs:
        raise TopologyError("cannot render an empty series")
    values = [float(v) for _, v in pairs]
    top = max(max(values), 1e-9)
    label_width = max(len(str(label)) for label, _ in pairs)
    lines = []
    for label, value in pairs:
        bar = bar_char * max(1, round(float(value) / top * width))
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)
