"""The MMB problem, including the online-arrival generalization.

The paper's main body injects all ``k`` messages at time 0, but its
footnote 4 points at the general version where messages arrive in an online
manner (studied in [30]).  BMMB handles online arrivals unchanged — an
``arrive`` event at any time enqueues the message — so this module provides
the workload side: an :class:`ArrivalSchedule` with generators for the
usual arrival patterns, plus conversion from the static
:class:`~repro.ids.MessageAssignment`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.ids import Message, MessageAssignment, NodeId, Time
from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class Arrival:
    """One environment injection: ``message`` arrives at ``node`` at ``time``."""

    time: Time
    node: NodeId
    message: Message


@dataclass(frozen=True)
class ArrivalSchedule:
    """A time-ordered list of message arrivals.

    MMB-well-formedness (each message arrives exactly once) is validated at
    construction.
    """

    arrivals: tuple[Arrival, ...]

    def __post_init__(self) -> None:
        mids = [a.message.mid for a in self.arrivals]
        if len(mids) != len(set(mids)):
            raise ExperimentError("a message may arrive only once (MMB rules)")
        if any(a.time < 0 for a in self.arrivals):
            raise ExperimentError("arrival times must be non-negative")

    @property
    def k(self) -> int:
        """Number of injected messages."""
        return len(self.arrivals)

    def sorted_by_time(self) -> list[Arrival]:
        """Arrivals in injection order (stable for equal times)."""
        return sorted(self.arrivals, key=lambda a: (a.time, a.node, a.message.mid))

    def arrival_times(self) -> dict[str, Time]:
        """Message id → its arrival time."""
        return {a.message.mid: a.time for a in self.arrivals}

    def as_assignment(self) -> MessageAssignment:
        """The node → messages view (drops timing; used for validation)."""
        messages: dict[NodeId, tuple[Message, ...]] = {}
        for arrival in self.sorted_by_time():
            messages[arrival.node] = messages.get(arrival.node, ()) + (
                arrival.message,
            )
        return MessageAssignment(messages)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def at_time_zero(assignment: MessageAssignment) -> "ArrivalSchedule":
        """The paper's main-body workload: everything arrives at time 0."""
        arrivals = [
            Arrival(0.0, node, message)
            for node, messages in sorted(assignment.messages.items())
            for message in messages
        ]
        return ArrivalSchedule(tuple(arrivals))

    @staticmethod
    def staggered(
        node: NodeId, count: int, spacing: Time, prefix: str = "m"
    ) -> "ArrivalSchedule":
        """``count`` messages at one node, one every ``spacing`` time units."""
        if count < 1 or spacing < 0:
            raise ExperimentError("need count >= 1 and spacing >= 0")
        arrivals = [
            Arrival(i * spacing, node, Message(f"{prefix}{i}", node))
            for i in range(count)
        ]
        return ArrivalSchedule(tuple(arrivals))

    @staticmethod
    def poisson(
        nodes: list[NodeId],
        count: int,
        mean_gap: Time,
        rng: RandomSource,
        prefix: str = "m",
    ) -> "ArrivalSchedule":
        """``count`` messages at exponential gaps, each at a random node.

        The classic online workload: a memoryless arrival process spread
        over the network.
        """
        if not nodes or count < 1 or mean_gap <= 0:
            raise ExperimentError("need nodes, count >= 1, mean_gap > 0")
        import math

        arrivals = []
        t = 0.0
        for i in range(count):
            t += -mean_gap * math.log(max(rng.random(), 1e-12))
            node = rng.choice(nodes)
            arrivals.append(Arrival(t, node, Message(f"{prefix}{i}", node)))
        return ArrivalSchedule(tuple(arrivals))
