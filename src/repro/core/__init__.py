"""The paper's algorithms: BMMB, FMMB, and comparison baselines.

* :mod:`~repro.core.bmmb` — Basic Multi-Message Broadcast (§3.2.2): the
  FIFO flooding protocol whose analysis occupies §3 of the paper.
* :mod:`~repro.core.fmmb` — Fast Multi-Message Broadcast (§4): the
  enhanced-model algorithm built from an MIS subroutine, a gathering
  subroutine, and overlay spreading.
* :mod:`~repro.core.baselines` — naive comparators (sequential flooding)
  that quantify the value of BMMB's pipelining.
"""

from repro.core.bmmb import BMMBNode
from repro.core.baselines import SequentialFloodingCoordinator

__all__ = ["BMMBNode", "SequentialFloodingCoordinator"]
