"""Network structuring: a connected dominating set backbone (paper §5).

The paper's conclusion lists "network structuring" among the natural
follow-on problems, citing Censor-Hillel–Gilbert–Lynch–Newport [4]
(structuring *unreliable* radio networks).  The standard structuring target
is a **connected dominating set** (CDS): a backbone such that every node
either belongs to it or neighbors it, and the backbone is connected — the
substrate for routing, aggregation, and scheduled broadcast.

We build the CDS the classical way from the pieces FMMB already
constructs: take a maximal independent set (dominating by maximality) and
add **connectors** — for each overlay edge (MIS pair within 3 ``G``-hops),
the interior nodes of one shortest ``G``-path between the pair.  The result
is connected within every component of ``G`` and has size
``O(|MIS|)`` on grey-zone (bounded-growth) networks.

:func:`cds_broadcast_schedule` then demonstrates a backbone use: a single
source message is routed along a BFS tree of the backbone, giving a
collision-free dissemination plan whose length is ``O(D)`` backbone hops.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.fmmb.mis import require_valid_mis
from repro.core.fmmb.overlay import build_overlay
from repro.errors import AlgorithmError, TopologyError
from repro.ids import NodeId
from repro.topology.dualgraph import DualGraph


@dataclass(frozen=True)
class Backbone:
    """A CDS backbone of ``G``.

    Attributes:
        members: All backbone nodes (MIS + connectors).
        mis: The independent "anchor" nodes.
        connectors: The path nodes added to connect anchor pairs.
        graph: The backbone's induced subgraph of ``G``.
    """

    members: frozenset[NodeId]
    mis: frozenset[NodeId]
    connectors: frozenset[NodeId]
    graph: nx.Graph

    @property
    def size(self) -> int:
        """Number of backbone nodes."""
        return len(self.members)


def build_cds(dual: DualGraph, mis: frozenset[NodeId]) -> Backbone:
    """Construct a connected dominating set from a valid MIS.

    Raises :class:`AlgorithmError` if ``mis`` is not independent+maximal.
    """
    require_valid_mis(dual, mis)
    overlay = build_overlay(dual, mis)
    connectors: set[NodeId] = set()
    g = dual.reliable_graph
    for u, v in overlay.edges:
        path = nx.shortest_path(g, u, v)
        connectors.update(path[1:-1])
    members = frozenset(mis | connectors)
    induced = g.subgraph(members).copy()
    return Backbone(
        members=members,
        mis=mis,
        connectors=frozenset(connectors - mis),
        graph=induced,
    )


def is_dominating(dual: DualGraph, members: frozenset[NodeId]) -> bool:
    """True iff every node is in ``members`` or ``G``-adjacent to it."""
    for v in dual.nodes:
        if v not in members and not (dual.reliable_neighbors(v) & members):
            return False
    return True


def is_connected_within_components(dual: DualGraph, backbone: Backbone) -> bool:
    """True iff the backbone is connected inside every ``G``-component."""
    for component in dual.components():
        present = [v for v in component if v in backbone.members]
        if len(present) <= 1:
            continue
        sub = backbone.graph.subgraph(present)
        if not nx.is_connected(sub):
            return False
    return True


def validate_cds(dual: DualGraph, backbone: Backbone) -> None:
    """Raise :class:`AlgorithmError` unless the backbone is a valid CDS."""
    if not is_dominating(dual, backbone.members):
        raise AlgorithmError("backbone is not dominating")
    if not is_connected_within_components(dual, backbone):
        raise AlgorithmError("backbone is not connected within components")


@dataclass(frozen=True)
class BroadcastStep:
    """One step of a scheduled backbone broadcast: ``sender`` transmits,
    covering its ``G``-neighborhood; ``new_nodes`` hear it first here."""

    step: int
    sender: NodeId
    new_nodes: frozenset[NodeId]


def cds_broadcast_schedule(
    dual: DualGraph, backbone: Backbone, source: NodeId
) -> list[BroadcastStep]:
    """A sequential broadcast plan over the backbone from ``source``.

    The plan walks a BFS tree of the backbone rooted at the source's
    dominator; each step one backbone node transmits, and the plan ends
    when every node of the source's component has been covered.  Length is
    at most ``|backbone ∩ component|`` steps — and because consecutive
    transmitters are backbone-adjacent, the plan's depth tracks ``O(D)``.

    This is a *schedule* (an existence proof of an efficient backbone
    dissemination), not a distributed protocol; the distributed version is
    BMMB restricted to backbone relays.
    """
    if not dual.reliable_graph.has_node(source):
        raise TopologyError(f"unknown source {source}")
    component = dual.component_of(source)
    if source in backbone.members:
        root = source
    else:
        dominators = dual.reliable_neighbors(source) & backbone.members
        if not dominators:
            raise AlgorithmError(f"source {source} has no dominator")
        root = min(dominators)
    covered: set[NodeId] = {source}
    schedule: list[BroadcastStep] = []
    order = nx.bfs_tree(backbone.graph.subgraph(
        [v for v in component if v in backbone.members]
    ), root)
    for step, sender in enumerate(nx.topological_sort(order)):
        reach = (dual.reliable_neighbors(sender) | {sender}) & component
        new = frozenset(reach - covered)
        covered.update(reach)
        schedule.append(BroadcastStep(step=step, sender=sender, new_nodes=new))
        if covered >= component:
            break
    if not covered >= component:
        raise AlgorithmError("backbone schedule failed to cover the component")
    return schedule
