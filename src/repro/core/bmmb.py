"""The Basic Multi-Message Broadcast protocol (paper §3.2.2).

Verbatim from the paper:

    Every process i maintains a FIFO queue named ``bcastq`` and a set named
    ``rcvd``.  Both are initially empty.

    If process i is not currently sending a message (i.e., not waiting for
    an ack from the MAC layer) and ``bcastq`` is not empty, the process
    immediately (without any time-passage) bcasts the message at the head
    of ``bcastq`` on the MAC layer.

    When process i receives an ``arrive(m)_i`` event, it immediately
    performs a local ``deliver(m)_i`` output and adds m to the back of its
    ``bcastq``, and to its ``rcvd`` set.

    When i receives a message m from the MAC layer it checks its ``rcvd``
    set.  If m ∈ rcvd, process i discards the message.  Otherwise, i
    immediately performs a ``deliver(m)_i`` event, and adds m to the back
    of its ``bcastq`` and to its ``rcvd`` set.

BMMB is deterministic, uses no ids, clocks, or knowledge of ``k``, and runs
on the *standard* layer.  Its guarantees under the different ``G'`` regimes
are Theorems 3.1 (arbitrary: ``O((D+k)·Fack)``) and 3.2/3.16
(``r``-restricted: ``(D + (r+1)k − 2)·Fprog + r(k−1)·Fack``).
"""

from __future__ import annotations

from collections import deque

from repro.errors import AlgorithmError
from repro.ids import Message, NodeId
from repro.mac.interfaces import Automaton, MACApi


class BMMBNode(Automaton):
    """One BMMB process: FIFO ``bcastq`` + ``rcvd`` set + eager sending."""

    __slots__ = ("bcastq", "rcvd", "sending", "sent_count")

    def __init__(self) -> None:
        self.bcastq: deque[Message] = deque()
        self.rcvd: set[str] = set()
        self.sending = False
        self.sent_count = 0

    # ------------------------------------------------------------------
    # Environment events
    # ------------------------------------------------------------------
    def on_arrive(self, api: MACApi, message: Message) -> None:
        self._get(api, message)

    def on_receive(self, api: MACApi, payload: Message, sender: NodeId) -> None:
        if not isinstance(payload, Message):
            raise AlgorithmError(
                f"BMMB received a non-Message payload: {payload!r}"
            )
        if payload.mid in self.rcvd:
            return  # duplicate: discard
        self._get(api, payload)

    # ------------------------------------------------------------------
    # MAC events
    # ------------------------------------------------------------------
    def on_ack(self, api: MACApi, payload: Message) -> None:
        if not self.sending or not self.bcastq:
            raise AlgorithmError("BMMB acked while not sending")
        head = self.bcastq.popleft()
        if head.mid != payload.mid:
            raise AlgorithmError(
                f"BMMB ack for {payload.mid} but queue head is {head.mid}"
            )
        self.sending = False
        self.sent_count += 1
        self._maybe_send(api)

    def on_abort(self, api: MACApi, payload: Message) -> None:
        """An environment-initiated abort (crash recovery): the message is
        still at the queue head, so retransmit it.  BMMB itself never
        aborts — this only fires under fault injection."""
        self.sending = False
        self._maybe_send(api)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _get(self, api: MACApi, message: Message) -> None:
        """The paper's ``get`` event: first time this node learns of m."""
        api.deliver(message)
        self.rcvd.add(message.mid)
        self.bcastq.append(message)
        self._maybe_send(api)

    def _maybe_send(self, api: MACApi) -> None:
        if not self.sending and self.bcastq:
            self.sending = True
            api.bcast(self.bcastq[0])
