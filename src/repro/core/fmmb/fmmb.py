"""The FMMB orchestrator (paper §4.1): MIS → gather → spread.

``run_fmmb`` executes the three subroutines back-to-back on the lock-step
round substrate and reports both the algorithm's cost (total rounds ×
``Fprog``) and the MMB solution time (when the last required delivery
happened).  Randomness is hierarchical and seeded, so every run is exactly
reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.fmmb.config import FMMBConfig
from repro.core.fmmb.gather import GatherResult, gather_messages
from repro.core.fmmb.mis import MISResult, build_mis, is_independent, is_maximal
from repro.core.fmmb.overlay import build_overlay, overlay_diameter
from repro.core.fmmb.spread import SpreadResult, spread_messages
from repro.errors import ExperimentError
from repro.ids import Message, MessageAssignment, MessageId, NodeId, Time
from repro.mac.rounds import RandomRoundScheduler, RoundScheduler
from repro.runtime.validate import required_deliveries
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph


class RoundDeliveryRecorder:
    """Tracks the first round each node obtained each message."""

    def __init__(self) -> None:
        self.rounds: dict[tuple[NodeId, MessageId], int] = {}

    def record(self, node: NodeId, message: Message, round_index: int) -> None:
        """Record a receipt if it is the node's first for this message."""
        key = (node, message.mid)
        if key not in self.rounds:
            self.rounds[key] = round_index


@dataclass
class FMMBResult:
    """Outcome of one FMMB execution.

    Attributes:
        solved: True when every message reached its whole ``G``-component.
        total_rounds: Rounds consumed by all three subroutines.
        total_time: ``total_rounds × Fprog``.
        completion_rounds: Round of the last *required* delivery (≤
            total_rounds); the MMB solution point.
        completion_time: ``(completion_rounds + 1) × Fprog`` (a delivery in
            round r is available by the end of slot r), or ``inf`` if
            unsolved.
        mis_result / gather_result / spread_result: Per-subroutine stats.
        mis_valid: Whether the constructed MIS was independent and maximal
            (the w.h.p. event the analysis conditions on).
        delivery_rounds: (node, mid) → first-receipt round.
    """

    solved: bool
    total_rounds: int
    total_time: Time
    completion_rounds: int
    completion_time: Time
    mis_result: MISResult
    gather_result: GatherResult
    spread_result: SpreadResult
    mis_valid: bool
    delivery_rounds: dict[tuple[NodeId, MessageId], int] = field(repr=False)


def run_fmmb(
    dual: DualGraph,
    assignment: MessageAssignment,
    fprog: Time,
    seed: int = 0,
    config: FMMBConfig | None = None,
    scheduler: RoundScheduler | None = None,
    fault_engine=None,
) -> FMMBResult:
    """Run FMMB end-to-end on the enhanced model's round substrate.

    Args:
        dual: The network (grey-zone restricted for the guarantees).
        assignment: Initial message placement (time 0).
        fprog: The progress bound (one round = one ``Fprog`` slot).
        seed: Root seed for all algorithmic and scheduler randomness.
        config: FMMB constants.
        scheduler: Per-round delivery policy; defaults to the random one.
        fault_engine: Optional fault/dynamics engine; when set, the round
            scheduler is wrapped in
            :class:`~repro.faults.rounds.FaultyRoundScheduler`, so crashed
            nodes neither transmit nor receive and flapped edges move
            between reliable and grey round by round.  ``solved`` keeps
            the full-component criterion; judge faulted runs with
            :func:`repro.faults.survivor_outcome`.

    Returns:
        The :class:`FMMBResult`.
    """
    if assignment.k == 0:
        raise ExperimentError("MMB requires k >= 1 messages")
    cfg = config or FMMBConfig()
    rng = RandomSource(seed, "fmmb")
    sched = scheduler or RandomRoundScheduler(rng.child("round-scheduler"))
    if fault_engine is not None:
        from repro.faults.rounds import FaultyRoundScheduler

        sched = FaultyRoundScheduler(sched, fault_engine, fprog)
    recorder = RoundDeliveryRecorder()

    # Environment arrivals: each origin holds (and has delivered) its
    # messages from round 0.
    for node, messages in assignment.messages.items():
        for message in messages:
            recorder.record(node, message, 0)

    # --- Subroutine 1: MIS -------------------------------------------
    mis_result = build_mis(dual, sched, rng.child("mis"), cfg, round_offset=0)
    mis = mis_result.mis
    mis_valid = is_independent(dual, mis) and is_maximal(dual, mis)
    offset = mis_result.rounds_used

    # --- Subroutine 2: gather ----------------------------------------
    gather_result = gather_messages(
        dual,
        mis,
        assignment.messages,
        sched,
        rng.child("gather"),
        k=assignment.k,
        config=cfg,
        recorder=recorder,
        round_offset=offset,
    )
    offset += gather_result.rounds_used

    # --- Subroutine 3: spread ----------------------------------------
    overlay = build_overlay(dual, mis)
    d_h = overlay_diameter(overlay)
    required = required_deliveries(dual, assignment)
    spread_result = spread_messages(
        dual,
        mis,
        gather_result.owned,
        sched,
        rng.child("spread"),
        k=assignment.k,
        overlay_diam=d_h,
        required=required,
        already_delivered=set(recorder.rounds),
        config=cfg,
        recorder=recorder,
        round_offset=offset,
    )
    total_rounds = offset + spread_result.rounds_used

    # --- Outcome -------------------------------------------------------
    solved = True
    completion_rounds = 0
    for mid, nodes in required.items():
        for node in nodes:
            rnd = recorder.rounds.get((node, mid))
            if rnd is None:
                solved = False
            else:
                completion_rounds = max(completion_rounds, rnd)
    completion_time = (
        (completion_rounds + 1) * fprog if solved else math.inf
    )
    return FMMBResult(
        solved=solved,
        total_rounds=total_rounds,
        total_time=total_rounds * fprog,
        completion_rounds=completion_rounds,
        completion_time=completion_time,
        mis_result=mis_result,
        gather_result=gather_result,
        spread_result=spread_result,
        mis_valid=mis_valid,
        delivery_rounds=recorder.rounds,
    )
