"""The FMMB MIS subroutine (paper §4.2).

Builds a maximal independent set of ``G`` in ``O(c⁴·log³ n)`` rounds w.h.p.
The subroutine runs in phases; each phase has two parts:

* **Election** (``4·log n`` rounds): every active node draws a uniform
  bit-string ``b(v)`` of ``4·log n`` bits and, in round ``τ``, broadcasts
  iff the ``τ``-th bit is 1.  A silent node that receives *any* message —
  from a ``G`` or ``G'`` neighbor — becomes *temporarily inactive* for the
  rest of the phase.  Nodes still active after all election rounds join
  the MIS.
* **Announcement** (``Θ(c²·log n)`` rounds): each newly joined MIS node
  broadcasts its id with probability ``Θ(1/c²)`` per round.  A non-MIS node
  that receives such an announcement *from a G-neighbor* becomes
  *permanently inactive* (it is covered).  At phase end, temporarily
  inactive nodes reactivate.

Independence (Lemma 4.3): two ``G``-neighbors can join in the same phase
only by drawing identical bit-strings (probability ``n⁻⁴``); joining in
different phases is prevented by the announcement part w.h.p.
Maximality (Lemmas 4.4–4.5): while a node stays active, some node within
``O(c·log n)`` of it joins each phase, and sphere packing caps how often
that can happen before the node itself is covered or joins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlgorithmError
from repro.ids import NodeId
from repro.core.fmmb.config import FMMBConfig
from repro.mac.rounds import RoundScheduler, run_one_round
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph


@dataclass(frozen=True)
class _Elect:
    """Election broadcast: the sender's bit-string and id."""

    bits: tuple[int, ...]
    vid: NodeId


@dataclass(frozen=True)
class _Announce:
    """Announcement broadcast: a newly joined MIS node's id."""

    vid: NodeId


@dataclass
class MISResult:
    """Outcome of the MIS subroutine.

    Attributes:
        mis: The constructed independent set.
        phases_used: Number of phases executed.
        rounds_used: Total rounds consumed (the subroutine's cost).
        complete: True when every node ended covered or joined (oracle
            observation; False means the phase budget ran out first).
    """

    mis: frozenset[NodeId]
    phases_used: int
    rounds_used: int
    complete: bool


#: Node states during the subroutine.
_ACTIVE = "active"
_TEMP = "temp-inactive"
_COVERED = "covered"
_MIS = "mis"


def build_mis(
    dual: DualGraph,
    scheduler: RoundScheduler,
    rng: RandomSource,
    config: FMMBConfig | None = None,
    round_offset: int = 0,
) -> MISResult:
    """Run the MIS subroutine to completion (or its phase budget).

    Args:
        dual: The network (grey-zone restricted for the guarantees to hold).
        scheduler: Per-round delivery policy.
        rng: Random stream (bit-strings and activation coins).
        config: Constants; defaults to :class:`FMMBConfig`.
        round_offset: Starting global round index (for chained subroutines).

    Returns:
        The :class:`MISResult`; ``result.mis`` is guaranteed independent
        and maximal only w.h.p. — tests verify over seeds.
    """
    cfg = config or FMMBConfig()
    n = dual.n
    status: dict[NodeId, str] = {v: _ACTIVE for v in dual.nodes}
    election_rounds = cfg.election_rounds(n)
    announcement_rounds = cfg.announcement_rounds(n)
    max_phases = cfg.max_mis_phases(n)
    activation = cfg.activation()
    bits_rng = rng.child("election-bits")
    coin_rng = rng.child("announce-coins")

    round_index = round_offset
    phases = 0
    for _ in range(max_phases):
        active_nodes = [v for v in dual.nodes if status[v] == _ACTIVE]
        if not active_nodes and cfg.oracle_termination:
            break
        phases += 1
        # --- Election part -------------------------------------------
        bits = {v: bits_rng.bitstring(election_rounds) for v in active_nodes}
        for tau in range(election_rounds):
            intents = {
                v: _Elect(bits[v], v)
                for v in active_nodes
                if status[v] == _ACTIVE and bits[v][tau] == 1
            }
            received = run_one_round(dual, scheduler, round_index, intents)
            round_index += 1
            for v in active_nodes:
                if status[v] == _ACTIVE and v not in intents and received.get(v):
                    status[v] = _TEMP
        joined = [v for v in active_nodes if status[v] == _ACTIVE]
        for v in joined:
            status[v] = _MIS
        # --- Announcement part ---------------------------------------
        for _rho in range(announcement_rounds):
            intents = {
                v: _Announce(v) for v in joined if coin_rng.bernoulli(activation)
            }
            received = run_one_round(dual, scheduler, round_index, intents)
            round_index += 1
            for u, events in received.items():
                if status[u] not in (_ACTIVE, _TEMP):
                    continue
                for sender, payload in events:
                    if (
                        isinstance(payload, _Announce)
                        and sender in dual.reliable_neighbors(u)
                    ):
                        status[u] = _COVERED
                        break
        # --- Phase end ------------------------------------------------
        for v in dual.nodes:
            if status[v] == _TEMP:
                status[v] = _ACTIVE

    mis = frozenset(v for v in dual.nodes if status[v] == _MIS)
    complete = all(status[v] in (_MIS, _COVERED) for v in dual.nodes)
    return MISResult(
        mis=mis,
        phases_used=phases,
        rounds_used=round_index - round_offset,
        complete=complete,
    )


# ----------------------------------------------------------------------
# Postcondition predicates (used by tests and by downstream subroutines)
# ----------------------------------------------------------------------
def is_independent(dual: DualGraph, mis: frozenset[NodeId]) -> bool:
    """True iff no two MIS members are ``G``-neighbors."""
    for v in mis:
        if dual.reliable_neighbors(v) & mis:
            return False
    return True


def is_maximal(dual: DualGraph, mis: frozenset[NodeId]) -> bool:
    """True iff every node is in the MIS or has a ``G``-neighbor in it."""
    for v in dual.nodes:
        if v not in mis and not (dual.reliable_neighbors(v) & mis):
            return False
    return True


def require_valid_mis(dual: DualGraph, mis: frozenset[NodeId]) -> None:
    """Raise :class:`AlgorithmError` unless ``mis`` is a valid MIS of G."""
    if not is_independent(dual, mis):
        raise AlgorithmError("MIS is not independent in G")
    if not is_maximal(dual, mis):
        raise AlgorithmError("MIS is not maximal in G")
