"""Fast Multi-Message Broadcast (paper §4).

FMMB runs in the *enhanced* abstract MAC layer under a grey-zone ``G'`` and
solves MMB in ``O((D·log n + k·log n + log³n)·Fprog)`` rounds w.h.p. — with
no ``Fack`` term at all.  It is built from three subroutines over lock-step
``Fprog`` rounds:

1. :mod:`~repro.core.fmmb.mis` — build a maximal independent set of ``G``
   in ``O(c⁴·log³ n)`` rounds (§4.2);
2. :mod:`~repro.core.fmmb.gather` — move every message onto some MIS node
   in ``O(c²·(k + log n))`` rounds (§4.3);
3. :mod:`~repro.core.fmmb.spread` — pipeline the messages over the overlay
   ``H`` (MIS nodes, edges = pairs within 3 ``G``-hops) and out to all
   nodes in ``O((D + k)·log n)`` rounds (§4.4).

Entry point: :func:`~repro.core.fmmb.fmmb.run_fmmb`.
"""

from repro.core.fmmb.config import FMMBConfig
from repro.core.fmmb.fmmb import FMMBResult, run_fmmb
from repro.core.fmmb.gather import GatherResult, gather_messages
from repro.core.fmmb.mis import MISResult, build_mis, is_independent, is_maximal
from repro.core.fmmb.overlay import build_overlay, overlay_diameter
from repro.core.fmmb.spread import SpreadResult, spread_messages

__all__ = [
    "FMMBConfig",
    "FMMBResult",
    "run_fmmb",
    "MISResult",
    "build_mis",
    "is_independent",
    "is_maximal",
    "GatherResult",
    "gather_messages",
    "build_overlay",
    "overlay_diameter",
    "SpreadResult",
    "spread_messages",
]
