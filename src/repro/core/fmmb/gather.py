"""The FMMB message-gathering subroutine (paper §4.3).

Moves every MMB message onto at least one MIS node in
``O(c²·(k + log n))`` three-round periods, w.h.p.  Per period:

1. each MIS node activates with probability ``Θ(1/c²)`` and broadcasts an
   activation signal;
2. each non-MIS node that heard an activation *from a G-neighbor* and still
   owns messages uploads one of them;
3. each MIS node that received an upload *from a G-neighbor* acknowledges
   it (with the message embedded); non-MIS nodes hearing the ack *from a
   G-neighbor* drop the message from their pending set.

Receiver-side ``G``-filtering matters: the round scheduler may hand a node
a message from an unreliable-only neighbor, and the algorithm must ignore
it (the paper's analysis shows that when an MIS node is the lone active
node in its ``2c``-ball, every broadcaster it can hear is in fact a
``G``-neighbor — but the scheduler is free to be less kind in other
periods, and correctness only ever credits the filtered receptions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fmmb.config import FMMBConfig
from repro.ids import Message, MessageId, NodeId
from repro.mac.rounds import RoundScheduler, run_one_round
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph


@dataclass(frozen=True)
class _Activate:
    """Round-1 broadcast: 'I am an active MIS node this period.'"""

    vid: NodeId


@dataclass(frozen=True)
class _Upload:
    """Round-2 broadcast: a non-MIS node handing one message up."""

    message: Message
    vid: NodeId


@dataclass(frozen=True)
class _GatherAck:
    """Round-3 broadcast: an MIS node confirming custody of a message."""

    message: Message
    vid: NodeId


@dataclass
class GatherResult:
    """Outcome of the gathering subroutine.

    Attributes:
        owned: MIS node → messages it holds after gathering (insertion
            ordered — the spreading subroutine sends in this order).
        periods_used: Three-round periods executed.
        rounds_used: Total rounds consumed (= 3 × periods).
        complete: True when every non-MIS pending set drained (oracle
            observation).
    """

    owned: dict[NodeId, dict[MessageId, Message]]
    periods_used: int
    rounds_used: int
    complete: bool


class _Recorder:
    """Minimal protocol for recording first receipt of a message."""

    def record(self, node: NodeId, message: Message, round_index: int) -> None:
        """Override in callers that track deliveries."""


def gather_messages(
    dual: DualGraph,
    mis: frozenset[NodeId],
    initial: dict[NodeId, tuple[Message, ...]],
    scheduler: RoundScheduler,
    rng: RandomSource,
    k: int,
    config: FMMBConfig | None = None,
    recorder: _Recorder | None = None,
    round_offset: int = 0,
) -> GatherResult:
    """Run the gathering subroutine.

    Args:
        dual: The network.
        mis: A valid MIS of ``G`` (output of the MIS subroutine).
        initial: The MMB assignment (node → injected messages).
        scheduler: Per-round delivery policy.
        rng: Random stream (activation coins).
        k: Total message count — used only to size the period budget, as
            the paper does; the oracle mode stops earlier.
        config: Constants.
        recorder: Optional first-receipt recorder (for delivery metrics).
        round_offset: Starting global round index.
    """
    cfg = config or FMMBConfig()
    recorder = recorder or _Recorder()
    activation = cfg.activation()
    coin_rng = rng.child("gather-coins")

    owned: dict[NodeId, dict[MessageId, Message]] = {u: {} for u in mis}
    pending: dict[NodeId, list[Message]] = {}
    for node, messages in sorted(initial.items()):
        if node in mis:
            for m in messages:
                owned[node][m.mid] = m
        else:
            pending[node] = sorted(messages, key=lambda m: m.mid)

    max_periods = cfg.gather_periods(dual.n, k)
    round_index = round_offset
    periods = 0
    for _ in range(max_periods):
        if cfg.oracle_termination and not any(pending.values()):
            break
        periods += 1
        # Round 1: activation signals.
        active = sorted(u for u in mis if coin_rng.bernoulli(activation))
        intents_1 = {u: _Activate(u) for u in active}
        received_1 = run_one_round(dual, scheduler, round_index, intents_1)
        round_index += 1
        heard: set[NodeId] = set()
        for v, events in received_1.items():
            if v in mis:
                continue
            for sender, payload in events:
                if isinstance(payload, _Activate) and sender in dual.reliable_neighbors(v):
                    heard.add(v)
        # Round 2: uploads from non-MIS nodes that heard an activation.
        intents_2 = {
            v: _Upload(pending[v][0], v)
            for v in sorted(heard)
            if pending.get(v)
        }
        received_2 = run_one_round(dual, scheduler, round_index, intents_2)
        round_index += 1
        to_ack: dict[NodeId, Message] = {}
        for u, events in received_2.items():
            for sender, payload in events:
                if not isinstance(payload, _Upload):
                    continue
                recorder.record(u, payload.message, round_index - 1)
                if u in mis and sender in dual.reliable_neighbors(u):
                    owned[u][payload.message.mid] = payload.message
                    to_ack[u] = payload.message
        # Round 3: custody acknowledgments.
        intents_3 = {u: _GatherAck(m, u) for u, m in sorted(to_ack.items())}
        received_3 = run_one_round(dual, scheduler, round_index, intents_3)
        round_index += 1
        for v, events in received_3.items():
            for sender, payload in events:
                if not isinstance(payload, _GatherAck):
                    continue
                recorder.record(v, payload.message, round_index - 1)
                if v in pending and sender in dual.reliable_neighbors(v):
                    pending[v] = [
                        m for m in pending[v] if m.mid != payload.message.mid
                    ]

    complete = not any(pending.values())
    return GatherResult(
        owned=owned,
        periods_used=periods,
        rounds_used=round_index - round_offset,
        complete=complete,
    )
