"""FMMB tuning knobs.

The paper states subroutine durations asymptotically (``O(c²·log n)``
announcement rounds, ``O(c²·(k + log n))`` gather periods, ...).  A concrete
implementation must pick the constants; this config centralizes them, and
``EXPERIMENTS.md`` records the values used for every reported number.

Two termination modes:

* **oracle** (default) — subroutines stop as soon as their postcondition
  holds (observed by the simulation harness, not by nodes) and the *rounds
  actually used* are reported.  This measures the algorithm's real cost.
* **fixed** — subroutines run for their full paper-prescribed budgets
  (using the known values of ``n``, ``k``, ``c``), which measures the
  a-priori schedule a deployment would provision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ExperimentError


def log2n(n: int) -> float:
    """``log₂ n`` clamped below at 1 (keeps small-n budgets positive)."""
    return max(1.0, math.log2(max(n, 2)))


@dataclass(frozen=True)
class FMMBConfig:
    """Constants for the three FMMB subroutines.

    Attributes:
        c: The grey-zone constant the algorithm assumes (must be ≥ 1 and at
            least the network's actual constant for the analysis to hold).
        election_bits_factor: Election bit-string length = this × log₂ n
            (the paper uses 4).
        announcement_rounds_factor: Announcement rounds per MIS phase =
            ceil(this × c² × log₂ n).
        activation_probability: Probability an eligible node is active in a
            period/announcement round; None selects ``min(0.4, 1/c²)``
            (the paper's Θ(1/c²)).
        max_phases_factor: MIS phase budget = ceil(this × c² × log₂² n).
        gather_periods_factor: Gather period budget =
            ceil(this × c² × (k + log₂ n)).
        spread_periods_factor: Periods per spreading phase =
            ceil(this × c² × log₂ n).
        spread_phase_slack: Extra spreading phases beyond ``D_H + k``.
        oracle_termination: Stop subroutines when their postcondition holds
            (see module docstring).
    """

    c: float = 1.6
    election_bits_factor: int = 4
    announcement_rounds_factor: float = 3.0
    activation_probability: float | None = None
    max_phases_factor: float = 3.0
    gather_periods_factor: float = 3.0
    spread_periods_factor: float = 2.0
    spread_phase_slack: int = 8
    oracle_termination: bool = True

    def __post_init__(self) -> None:
        if self.c < 1.0:
            raise ExperimentError(f"grey-zone constant must be >= 1, got {self.c}")
        if self.activation_probability is not None and not (
            0.0 < self.activation_probability <= 1.0
        ):
            raise ExperimentError(
                f"activation probability must be in (0,1], got "
                f"{self.activation_probability}"
            )

    # ------------------------------------------------------------------
    # Derived budgets
    # ------------------------------------------------------------------
    @property
    def c_squared(self) -> float:
        """``c²`` — the sphere-packing capacity of a radius-c disk region."""
        return self.c * self.c

    def activation(self) -> float:
        """The Θ(1/c²) activation probability used by all three subroutines."""
        if self.activation_probability is not None:
            return self.activation_probability
        return min(0.4, 1.0 / self.c_squared)

    def election_rounds(self, n: int) -> int:
        """Election rounds per MIS phase (= bit-string length, 4·log n)."""
        return max(4, math.ceil(self.election_bits_factor * log2n(n)))

    def announcement_rounds(self, n: int) -> int:
        """Announcement rounds per MIS phase (Θ(c²·log n))."""
        return max(4, math.ceil(self.announcement_rounds_factor * self.c_squared * log2n(n)))

    def max_mis_phases(self, n: int) -> int:
        """MIS phase budget (Θ(c²·log² n))."""
        return max(4, math.ceil(self.max_phases_factor * self.c_squared * log2n(n) ** 2))

    def gather_periods(self, n: int, k: int) -> int:
        """Gather period budget (Θ(c²·(k + log n)))."""
        return max(
            4,
            math.ceil(self.gather_periods_factor * self.c_squared * (k + log2n(n))),
        )

    def spread_periods_per_phase(self, n: int) -> int:
        """Periods in one run of the overlay local-broadcast procedure."""
        return max(
            2, math.ceil(self.spread_periods_factor * self.c_squared * log2n(n))
        )

    def spread_phase_budget(self, overlay_diameter: int, k: int, n: int) -> int:
        """Spreading phase budget (D_H + k plus slack)."""
        base = overlay_diameter + k + self.spread_phase_slack
        return max(base, math.ceil(1.5 * (overlay_diameter + k)) + 2)
