"""The FMMB overlay graph ``H`` (paper §4.4).

``H``'s vertices are the MIS nodes; two MIS nodes are ``H``-adjacent when
their hop distance in ``G`` is at most 3.  Because the MIS is maximal, ``H``
is connected within every connected component of ``G`` (a standard fact:
consecutive MIS "representatives" along any ``G``-path are within 3 hops),
and its hop diameter ``D_H`` satisfies ``D_H ≤ D``.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.ids import NodeId
from repro.topology.dualgraph import DualGraph

#: The overlay adjacency radius from the paper: MIS pairs within 3 G-hops.
OVERLAY_RADIUS = 3


def build_overlay(dual: DualGraph, mis: frozenset[NodeId]) -> nx.Graph:
    """Build ``H = (S, E_S)`` with edges between MIS pairs ≤ 3 hops apart."""
    missing = [v for v in mis if not dual.reliable_graph.has_node(v)]
    if missing:
        raise TopologyError(f"MIS nodes not in topology: {missing[:5]}")
    overlay = nx.Graph()
    overlay.add_nodes_from(sorted(mis))
    for v in sorted(mis):
        lengths = nx.single_source_shortest_path_length(
            dual.reliable_graph, v, cutoff=OVERLAY_RADIUS
        )
        for u, dist in lengths.items():
            if u != v and u in mis and dist <= OVERLAY_RADIUS:
                overlay.add_edge(v, u)
    return overlay


def overlay_diameter(overlay: nx.Graph) -> int:
    """Hop diameter ``D_H`` (max over connected components)."""
    diam = 0
    for component in nx.connected_components(overlay):
        sub = overlay.subgraph(component)
        if sub.number_of_nodes() > 1:
            diam = max(diam, nx.diameter(sub))
    return diam


def overlay_mirrors_components(dual: DualGraph, overlay: nx.Graph) -> bool:
    """Check that ``H`` is connected inside every component of ``G``.

    Used as a postcondition test: for a valid (maximal) MIS, the MIS nodes
    of one ``G``-component must form one ``H``-component.
    """
    for component in dual.components():
        members = [v for v in component if overlay.has_node(v)]
        if len(members) <= 1:
            continue
        sub = overlay.subgraph(members)
        if not nx.is_connected(sub):
            return False
    return True
