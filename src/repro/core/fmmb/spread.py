"""The FMMB spreading subroutine (paper §4.4).

Spreads the gathered messages from MIS nodes to every node.  The building
block is the **local broadcast procedure on the overlay**: ``Θ(c²·log n)``
periods of three rounds each, in which an active MIS node broadcasts its
current message and every node that received it from a ``G``-neighbor
relays it in the next round.  When an MIS node is the only active one
within ``7c`` of itself, the relay wave provably reaches every node within
3 ``G``-hops — i.e. all its ``H``-neighbors (Lemma 4.7).

On top of the procedure, the subroutine runs BMMB over the overlay
(Lemma 4.8 / Theorem 3.1's pipelining argument): each MIS node keeps a
message set ``M_v`` and a sent set ``M'_v``; each *phase* (= one procedure
run) it sends one not-yet-sent message and merges everything it received.
``D_H + k`` phases suffice w.h.p.; because the relay waves pass through
non-MIS nodes and reach every ``G``-neighbor of each succeeding MIS node,
the same phases also deliver every message to every non-MIS node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fmmb.config import FMMBConfig
from repro.core.fmmb.gather import _Recorder
from repro.ids import Message, MessageId, NodeId
from repro.mac.rounds import RoundScheduler, run_one_round
from repro.sim.rng import RandomSource
from repro.topology.dualgraph import DualGraph


@dataclass(frozen=True)
class _Spread:
    """A spreading broadcast: the message plus the MIS originator's id."""

    message: Message
    origin: NodeId


@dataclass
class SpreadResult:
    """Outcome of the spreading subroutine.

    Attributes:
        phases_used: BMMB-over-H phases executed.
        rounds_used: Total rounds consumed.
        complete: True when the oracle goal was reached (every required
            (node, message) delivery observed).
        owned: Final MIS message sets (mutated copies of the gather output).
    """

    phases_used: int
    rounds_used: int
    complete: bool
    owned: dict[NodeId, dict[MessageId, Message]]


def spread_messages(
    dual: DualGraph,
    mis: frozenset[NodeId],
    owned: dict[NodeId, dict[MessageId, Message]],
    scheduler: RoundScheduler,
    rng: RandomSource,
    k: int,
    overlay_diam: int,
    required: dict[MessageId, frozenset[NodeId]],
    already_delivered: set[tuple[NodeId, MessageId]],
    config: FMMBConfig | None = None,
    recorder: _Recorder | None = None,
    round_offset: int = 0,
) -> SpreadResult:
    """Run the spreading subroutine.

    Args:
        dual: The network.
        mis: The MIS.
        owned: Gather output: MIS node → held messages (mutated in place as
            messages spread).
        scheduler: Per-round delivery policy.
        rng: Random stream (activation coins).
        k: Total message count (sizes the phase budget, as in the paper).
        overlay_diam: ``D_H`` of the overlay (sizes the phase budget).
        required: Message → set of nodes that must receive it (the MMB
            obligation; used by the oracle stop rule).
        already_delivered: (node, mid) pairs delivered before spreading
            begins (origins, gather receptions).
        config: Constants.
        recorder: Optional first-receipt recorder.
        round_offset: Starting global round index.
    """
    cfg = config or FMMBConfig()
    recorder = recorder or _Recorder()
    activation = cfg.activation()
    coin_rng = rng.child("spread-coins")
    periods_per_phase = cfg.spread_periods_per_phase(dual.n)
    max_phases = cfg.spread_phase_budget(overlay_diam, k, dual.n)

    sent: dict[NodeId, set[MessageId]] = {u: set() for u in mis}
    delivered: set[tuple[NodeId, MessageId]] = set(already_delivered)

    def goal_reached() -> bool:
        return all(
            (node, mid) in delivered
            for mid, nodes in required.items()
            for node in nodes
        )

    def note(node: NodeId, message: Message, round_index: int) -> None:
        key = (node, message.mid)
        if key not in delivered:
            delivered.add(key)
            recorder.record(node, message, round_index)
        if node in mis:
            owned[node].setdefault(message.mid, message)

    round_index = round_offset
    phases = 0
    for _ in range(max_phases):
        if cfg.oracle_termination and goal_reached():
            break
        phases += 1
        # Each MIS node picks one not-yet-sent message for this phase.
        current: dict[NodeId, Message] = {}
        for u in sorted(mis):
            for mid, message in owned[u].items():
                if mid not in sent[u]:
                    current[u] = message
                    break
        for _period in range(periods_per_phase):
            # `current` is built over sorted(mis), so its keys are already
            # in sorted order — filtering preserves both the order and the
            # coin-draw sequence of the historical sorted() genexpr.
            active = [u for u in current if coin_rng.bernoulli(activation)]
            intents = {u: _Spread(current[u], u) for u in active}
            relay: dict[NodeId, _Spread] = {}
            for _rho in range(3):
                received = run_one_round(dual, scheduler, round_index, intents)
                round_index += 1
                next_relay: dict[NodeId, _Spread] = {}
                for node, events in received.items():
                    for sender, payload in events:
                        if not isinstance(payload, _Spread):
                            continue
                        note(node, payload.message, round_index - 1)
                        if sender in dual.reliable_neighbors(node):
                            next_relay[node] = payload
                relay = next_relay
                intents = dict(relay)
        for u, message in current.items():
            sent[u].add(message.mid)

    return SpreadResult(
        phases_used=phases,
        rounds_used=round_index - round_offset,
        complete=goal_reached(),
        owned=owned,
    )
