"""Leader election over the abstract MAC layer (paper §5 future work).

The paper's conclusion names leader election as a natural next problem for
the dual-graph abstract MAC setting (cf. Lynch–Radeva–Sastry [32], who
study it with ``G' = G``).  We implement the classic **FloodMax** strategy
adapted to acknowledged local broadcast:

* every node tracks the largest id it has heard of (initially its own);
* whenever its known maximum improves, it (re)broadcasts the new maximum —
  coalescing improvements that arrive while a broadcast is in flight, so a
  node never floods a stale maximum;
* a node considers the node with the largest known id its leader.

Termination: event-driven nodes in the standard model cannot detect global
stabilization (no clocks), so — as with the paper's own oracle-style
analyses — the harness observes quiescence and then checks the
postcondition: every node's leader is the maximum id of its ``G``-component.

Message complexity is at most ``n`` improvements per node (each broadcast
strictly increases the node's known maximum), and the information needs at
most ``D`` hops from the maximum-id node, so completion is
``O(D·(Fack + Fprog))`` after the last improvement cascade starts —
measured empirically in ``benchmarks/bench_leader_consensus.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlgorithmError
from repro.ids import NodeId
from repro.mac.interfaces import Automaton, MACApi


@dataclass(frozen=True)
class LeaderClaim:
    """Payload: 'the largest id I know of is ``candidate``'."""

    candidate: NodeId


class FloodMaxNode(Automaton):
    """One FloodMax process.

    Attributes:
        known_max: Largest node id heard of so far (the presumed leader).
        broadcasts_sent: Number of completed broadcasts (for complexity
            accounting).
    """

    def __init__(self) -> None:
        self.known_max: NodeId | None = None
        self.sending = False
        self.pending_improvement: NodeId | None = None
        self.broadcasts_sent = 0

    @property
    def leader(self) -> NodeId | None:
        """The node this process currently considers the leader."""
        return self.known_max

    def on_wakeup(self, api: MACApi) -> None:
        self.known_max = api.node_id
        self._queue_improvement(api, api.node_id)

    def on_receive(self, api: MACApi, payload: LeaderClaim, sender: NodeId) -> None:
        if not isinstance(payload, LeaderClaim):
            raise AlgorithmError(f"FloodMax received {payload!r}")
        if self.known_max is None or payload.candidate > self.known_max:
            self.known_max = payload.candidate
            self._queue_improvement(api, payload.candidate)

    def on_ack(self, api: MACApi, payload: LeaderClaim) -> None:
        self.sending = False
        self.broadcasts_sent += 1
        if (
            self.pending_improvement is not None
            and self.pending_improvement > payload.candidate
        ):
            improvement = self.pending_improvement
            self.pending_improvement = None
            self._queue_improvement(api, improvement)
        else:
            self.pending_improvement = None

    def on_abort(self, api: MACApi, payload: LeaderClaim) -> None:
        """Crash-recovery abort: re-flood the best maximum known now
        (which subsumes both the aborted claim and any coalesced
        improvement)."""
        self.sending = False
        self.pending_improvement = None
        if self.known_max is not None:
            self._queue_improvement(api, self.known_max)

    def _queue_improvement(self, api: MACApi, candidate: NodeId) -> None:
        if self.sending:
            # Coalesce: only the newest (largest) improvement matters.
            if self.pending_improvement is None or candidate > self.pending_improvement:
                self.pending_improvement = candidate
            return
        self.sending = True
        api.bcast(LeaderClaim(candidate))


def elected_correctly(dual, nodes: dict[NodeId, FloodMaxNode]) -> bool:
    """Postcondition: each node's leader is its component's maximum id."""
    for component in dual.components():
        expected = max(component)
        for v in component:
            if nodes[v].leader != expected:
                return False
    return True
