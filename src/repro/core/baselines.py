"""Baseline dissemination strategies BMMB is compared against.

The paper's §3.1 notes that a trivial analysis gives ``O(D·k·Fack)``:
without pipelining, each message pays the full network traversal before the
next one starts.  :class:`SequentialFloodingCoordinator` realizes that
strategy as an actual algorithm — an idealized *sequential* protocol that
floods one message to completion before releasing the next (using a global
barrier an oracle provides).  It is deliberately generous (perfect barrier,
no coordination cost), so any measured advantage of BMMB over it is a lower
bound on the real value of pipelining.

A second baseline, :class:`RedundantFloodingNode`, floods like BMMB but
re-broadcasts each message ``redundancy`` times — the defensive strategy
naive deployments use against unreliable links.  It shows that paying for
reliability with repetition (quantity) is the wrong lever, matching the
paper's message that the *structure* of unreliability is what matters.
"""

from __future__ import annotations

from collections import deque

from repro.errors import AlgorithmError
from repro.ids import Message, MessageAssignment, NodeId
from repro.mac.interfaces import Automaton, MACApi


class SequentialFloodingNode(Automaton):
    """Floods only messages the coordinator has released."""

    def __init__(self, coordinator: "SequentialFloodingCoordinator"):
        self._coordinator = coordinator
        self.rcvd: set[str] = set()
        self.pending: deque[Message] = deque()
        self.sending = False
        self._api: MACApi | None = None

    def on_wakeup(self, api: MACApi) -> None:
        self._api = api

    def on_arrive(self, api: MACApi, message: Message) -> None:
        self._api = api
        api.deliver(message)
        self.rcvd.add(message.mid)
        self._coordinator.register_source(message)

    def on_receive(self, api: MACApi, payload: Message, sender: NodeId) -> None:
        if payload.mid in self.rcvd:
            return
        api.deliver(payload)
        self.rcvd.add(payload.mid)
        if payload.mid == self._coordinator.active_mid:
            self.pending.append(payload)
            self._maybe_send(api)
        self._coordinator.note_delivery(payload)

    def on_ack(self, api: MACApi, payload: Message) -> None:
        if not self.sending:
            raise AlgorithmError("sequential flooding acked while idle")
        self.sending = False
        if self.pending and self.pending[0].mid == payload.mid:
            self.pending.popleft()
        self._maybe_send(api)

    def on_abort(self, api: MACApi, payload: Message) -> None:
        """Crash-recovery abort: the head stays pending; retransmit."""
        self.sending = False
        self._maybe_send(api)

    def release(self, message: Message) -> None:
        """Coordinator callback: start flooding ``message`` if we hold it."""
        if message.mid in self.rcvd and self._api is not None:
            self.pending.append(message)
            self._maybe_send(self._api)

    def _maybe_send(self, api: MACApi) -> None:
        if not self.sending and self.pending:
            self.sending = True
            api.bcast(self.pending[0])


class SequentialFloodingCoordinator:
    """Oracle barrier: floods message ``i+1`` only once ``i`` is finished.

    Construction mirrors the experiment runner's shape: build the
    coordinator with the assignment and target node set, create one
    :meth:`make_node` automaton per node, and the coordinator drives the
    sequence as deliveries complete.
    """

    def __init__(self, assignment: MessageAssignment, component_sizes: dict[str, int]):
        self._order = [m.mid for m in assignment.all_messages()]
        self._messages = {m.mid: m for m in assignment.all_messages()}
        self._needed = dict(component_sizes)
        self._delivered_counts: dict[str, int] = {mid: 0 for mid in self._order}
        self._nodes: list[SequentialFloodingNode] = []
        self._active_index = -1
        self.active_mid: str | None = None

    def make_node(self) -> SequentialFloodingNode:
        """Create one per-node automaton wired to this coordinator."""
        node = SequentialFloodingNode(self)
        self._nodes.append(node)
        return node

    def register_source(self, message: Message) -> None:
        self._delivered_counts[message.mid] += 1
        if self._active_index == -1:
            self._advance()

    def note_delivery(self, message: Message) -> None:
        self._delivered_counts[message.mid] += 1
        if (
            message.mid == self.active_mid
            and self._delivered_counts[message.mid] >= self._needed[message.mid]
        ):
            self._advance()

    def _advance(self) -> None:
        self._active_index += 1
        if self._active_index >= len(self._order):
            self.active_mid = None
            return
        self.active_mid = self._order[self._active_index]
        message = self._messages[self.active_mid]
        if self._delivered_counts[self.active_mid] >= self._needed[self.active_mid]:
            # Degenerate component (single node): already done, move on.
            self._advance()
            return
        for node in self._nodes:
            node.release(message)


class RedundantFloodingNode(Automaton):
    """BMMB with each message broadcast ``redundancy`` times.

    A common defensive pattern against lossy links; strictly slower than
    BMMB by roughly the redundancy factor on the ``k·Fack`` term.
    """

    def __init__(self, redundancy: int = 2):
        if redundancy < 1:
            raise AlgorithmError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = redundancy
        self.bcastq: deque[Message] = deque()
        self.rcvd: set[str] = set()
        self.sending = False

    def on_arrive(self, api: MACApi, message: Message) -> None:
        self._get(api, message)

    def on_receive(self, api: MACApi, payload: Message, sender: NodeId) -> None:
        if payload.mid in self.rcvd:
            return
        self._get(api, payload)

    def on_ack(self, api: MACApi, payload: Message) -> None:
        self.bcastq.popleft()
        self.sending = False
        self._maybe_send(api)

    def on_abort(self, api: MACApi, payload: Message) -> None:
        """Crash-recovery abort: the head stays queued; retransmit."""
        self.sending = False
        self._maybe_send(api)

    def _get(self, api: MACApi, message: Message) -> None:
        api.deliver(message)
        self.rcvd.add(message.mid)
        for _ in range(self.redundancy):
            self.bcastq.append(message)
        self._maybe_send(api)

    def _maybe_send(self, api: MACApi) -> None:
        if not self.sending and self.bcastq:
            self.sending = True
            api.bcast(self.bcastq[0])
