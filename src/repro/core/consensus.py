"""One-shot consensus over the abstract MAC layer (paper §5 future work).

The paper's conclusion lists consensus among the problems whose dual-graph
abstract-MAC behavior deserves study.  We implement the straightforward
reduction to flooding: every node floods its ``(id, proposal)`` pair using
the BMMB discipline (each pair broadcast once, FIFO), tracks the pair with
the **largest id** seen so far, and — once the execution quiesces — decides
that pair's value.

Properties (checked by the tests under every scheduler in the package):

* **Agreement** — all nodes of a ``G``-component decide the same value
  (they all end up knowing the component's maximum id, whose pair is
  unique).
* **Validity** — the decision is some node's proposal.
* **Integrity** — each node decides once.

Like BMMB itself, the protocol is oblivious to ``k``/``n`` and never uses
clocks, so decision *detection* is oracle-observed at quiescence (standard
for the event-driven model; the enhanced model could decide after
``D_max`` rounds instead).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import AlgorithmError
from repro.ids import NodeId
from repro.mac.interfaces import Automaton, MACApi


@dataclass(frozen=True)
class Proposal:
    """Payload: node ``proposer`` proposes ``value``."""

    proposer: NodeId
    value: Any


class FloodConsensusNode(Automaton):
    """One consensus process: BMMB-floods proposals, adopts max-id pair."""

    def __init__(self, value: Any):
        self.value = value
        self.seen: set[NodeId] = set()
        self.queue: deque[Proposal] = deque()
        self.sending = False
        self.best: Proposal | None = None

    @property
    def decision(self) -> Any:
        """The value this node would decide now (max-id proposal's value)."""
        if self.best is None:
            raise AlgorithmError("consensus node has no proposal yet")
        return self.best.value

    def on_wakeup(self, api: MACApi) -> None:
        mine = Proposal(api.node_id, self.value)
        self._adopt(mine)
        self._enqueue(api, mine)

    def on_receive(self, api: MACApi, payload: Proposal, sender: NodeId) -> None:
        if not isinstance(payload, Proposal):
            raise AlgorithmError(f"consensus received {payload!r}")
        if payload.proposer in self.seen:
            return
        self._adopt(payload)
        self._enqueue(api, payload)

    def on_ack(self, api: MACApi, payload: Proposal) -> None:
        if not self.sending or not self.queue:
            raise AlgorithmError("consensus acked while idle")
        self.queue.popleft()
        self.sending = False
        self._maybe_send(api)

    def on_abort(self, api: MACApi, payload: Proposal) -> None:
        """Crash-recovery abort: the proposal stays queued; retransmit."""
        self.sending = False
        self._maybe_send(api)

    def _adopt(self, proposal: Proposal) -> None:
        if self.best is None or proposal.proposer > self.best.proposer:
            self.best = proposal

    def _enqueue(self, api: MACApi, proposal: Proposal) -> None:
        self.seen.add(proposal.proposer)
        self.queue.append(proposal)
        self._maybe_send(api)

    def _maybe_send(self, api: MACApi) -> None:
        if not self.sending and self.queue:
            self.sending = True
            api.bcast(self.queue[0])


def consensus_reached(dual, nodes: dict[NodeId, FloodConsensusNode]) -> bool:
    """Postcondition: per component — agreement on the max-id proposal."""
    for component in dual.components():
        leader = max(component)
        expected = nodes[leader].value
        for v in component:
            if nodes[v].best is None or nodes[v].decision != expected:
                return False
            if nodes[v].best.proposer != leader:
                return False
    return True
