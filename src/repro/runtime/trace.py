"""Structured execution traces: export, import, and summaries.

Debugging a distributed execution needs more than a completion time.  This
module flattens an :class:`~repro.mac.messages.InstanceLog` into a
time-ordered list of event records (``bcast`` / ``rcv`` / ``ack`` /
``abort``), serializes them as JSON lines, and reloads them into an
instance log — so traces can be archived next to experiment results and
re-certified by the axiom checker later.

Substrate-independent executions expose the same events through the typed
observation stream (:mod:`repro.runtime.observations`);
:func:`from_observations` converts that stream's MAC-event subset into
trace events, so ``run(spec)`` results from *any* substrate feed the same
trace tooling without touching engine-native records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ExperimentError
from repro.ids import InstanceId, NodeId, Time
from repro.mac.messages import InstanceLog, MessageInstance
from repro.runtime.observations import Observation, _payload_tag


@dataclass(frozen=True)
class TraceEvent:
    """One MAC-level event, flattened for chronological inspection.

    Attributes:
        time: Event time.
        kind: One of ``bcast``, ``rcv``, ``ack``, ``abort``.
        node: The acting node (receiver for ``rcv``, sender otherwise).
        iid: The message instance the event belongs to.
        payload: The payload's stable tag (message id when it has one) —
            the same label the observation stream carries as ``key``, so
            :func:`flatten` and :func:`from_observations` agree field for
            field on the same execution.
    """

    time: Time
    kind: str
    node: NodeId
    iid: InstanceId
    payload: str


_KIND_ORDER = {"bcast": 0, "rcv": 1, "ack": 2, "abort": 2}


def flatten(instances: Iterable[MessageInstance]) -> list[TraceEvent]:
    """All events of an execution in chronological order.

    Ties are broken bcast < rcv < terminator, then by instance id — the
    same intra-timestamp order the MAC layer executes.
    """
    events: list[TraceEvent] = []
    for inst in instances:
        payload = _payload_tag(inst.payload)
        events.append(
            TraceEvent(inst.bcast_time, "bcast", inst.sender, inst.iid, payload)
        )
        for receiver, rtime in inst.rcv_times.items():
            events.append(TraceEvent(rtime, "rcv", receiver, inst.iid, payload))
        if inst.ack_time is not None:
            events.append(
                TraceEvent(inst.ack_time, "ack", inst.sender, inst.iid, payload)
            )
        if inst.abort_time is not None:
            events.append(
                TraceEvent(inst.abort_time, "abort", inst.sender, inst.iid, payload)
            )
    events.sort(key=lambda e: (e.time, _KIND_ORDER[e.kind], e.iid, e.node))
    return events


def from_observations(observations: Iterable[Observation]) -> list[TraceEvent]:
    """The MAC-event subset of an observation stream as trace events.

    Accepts the ``observations`` field of any
    :class:`~repro.experiments.ExperimentResult` (``keep_raw=True`` runs).
    Non-MAC kinds (``deliver``, ``round``, fault transitions, ...) are
    skipped — the trace vocabulary is exactly the four MAC events.
    """
    events = [
        TraceEvent(
            time=obs.time,
            kind=obs.kind,
            node=obs.node if obs.node is not None else -1,
            iid=obs.ref,
            payload=obs.key,
        )
        for obs in observations
        if obs.kind in _KIND_ORDER
    ]
    events.sort(key=lambda e: (e.time, _KIND_ORDER[e.kind], e.iid, e.node))
    return events


# ----------------------------------------------------------------------
# JSONL persistence
# ----------------------------------------------------------------------
def dump_instances(instances: Iterable[MessageInstance]) -> Iterator[str]:
    """Serialize instances as JSON lines (one instance per line)."""
    for inst in instances:
        yield json.dumps(
            {
                "iid": inst.iid,
                "sender": inst.sender,
                "payload": str(inst.payload),
                "bcast_time": inst.bcast_time,
                "rcv_times": {str(k): v for k, v in inst.rcv_times.items()},
                "ack_time": inst.ack_time,
                "abort_time": inst.abort_time,
            },
            sort_keys=True,
        )


def write_trace(instances: Iterable[MessageInstance], path: str | Path) -> int:
    """Write an execution's instances to a JSONL file; returns line count."""
    lines = list(dump_instances(instances))
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def load_trace(path: str | Path) -> InstanceLog:
    """Reload a JSONL trace into an :class:`InstanceLog`.

    Payloads come back as their string forms (sufficient for the axiom
    checker, which treats payloads opaquely).
    """
    log = InstanceLog()
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"{path}:{lineno}: bad trace line: {exc}") from exc
        inst = log.new_instance(
            int(record["sender"]), record["payload"], float(record["bcast_time"])
        )
        if inst.iid != int(record["iid"]):
            raise ExperimentError(
                f"{path}:{lineno}: non-contiguous instance ids "
                f"({record['iid']} loaded as {inst.iid})"
            )
        inst.rcv_times.update(
            {int(k): float(v) for k, v in record["rcv_times"].items()}
        )
        if record.get("ack_time") is not None:
            inst.ack_time = float(record["ack_time"])
        if record.get("abort_time") is not None:
            inst.abort_time = float(record["abort_time"])
    return log


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate numbers for one execution trace."""

    instances: int
    rcv_events: int
    aborted: int
    first_time: Time
    last_time: Time
    mean_ack_latency: Time


def to_instance_log(events: Iterable[TraceEvent]) -> InstanceLog:
    """Rebuild an :class:`InstanceLog` from flattened trace events.

    The inverse of :func:`flatten` / :func:`from_observations` (payloads
    come back as their string tags, which the axiom checker treats
    opaquely).  Instance ids must be contiguous from 0 and every instance
    needs exactly one ``bcast`` — both properties hold for any stream a
    substrate emitted, so a violation means the trace was synthesized or
    truncated.
    """
    by_iid: dict[InstanceId, list[TraceEvent]] = {}
    for event in events:
        by_iid.setdefault(event.iid, []).append(event)
    log = InstanceLog()
    for expected_iid, iid in enumerate(sorted(by_iid)):
        if iid != expected_iid:
            raise ExperimentError(
                f"trace has non-contiguous instance ids (expected "
                f"{expected_iid}, found {iid})"
            )
        bcasts = [e for e in by_iid[iid] if e.kind == "bcast"]
        if len(bcasts) != 1:
            raise ExperimentError(
                f"instance {iid} has {len(bcasts)} bcast events (need 1)"
            )
        bcast = bcasts[0]
        inst = log.new_instance(bcast.node, bcast.payload, bcast.time)
        for event in by_iid[iid]:
            if event.kind == "rcv":
                inst.rcv_times[event.node] = event.time
            elif event.kind == "ack":
                inst.ack_time = event.time
            elif event.kind == "abort":
                inst.abort_time = event.time
    return log


def _summarize_events(events: list[TraceEvent]) -> TraceSummary:
    events = sorted(
        events, key=lambda e: (e.time, _KIND_ORDER[e.kind], e.iid, e.node)
    )
    bcast_times: dict[InstanceId, Time] = {}
    ack_latencies: list[Time] = []
    iids: set[InstanceId] = set()
    rcv_events = 0
    aborted = 0
    for event in events:
        iids.add(event.iid)
        if event.kind == "bcast":
            bcast_times[event.iid] = event.time
        elif event.kind == "rcv":
            rcv_events += 1
        elif event.kind == "abort":
            aborted += 1
    for event in events:
        if event.kind == "ack" and event.iid in bcast_times:
            ack_latencies.append(event.time - bcast_times[event.iid])
    return TraceSummary(
        instances=len(iids),
        rcv_events=rcv_events,
        aborted=aborted,
        first_time=events[0].time,
        last_time=events[-1].time,
        mean_ack_latency=(
            sum(ack_latencies) / len(ack_latencies) if ack_latencies else 0.0
        ),
    )


def summarize_trace(
    trace: Iterable[MessageInstance] | Iterable[TraceEvent],
) -> TraceSummary:
    """Compute a :class:`TraceSummary` (raises on an empty trace).

    Accepts either form of a trace — an instance log (or any iterable of
    :class:`MessageInstance`) or the already-flattened
    :class:`TraceEvent` list from :func:`flatten` /
    :func:`from_observations` — and produces the identical summary for
    the same execution.
    """
    items = list(trace)
    if not items:
        raise ExperimentError("cannot summarize an empty trace")
    if isinstance(items[0], TraceEvent):
        return _summarize_events(items)
    return _summarize_events(flatten(items))
