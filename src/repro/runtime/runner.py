"""The standard-model experiment runner.

``run_standard`` assembles one execution — simulator, MAC layer, scheduler,
one automaton per node, environment events — runs it to quiescence (or a
time/event budget), and summarizes it as a
:class:`~repro.runtime.results.RunResult`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable

from repro.core.problem import ArrivalSchedule
from repro.errors import ExperimentError
from repro.ids import MessageAssignment, NodeId, Time
from repro.mac.interfaces import Automaton
from repro.mac.messages import InstanceLog
from repro.mac.schedulers.base import Scheduler
from repro.mac.standard import StandardMACLayer
from repro.runtime.results import DeliveryLog, RunResult
from repro.sim.kernel import Simulator
from repro.topology.dualgraph import DualGraph

AutomatonFactory = Callable[[NodeId], Automaton]


@dataclass
class ProtocolRun:
    """Outcome of a generic (non-MMB) protocol execution.

    Attributes:
        automata: The per-node automata after quiescence (protocols expose
            their results as automaton state, e.g. ``FloodMaxNode.leader``).
        instances: The MAC instance log (axiom-checkable).
        quiesced: True when the event queue drained before ``max_time``.
        end_time: Simulation time at which execution stopped.
        broadcast_count: Number of broadcasts in the execution.
        last_activity: Time of the last MAC/automaton event.  Equals
            ``end_time`` fault-free; under faults the queue also drains the
            installed fault timeline, so this is the protocol's real end.
    """

    automata: dict[NodeId, Automaton]
    instances: "InstanceLog"
    quiesced: bool
    end_time: Time
    broadcast_count: int
    last_activity: Time = 0.0


def run_protocol(
    dual: DualGraph,
    automaton_factory: AutomatonFactory,
    scheduler: Scheduler,
    fack: Time,
    fprog: Time,
    max_time: Time | None = None,
    max_events: int = 50_000_000,
    mac_class: type[StandardMACLayer] = StandardMACLayer,
    fault_engine=None,
) -> ProtocolRun:
    """Run a generic wakeup-driven protocol (no MMB arrivals) to quiescence.

    Used by the leader-election and consensus extensions, whose inputs live
    in the automata rather than in an environment message assignment.
    ``fault_engine`` injects crashes/churn/flapping into the execution
    (see :mod:`repro.faults`).
    """
    sim = Simulator(max_events=max_events)
    extra = {"fault_engine": fault_engine} if fault_engine is not None else {}
    mac = mac_class(sim, dual, scheduler, fack=fack, fprog=fprog, **extra)
    automata = {node_id: automaton_factory(node_id) for node_id in dual.nodes}
    for node_id, automaton in automata.items():
        mac.register(node_id, automaton)
    mac.start()
    sim.run(until=max_time)
    quiesced = sim.pending_events == 0
    return ProtocolRun(
        automata=automata,
        instances=mac.instances,
        quiesced=quiesced,
        end_time=sim.now,
        broadcast_count=len(mac.instances),
        last_activity=mac.last_activity,
    )


def run_standard(
    dual: DualGraph,
    assignment: MessageAssignment | ArrivalSchedule,
    automaton_factory: AutomatonFactory,
    scheduler: Scheduler,
    fack: Time,
    fprog: Time,
    max_time: Time | None = None,
    max_events: int = 50_000_000,
    keep_instances: bool = True,
    mac_class: type[StandardMACLayer] = StandardMACLayer,
    fault_engine=None,
    delivered_cap: int | None = None,
) -> RunResult:
    """Run one standard-model MMB execution to quiescence.

    Args:
        dual: The network topology.
        assignment: Either a :class:`MessageAssignment` (all arrivals at
            time 0, the paper's main-body workload) or an
            :class:`ArrivalSchedule` (online arrivals, footnote 4).
        automaton_factory: Builds the per-node algorithm automaton.
        scheduler: The message scheduler (model nondeterminism).
        fack: Acknowledgment bound.
        fprog: Progress bound.
        max_time: Optional wall on simulated time; exceeding it leaves the
            run truncated (``solved`` will typically be False).
        max_events: Simulator event budget (guards against livelock).
        keep_instances: Retain the instance log for axiom checking; disable
            for large parameter sweeps to save memory.
        mac_class: The MAC layer class (standard by default; tests use the
            enhanced layer to exercise abort semantics).
        fault_engine: Optional fault/dynamics engine (see
            :mod:`repro.faults`); ``None`` runs fault-free, bit-identical
            to the pre-fault behavior.
        delivered_cap: Bound the MAC layer's delivered/dedup state to this
            many entries (ring-buffer eviction; see
            :class:`repro.mac.dedup.DeliveredRing`) for steady-state
            service runs.  ``None`` (default) keeps the unbounded dict.

    Returns:
        The summarized :class:`RunResult` (``solved`` keeps the paper's
        full-component criterion; judge faulted runs with
        :func:`repro.faults.survivor_outcome` instead).
    """
    if isinstance(assignment, ArrivalSchedule):
        schedule = assignment
    else:
        schedule = ArrivalSchedule.at_time_zero(assignment)
    static_view = schedule.as_assignment()
    if schedule.k == 0:
        raise ExperimentError("MMB requires k >= 1 messages")
    for node in static_view.messages:
        if not dual.reliable_graph.has_node(node):
            raise ExperimentError(f"assignment references unknown node {node}")

    started = _time.perf_counter()
    sim = Simulator(max_events=max_events)
    deliveries = DeliveryLog()
    extra = {"fault_engine": fault_engine} if fault_engine is not None else {}
    if delivered_cap is not None:
        extra["delivered_cap"] = delivered_cap
    mac = mac_class(
        sim,
        dual,
        scheduler,
        fack=fack,
        fprog=fprog,
        delivery_sink=deliveries.record,
        **extra,
    )
    for node_id in dual.nodes:
        mac.register(node_id, automaton_factory(node_id))
    mac.start()
    for arrival in schedule.sorted_by_time():
        mac.inject_arrival(arrival.node, arrival.message, time=arrival.time)
    sim.run(until=max_time)
    wall = _time.perf_counter() - started

    return RunResult.from_execution(
        dual=dual,
        assignment=static_view,
        deliveries=deliveries,
        instances=mac.instances if keep_instances else None,
        sim_events=sim.processed_events,
        wall_time=wall,
        broadcast_count=len(mac.instances),
        rcv_count=mac.instances.total_rcv_events(),
        arrival_times=schedule.arrival_times(),
    )
