"""The typed observation stream every execution substrate emits through.

An execution, whatever engine ran it, is observable as one flat stream of
:class:`Observation` records — MAC events (``bcast`` / ``rcv`` / ``ack`` /
``abort``), MMB outputs (``deliver``), environment inputs (``arrival``),
substrate clock markers (``round`` / ``slot``), and fault transitions
(``crash`` / ``recover`` / ``join`` / ``leave`` / ``link_up`` /
``link_down``), and run-level profiling markers (``profile``, emitted by
the runner with wall-time / throughput / heap gauges as ``key``/``value``
pairs).  The :class:`Probe` collects the stream plus the scalar
gauges that become :attr:`ExperimentResult.metrics
<repro.experiments.ExperimentResult.metrics>`, replacing the per-substrate
ad-hoc metrics assembly with one documented surface.

Consumers:

* :class:`~repro.experiments.ExperimentResult` carries the stream in its
  ``observations`` field (``keep_raw=True`` runs only) and its ``metrics``
  are exactly the probe's gauges;
* :func:`repro.runtime.trace.from_observations` converts the MAC-event
  subset into :class:`~repro.runtime.trace.TraceEvent` records for the
  chronological trace tooling;
* campaign checks read the gauges by name (``metric:<gauge>`` series).

High-frequency clocks are summarized, not enumerated: the ``round`` and
``slot`` kinds appear once per execution as an aggregate marker whose
``value`` is the count (a 200k-slot radio run must not materialize 200k
records).  Every other kind is one record per event.

The probe never perturbs execution: substrates emit observations *after*
the engine has run (derived from instance logs, delivery tables, and fault
plans), so enabling observation capture cannot change a single RNG draw.

Long-horizon service runs use the *windowed* mode
(``Probe(window=..., max_windows=...)``): each emitted event is folded
into a fixed-width time-window aggregate instead of being retained, and
at most ``max_windows`` aggregates are kept (oldest evicted first), so
observation memory is O(window count), not O(horizon).  Exact per-kind
totals survive eviction; the raw stream does not — windowed probes
report ``events() == ()`` and summarize through :meth:`Probe.windows`
and the ``obs_*`` gauges merged into :meth:`Probe.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import ExperimentError
from repro.ids import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.engine import FaultEngine
    from repro.mac.messages import MessageInstance

#: Every observation kind a substrate may emit, in canonical tie-break
#: order (events at equal times sort by this order, then key, then node).
OBSERVATION_KINDS: tuple[str, ...] = (
    "arrival",
    "bcast",
    "rcv",
    "deliver",
    "ack",
    "abort",
    "round",
    "slot",
    "crash",
    "recover",
    "join",
    "leave",
    "link_up",
    "link_down",
    "profile",
)

_KIND_ORDER = {kind: index for index, kind in enumerate(OBSERVATION_KINDS)}


@dataclass(frozen=True)
class Observation:
    """One typed event of an execution, substrate-independent.

    Attributes:
        time: Event time in the substrate's time unit (simulated time, or
            slots × slot duration on the slotted substrates).
        kind: One of :data:`OBSERVATION_KINDS`.
        node: The acting node (receiver for ``rcv``/``deliver``, sender
            otherwise); ``None`` for node-less markers like ``round``.
        key: A stable label — message id for ``deliver``/``arrival``,
            payload tag for MAC events, ``"u-v"`` for link transitions.
        ref: Message-instance id for MAC events (``-1`` otherwise), so the
            stream converts losslessly to trace events.
        value: Magnitude; ``1.0`` for point events, the aggregate count
            for ``round``/``slot`` markers.
    """

    time: Time
    kind: str
    node: NodeId | None = None
    key: str = ""
    ref: int = -1
    value: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KIND_ORDER:
            raise ExperimentError(
                f"unknown observation kind {self.kind!r}; one of "
                f"{', '.join(OBSERVATION_KINDS)}"
            )

    def sort_key(self) -> tuple:
        node = self.node if self.node is not None else -1
        return (self.time, _KIND_ORDER[self.kind], self.ref, node, self.key)


def _payload_tag(payload: object) -> str:
    """A stable string label for an instance payload."""
    mid = getattr(payload, "mid", None)
    if mid is not None:
        return str(mid)
    return str(payload)


@dataclass(frozen=True)
class WindowAggregate:
    """One time window's folded observation totals (windowed probes).

    Attributes:
        index: Window index (``int(time // window)``).
        start: Window start time (``index * window``).
        end: Window end time (exclusive).
        events: Total observation ``value`` folded into the window.
        counts: Per-kind ``value`` totals within the window.
    """

    index: int
    start: Time
    end: Time
    events: float
    counts: dict[str, float]


class _WindowBucket:
    """Mutable accumulator behind one :class:`WindowAggregate`."""

    __slots__ = ("events", "counts")

    def __init__(self) -> None:
        self.events = 0.0
        self.counts: dict[str, float] = {}

    def fold(self, kind: str, value: float) -> None:
        self.events += value
        self.counts[kind] = self.counts.get(kind, 0.0) + value


class Probe:
    """Collects one execution's observation stream and scalar gauges.

    Substrates create one probe per execution, derive observations from
    the engine's native records once it has run, and register their
    summary scalars as *gauges* — :meth:`metrics` returns exactly the
    gauge dict, which becomes ``ExperimentResult.metrics`` unchanged.

    With ``window`` set the probe runs *windowed*: emits fold into
    per-window aggregates (no raw :class:`Observation` retained) and at
    most ``max_windows`` aggregates are kept, evicting the oldest window
    first.  Eviction loses that window's breakdown but not the exact
    per-kind totals, which are tracked separately.

    Args:
        window: Window width in substrate time units; ``None`` (default)
            retains the full raw stream.
        max_windows: Bound on retained window aggregates; requires
            ``window``; ``None`` keeps every window.
    """

    def __init__(
        self, window: float | None = None, max_windows: int | None = None
    ) -> None:
        if window is not None and window <= 0:
            raise ExperimentError(
                f"observation window must be positive, got {window}"
            )
        if max_windows is not None:
            if window is None:
                raise ExperimentError(
                    "max_windows requires a window width"
                )
            if int(max_windows) < 1:
                raise ExperimentError(
                    f"max_windows must be >= 1, got {max_windows}"
                )
        self.window = float(window) if window is not None else None
        self.max_windows = int(max_windows) if max_windows is not None else None
        self._events: list[Observation] = []
        self._gauges: dict[str, float] = {}
        self._series: dict[str, tuple[tuple[float, float], ...]] = {}
        self._buckets: dict[int, _WindowBucket] = {}
        self._kind_totals: dict[str, float] = {}
        self._folded = 0.0
        self._evicted = 0
        self._peak_retained = 0

    @property
    def windowed(self) -> bool:
        """Whether this probe folds events instead of retaining them."""
        return self.window is not None

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        time: Time,
        node: NodeId | None = None,
        key: str = "",
        ref: int = -1,
        value: float = 1.0,
    ) -> None:
        """Record one observation (kind-checked); windowed probes fold it
        into the window aggregate instead of retaining it."""
        if self.window is None:
            self._events.append(
                Observation(
                    time=time, kind=kind, node=node, key=key, ref=ref, value=value
                )
            )
            return
        if kind not in _KIND_ORDER:
            raise ExperimentError(
                f"unknown observation kind {kind!r}; one of "
                f"{', '.join(OBSERVATION_KINDS)}"
            )
        index = int(time // self.window)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = _WindowBucket()
            if (
                self.max_windows is not None
                and len(self._buckets) > self.max_windows
            ):
                # Emission is post-run and not chronological, so evict the
                # oldest window rather than assuming a moving frontier.
                del self._buckets[min(self._buckets)]
                self._evicted += 1
            self._peak_retained = max(self._peak_retained, len(self._buckets))
        bucket.fold(kind, value)
        self._kind_totals[kind] = self._kind_totals.get(kind, 0.0) + value
        self._folded += value

    def gauge(self, name: str, value: float) -> None:
        """Register one scalar metric (last write wins)."""
        self._gauges[name] = float(value)

    def gauges(self, values: dict[str, float]) -> None:
        """Register several scalar metrics at once."""
        for name, value in values.items():
            self.gauge(name, value)

    def set_series(
        self, name: str, points: Iterable[tuple[float, float]]
    ) -> None:
        """Register one named (x, y) series (last write wins).

        Series are the non-scalar companion to gauges — per-window
        latency/throughput curves and similar shapes that a single float
        cannot carry.  They surface as ``ExperimentResult.series`` and as
        ``series:<name>`` figure inputs in campaigns; they are *not*
        merged into :meth:`metrics`.
        """
        self._series[name] = tuple(
            (float(x), float(y)) for x, y in points
        )

    def series(self) -> dict[str, tuple[tuple[float, float], ...]]:
        """Every registered series, keyed by name."""
        return dict(self._series)

    # ------------------------------------------------------------------
    # Derivation helpers (post-run, never during execution)
    # ------------------------------------------------------------------
    def observe_instances(self, instances: Iterable["MessageInstance"]) -> None:
        """Emit ``bcast``/``rcv``/``ack``/``abort`` from a MAC instance log."""
        for inst in instances:
            tag = _payload_tag(inst.payload)
            self.emit("bcast", inst.bcast_time, inst.sender, tag, inst.iid)
            for receiver, rtime in inst.rcv_times.items():
                self.emit("rcv", rtime, receiver, tag, inst.iid)
            if inst.ack_time is not None:
                self.emit("ack", inst.ack_time, inst.sender, tag, inst.iid)
            if inst.abort_time is not None:
                self.emit("abort", inst.abort_time, inst.sender, tag, inst.iid)

    def observe_deliveries(
        self, times: dict[tuple[NodeId, str], Time]
    ) -> None:
        """Emit one ``deliver`` per MMB delivery table entry."""
        for (node, mid), time in times.items():
            self.emit("deliver", time, node, mid)

    def observe_arrivals(
        self, arrivals: Iterable[tuple[NodeId, str, Time]]
    ) -> None:
        """Emit one ``arrival`` per environment input (node, mid, time)."""
        for node, mid, time in arrivals:
            self.emit("arrival", time, node, mid)

    def observe_fault_plan(self, engine: "FaultEngine") -> None:
        """Emit the fault timeline (crash/join/leave/link transitions)."""
        for event in engine.plan.events:
            if event.node is not None:
                self.emit(event.kind.value, event.time, event.node)
            else:
                u, v = event.edge
                self.emit(event.kind.value, event.time, None, f"{u}-{v}")

    def observe_clock(self, kind: str, count: int, end_time: Time) -> None:
        """Emit the aggregate ``round``/``slot`` marker for an execution."""
        if kind not in ("round", "slot"):
            raise ExperimentError(
                f"clock marker must be 'round' or 'slot', got {kind!r}"
            )
        self.emit(kind, end_time, None, value=float(count))

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def events(self) -> tuple[Observation, ...]:
        """The stream in chronological order (stable tie-break).

        Windowed probes retain no raw stream and return ``()``.
        """
        if self.window is not None:
            return ()
        return tuple(sorted(self._events, key=Observation.sort_key))

    def count(self, kind: str) -> float:
        """Total ``value`` of one kind (event count for point events).

        Exact in both modes — windowed totals survive window eviction.
        """
        if self.window is not None:
            return self._kind_totals.get(kind, 0.0)
        return sum(o.value for o in self._events if o.kind == kind)

    def counts(self) -> dict[str, float]:
        """Per-kind totals for every kind present in the stream."""
        if self.window is not None:
            return dict(self._kind_totals)
        totals: dict[str, float] = {}
        for obs in self._events:
            totals[obs.kind] = totals.get(obs.kind, 0.0) + obs.value
        return totals

    def windows(self) -> tuple[WindowAggregate, ...]:
        """Retained window aggregates in time order (windowed mode only)."""
        if self.window is None:
            raise ExperimentError(
                "windows() requires a windowed probe (pass window=...)"
            )
        return tuple(
            WindowAggregate(
                index=index,
                start=index * self.window,
                end=(index + 1) * self.window,
                events=bucket.events,
                counts=dict(bucket.counts),
            )
            for index, bucket in sorted(self._buckets.items())
        )

    def metrics(self) -> dict[str, float]:
        """The gauge dict — becomes ``ExperimentResult.metrics`` verbatim.

        Windowed probes additionally report the bounded-memory account:
        ``obs_window`` (width), ``obs_windows_retained``,
        ``obs_retained_peak``, ``obs_window_evictions``, and
        ``obs_events_folded``.
        """
        out = dict(self._gauges)
        if self.window is not None:
            out["obs_window"] = self.window
            out["obs_windows_retained"] = float(len(self._buckets))
            out["obs_retained_peak"] = float(self._peak_retained)
            out["obs_window_evictions"] = float(self._evicted)
            out["obs_events_folded"] = self._folded
        return out

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.events())
