"""The typed observation stream every execution substrate emits through.

An execution, whatever engine ran it, is observable as one flat stream of
:class:`Observation` records — MAC events (``bcast`` / ``rcv`` / ``ack`` /
``abort``), MMB outputs (``deliver``), environment inputs (``arrival``),
substrate clock markers (``round`` / ``slot``), and fault transitions
(``crash`` / ``recover`` / ``join`` / ``leave`` / ``link_up`` /
``link_down``).  The :class:`Probe` collects the stream plus the scalar
gauges that become :attr:`ExperimentResult.metrics
<repro.experiments.ExperimentResult.metrics>`, replacing the per-substrate
ad-hoc metrics assembly with one documented surface.

Consumers:

* :class:`~repro.experiments.ExperimentResult` carries the stream in its
  ``observations`` field (``keep_raw=True`` runs only) and its ``metrics``
  are exactly the probe's gauges;
* :func:`repro.runtime.trace.from_observations` converts the MAC-event
  subset into :class:`~repro.runtime.trace.TraceEvent` records for the
  chronological trace tooling;
* campaign checks read the gauges by name (``metric:<gauge>`` series).

High-frequency clocks are summarized, not enumerated: the ``round`` and
``slot`` kinds appear once per execution as an aggregate marker whose
``value`` is the count (a 200k-slot radio run must not materialize 200k
records).  Every other kind is one record per event.

The probe never perturbs execution: substrates emit observations *after*
the engine has run (derived from instance logs, delivery tables, and fault
plans), so enabling observation capture cannot change a single RNG draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import ExperimentError
from repro.ids import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.engine import FaultEngine
    from repro.mac.messages import MessageInstance

#: Every observation kind a substrate may emit, in canonical tie-break
#: order (events at equal times sort by this order, then key, then node).
OBSERVATION_KINDS: tuple[str, ...] = (
    "arrival",
    "bcast",
    "rcv",
    "deliver",
    "ack",
    "abort",
    "round",
    "slot",
    "crash",
    "recover",
    "join",
    "leave",
    "link_up",
    "link_down",
)

_KIND_ORDER = {kind: index for index, kind in enumerate(OBSERVATION_KINDS)}


@dataclass(frozen=True)
class Observation:
    """One typed event of an execution, substrate-independent.

    Attributes:
        time: Event time in the substrate's time unit (simulated time, or
            slots × slot duration on the slotted substrates).
        kind: One of :data:`OBSERVATION_KINDS`.
        node: The acting node (receiver for ``rcv``/``deliver``, sender
            otherwise); ``None`` for node-less markers like ``round``.
        key: A stable label — message id for ``deliver``/``arrival``,
            payload tag for MAC events, ``"u-v"`` for link transitions.
        ref: Message-instance id for MAC events (``-1`` otherwise), so the
            stream converts losslessly to trace events.
        value: Magnitude; ``1.0`` for point events, the aggregate count
            for ``round``/``slot`` markers.
    """

    time: Time
    kind: str
    node: NodeId | None = None
    key: str = ""
    ref: int = -1
    value: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KIND_ORDER:
            raise ExperimentError(
                f"unknown observation kind {self.kind!r}; one of "
                f"{', '.join(OBSERVATION_KINDS)}"
            )

    def sort_key(self) -> tuple:
        node = self.node if self.node is not None else -1
        return (self.time, _KIND_ORDER[self.kind], self.ref, node, self.key)


def _payload_tag(payload: object) -> str:
    """A stable string label for an instance payload."""
    mid = getattr(payload, "mid", None)
    if mid is not None:
        return str(mid)
    return str(payload)


class Probe:
    """Collects one execution's observation stream and scalar gauges.

    Substrates create one probe per execution, derive observations from
    the engine's native records once it has run, and register their
    summary scalars as *gauges* — :meth:`metrics` returns exactly the
    gauge dict, which becomes ``ExperimentResult.metrics`` unchanged.
    """

    def __init__(self) -> None:
        self._events: list[Observation] = []
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        time: Time,
        node: NodeId | None = None,
        key: str = "",
        ref: int = -1,
        value: float = 1.0,
    ) -> None:
        """Record one observation (kind-checked)."""
        self._events.append(
            Observation(
                time=time, kind=kind, node=node, key=key, ref=ref, value=value
            )
        )

    def gauge(self, name: str, value: float) -> None:
        """Register one scalar metric (last write wins)."""
        self._gauges[name] = float(value)

    def gauges(self, values: dict[str, float]) -> None:
        """Register several scalar metrics at once."""
        for name, value in values.items():
            self.gauge(name, value)

    # ------------------------------------------------------------------
    # Derivation helpers (post-run, never during execution)
    # ------------------------------------------------------------------
    def observe_instances(self, instances: Iterable["MessageInstance"]) -> None:
        """Emit ``bcast``/``rcv``/``ack``/``abort`` from a MAC instance log."""
        for inst in instances:
            tag = _payload_tag(inst.payload)
            self.emit("bcast", inst.bcast_time, inst.sender, tag, inst.iid)
            for receiver, rtime in inst.rcv_times.items():
                self.emit("rcv", rtime, receiver, tag, inst.iid)
            if inst.ack_time is not None:
                self.emit("ack", inst.ack_time, inst.sender, tag, inst.iid)
            if inst.abort_time is not None:
                self.emit("abort", inst.abort_time, inst.sender, tag, inst.iid)

    def observe_deliveries(
        self, times: dict[tuple[NodeId, str], Time]
    ) -> None:
        """Emit one ``deliver`` per MMB delivery table entry."""
        for (node, mid), time in times.items():
            self.emit("deliver", time, node, mid)

    def observe_arrivals(
        self, arrivals: Iterable[tuple[NodeId, str, Time]]
    ) -> None:
        """Emit one ``arrival`` per environment input (node, mid, time)."""
        for node, mid, time in arrivals:
            self.emit("arrival", time, node, mid)

    def observe_fault_plan(self, engine: "FaultEngine") -> None:
        """Emit the fault timeline (crash/join/leave/link transitions)."""
        for event in engine.plan.events:
            if event.node is not None:
                self.emit(event.kind.value, event.time, event.node)
            else:
                u, v = event.edge
                self.emit(event.kind.value, event.time, None, f"{u}-{v}")

    def observe_clock(self, kind: str, count: int, end_time: Time) -> None:
        """Emit the aggregate ``round``/``slot`` marker for an execution."""
        if kind not in ("round", "slot"):
            raise ExperimentError(
                f"clock marker must be 'round' or 'slot', got {kind!r}"
            )
        self.emit(kind, end_time, None, value=float(count))

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def events(self) -> tuple[Observation, ...]:
        """The stream in chronological order (stable tie-break)."""
        return tuple(sorted(self._events, key=Observation.sort_key))

    def count(self, kind: str) -> float:
        """Total ``value`` of one kind (event count for point events)."""
        return sum(o.value for o in self._events if o.kind == kind)

    def counts(self) -> dict[str, float]:
        """Per-kind totals for every kind present in the stream."""
        totals: dict[str, float] = {}
        for obs in self._events:
            totals[obs.kind] = totals.get(obs.kind, 0.0) + obs.value
        return totals

    def metrics(self) -> dict[str, float]:
        """The gauge dict — becomes ``ExperimentResult.metrics`` verbatim."""
        return dict(self._gauges)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.events())
