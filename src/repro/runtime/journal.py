"""Persistent observation journals: deterministic gzip-framed JSONL.

An :class:`~repro.runtime.observations.Observation` stream normally dies
with the process; a *journal* is its durable form, compact enough to sit
next to every campaign point in the content-addressed store and strict
enough that two shards (or two machines) journaling the same spec+seed
produce **byte-identical** files.

Format (version :data:`JOURNAL_FORMAT`):

* the payload is UTF-8 JSON lines, gzip-framed with ``mtime=0`` and a
  pinned compression level so the bytes carry no timestamp or
  zlib-version drift;
* line 1 is a header object ``{"format", "kind", "count", "meta"}``
  serialized with sorted keys — ``meta`` is caller-supplied context
  (the experiment spec dict and its store key, for campaign journals);
* every following line is one observation as a compact 6-element array
  ``[time, kind, node, key, ref, value]`` with non-finite floats encoded
  as the strings ``"inf"`` / ``"-inf"`` / ``"nan"`` (strict JSON only);
* observations are written in canonical stream order
  (:meth:`Observation.sort_key`), and ``profile`` records are excluded
  by default — wall-clock and heap gauges are machine-dependent and
  would break cross-machine byte identity.

Readers sniff the gzip magic, so a hand-written plain-text ``.jsonl``
journal (useful for synthesizing violation fixtures in tests) loads
through the same functions.
"""

from __future__ import annotations

import gzip
import io
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ExperimentError
from repro.runtime.observations import Observation

#: Journal schema version; bump on any incompatible layout change.
JOURNAL_FORMAT = 1

#: Header ``kind`` discriminator (guards against feeding arbitrary JSONL).
JOURNAL_KIND = "observation-journal"

_GZIP_MAGIC = b"\x1f\x8b"

# Pinned framing parameters: gzip output is only byte-stable across
# machines when the embedded mtime is fixed and the level is explicit.
_GZIP_MTIME = 0
_GZIP_LEVEL = 9


def _encode_float(value: float) -> float | str:
    """Strict-JSON float encoding (mirrors the result-store convention)."""
    if math.isfinite(value):
        return float(value)
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def _decode_float(value: object) -> float:
    if isinstance(value, str):
        return float(value)
    return float(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Journal:
    """One loaded journal: header metadata plus the observation stream."""

    format: int
    meta: dict
    observations: tuple[Observation, ...]

    def __len__(self) -> int:
        return len(self.observations)


def _observation_row(obs: Observation) -> list:
    return [
        _encode_float(obs.time),
        obs.kind,
        obs.node,
        obs.key,
        obs.ref,
        _encode_float(obs.value),
    ]


def _row_observation(row: object, where: str) -> Observation:
    if not isinstance(row, list) or len(row) != 6:
        raise ExperimentError(
            f"{where}: journal line is not a 6-element observation array"
        )
    time, kind, node, key, ref, value = row
    return Observation(
        time=_decode_float(time),
        kind=str(kind),
        node=None if node is None else int(node),
        key=str(key),
        ref=int(ref),
        value=_decode_float(value),
    )


def journal_lines(
    observations: Iterable[Observation],
    meta: dict | None = None,
    include_profile: bool = False,
) -> Iterator[str]:
    """The journal's JSON lines (header first), in canonical order.

    ``profile`` observations are filtered out unless ``include_profile``
    — their values (wall time, heap churn) vary across machines and
    would defeat byte-identical journals.
    """
    kept = [
        obs
        for obs in observations
        if include_profile or obs.kind != "profile"
    ]
    kept.sort(key=Observation.sort_key)
    header = {
        "format": JOURNAL_FORMAT,
        "kind": JOURNAL_KIND,
        "count": len(kept),
        "meta": meta if meta is not None else {},
    }
    yield json.dumps(header, sort_keys=True, separators=(",", ":"))
    for obs in kept:
        yield json.dumps(_observation_row(obs), separators=(",", ":"))


def dump_journal(
    observations: Iterable[Observation],
    meta: dict | None = None,
    include_profile: bool = False,
) -> bytes:
    """Serialize a stream to deterministic gzip-framed journal bytes."""
    buffer = io.BytesIO()
    with gzip.GzipFile(
        fileobj=buffer, mode="wb", mtime=_GZIP_MTIME, compresslevel=_GZIP_LEVEL
    ) as frame:
        for line in journal_lines(observations, meta, include_profile):
            frame.write(line.encode("utf-8"))
            frame.write(b"\n")
    return buffer.getvalue()


def write_journal(
    path: str | Path,
    observations: Iterable[Observation],
    meta: dict | None = None,
    include_profile: bool = False,
) -> int:
    """Write a journal file; returns the observation count written."""
    data = dump_journal(observations, meta, include_profile)
    Path(path).write_bytes(data)
    # The header's count is authoritative and cheap to recover here.
    header = json.loads(
        gzip.decompress(data).split(b"\n", 1)[0].decode("utf-8")
    )
    return int(header["count"])


def _journal_text(path: str | Path) -> str:
    raw = Path(path).read_bytes()
    if raw[:2] == _GZIP_MAGIC:
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError) as exc:
            raise ExperimentError(f"{path}: corrupt journal frame: {exc}") from exc
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ExperimentError(f"{path}: journal is not UTF-8: {exc}") from exc


def loads_journal(text: str, where: str = "<journal>") -> Journal:
    """Parse journal text (header line + observation lines)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ExperimentError(f"{where}: empty journal")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"{where}:1: bad journal header: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != JOURNAL_KIND:
        raise ExperimentError(
            f"{where}: not an observation journal (missing "
            f"kind={JOURNAL_KIND!r} header)"
        )
    fmt = int(header.get("format", -1))
    if fmt != JOURNAL_FORMAT:
        raise ExperimentError(
            f"{where}: journal format {fmt} unsupported "
            f"(this build reads format {JOURNAL_FORMAT})"
        )
    observations: list[Observation] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"{where}:{lineno}: bad journal line: {exc}"
            ) from exc
        observations.append(_row_observation(row, f"{where}:{lineno}"))
    count = int(header.get("count", -1))
    if count != len(observations):
        raise ExperimentError(
            f"{where}: header declares {count} observations, "
            f"found {len(observations)}"
        )
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise ExperimentError(f"{where}: journal meta must be an object")
    return Journal(
        format=fmt, meta=meta, observations=tuple(observations)
    )


def read_journal(path: str | Path) -> Journal:
    """Load a journal file (gzip-framed or plain JSONL)."""
    return loads_journal(_journal_text(path), where=str(path))


def iter_journal(path: str | Path) -> Iterator[Observation]:
    """Iterate a journal's observations (loads eagerly; order preserved)."""
    return iter(read_journal(path).observations)
