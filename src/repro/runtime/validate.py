"""MMB solution checking (problem definition, paper §2).

The MMB problem is solved once every message ``m`` starting at node ``u``
has been delivered at every node of ``u``'s connected component in ``G``
(``G`` need not be connected).
"""

from __future__ import annotations

from repro.ids import MessageAssignment, MessageId, NodeId
from repro.runtime.results import DeliveryLog
from repro.topology.dualgraph import DualGraph


def required_deliveries(
    dual: DualGraph, assignment: MessageAssignment
) -> dict[MessageId, frozenset[NodeId]]:
    """For each message, the set of nodes that must deliver it."""
    required: dict[MessageId, frozenset[NodeId]] = {}
    for node, messages in assignment.messages.items():
        component = dual.component_of(node)
        for message in messages:
            required[message.mid] = component
    return required


def solved(
    dual: DualGraph, assignment: MessageAssignment, deliveries: DeliveryLog
) -> bool:
    """True iff the execution solved MMB."""
    for mid, nodes in required_deliveries(dual, assignment).items():
        holding = deliveries.nodes_holding(mid)
        if not nodes <= holding:
            return False
    return True


def missing_deliveries(
    dual: DualGraph, assignment: MessageAssignment, deliveries: DeliveryLog
) -> dict[MessageId, frozenset[NodeId]]:
    """For each unsolved message, the nodes still missing it (diagnostics)."""
    missing: dict[MessageId, frozenset[NodeId]] = {}
    for mid, nodes in required_deliveries(dual, assignment).items():
        rest = nodes - deliveries.nodes_holding(mid)
        if rest:
            missing[mid] = frozenset(rest)
    return missing
