"""Run results: delivery logs and summary metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import Message, MessageAssignment, MessageId, NodeId, Time
from repro.mac.messages import InstanceLog
from repro.topology.dualgraph import DualGraph


class DeliveryLog:
    """Collects every MMB ``deliver(m)_i`` output of an execution."""

    def __init__(self) -> None:
        self._times: dict[tuple[NodeId, MessageId], Time] = {}

    def record(self, node_id: NodeId, message: Message, time: Time) -> None:
        """Sink callback handed to the MAC layer."""
        self._times[(node_id, message.mid)] = time

    @property
    def times(self) -> dict[tuple[NodeId, MessageId], Time]:
        """(node, message id) → delivery time."""
        return self._times

    def time_of(self, node_id: NodeId, mid: MessageId) -> Time | None:
        """Delivery time of one message at one node, or None."""
        return self._times.get((node_id, mid))

    def nodes_holding(self, mid: MessageId) -> set[NodeId]:
        """All nodes that delivered the message."""
        return {node for (node, m) in self._times if m == mid}


@dataclass
class RunResult:
    """Summary of one standard-model MMB execution.

    Attributes:
        solved: True when every message reached its origin's whole
            ``G``-component.
        completion_time: Time of the last *required* delivery (the MMB
            solution time); ``inf`` if unsolved.
        per_message_completion: mid → time its last required delivery
            happened.
        deliveries: The full delivery log.
        broadcast_count: Number of ``bcast`` events in the execution.
        rcv_count: Number of ``rcv`` events in the execution.
        instances: The instance log (input to the axiom checker); None when
            the runner was asked not to retain it.
        sim_events: Number of simulator events processed.
        wall_time: Host seconds the run took (for harness reporting only).
    """

    solved: bool
    completion_time: Time
    per_message_completion: dict[MessageId, Time]
    deliveries: DeliveryLog
    broadcast_count: int
    rcv_count: int
    instances: InstanceLog | None
    sim_events: int
    wall_time: float = 0.0
    per_message_latency: dict[MessageId, Time] | None = None

    @property
    def max_latency(self) -> Time:
        """Worst arrival→last-delivery latency over all messages.

        Equals :attr:`completion_time` for time-0 workloads; differs for
        online arrivals.
        """
        if not self.per_message_latency:
            return self.completion_time
        return max(self.per_message_latency.values(), default=0.0)

    @staticmethod
    def from_execution(
        dual: DualGraph,
        assignment: MessageAssignment,
        deliveries: DeliveryLog,
        instances: InstanceLog | None,
        sim_events: int,
        wall_time: float,
        broadcast_count: int,
        rcv_count: int,
        arrival_times: dict[MessageId, Time] | None = None,
    ) -> "RunResult":
        """Assemble the result, computing solution status and times."""
        per_message: dict[MessageId, Time] = {}
        solved = True
        for node, messages in assignment.messages.items():
            component = dual.component_of(node)
            for message in messages:
                worst: Time = 0.0
                for member in component:
                    t = deliveries.time_of(member, message.mid)
                    if t is None:
                        solved = False
                        worst = float("inf")
                        break
                    worst = max(worst, t)
                per_message[message.mid] = worst
        completion = max(per_message.values(), default=0.0)
        latency: dict[MessageId, Time] | None = None
        if arrival_times is not None:
            latency = {
                mid: per_message[mid] - arrival_times.get(mid, 0.0)
                for mid in per_message
            }
        return RunResult(
            solved=solved,
            completion_time=completion,
            per_message_completion=per_message,
            deliveries=deliveries,
            broadcast_count=broadcast_count,
            rcv_count=rcv_count,
            instances=instances,
            sim_events=sim_events,
            wall_time=wall_time,
            per_message_latency=latency,
        )
