"""Experiment runtime: wiring topologies, MAC layers, and algorithms.

:func:`~repro.runtime.runner.run_standard` runs a standard-model MMB
execution to quiescence and returns a :class:`~repro.runtime.results.RunResult`
with completion times, per-message latencies, broadcast counts, and the
instance log (for axiom certification).  FMMB has its own entry point in
:mod:`repro.core.fmmb` because it runs on the slotted-rounds substrate.

:mod:`~repro.runtime.observations` defines the typed observation stream
(:class:`Observation`/:class:`Probe`) every execution substrate emits
through; :mod:`~repro.runtime.trace` converts its MAC-event subset into
archivable chronological traces.
"""

from repro.runtime.observations import OBSERVATION_KINDS, Observation, Probe
from repro.runtime.results import DeliveryLog, RunResult
from repro.runtime.runner import run_standard
from repro.runtime.validate import required_deliveries, solved

__all__ = [
    "DeliveryLog",
    "RunResult",
    "run_standard",
    "solved",
    "required_deliveries",
    "Observation",
    "Probe",
    "OBSERVATION_KINDS",
]
