"""Measurement primitives for the performance suite.

Wall-clock numbers are only comparable on the machine that produced them,
so every report carries a *calibration* measurement — the wall time of a
fixed, pure-Python reference workload.  Comparisons between two reports
(:mod:`repro.perf.report`) divide each benchmark's wall time by its
report's calibration time, which cancels (to first order) the speed
difference between the two hosts and lets CI gate on a committed baseline
recorded elsewhere.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

try:  # pragma: no cover - absent on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Iterations of the calibration loop (fixed forever; changing it breaks
#: comparability of every previously committed report).
CALIBRATION_ITERATIONS = 2_000_000


@dataclass
class BenchRecord:
    """One benchmark's measured outcome.

    Attributes:
        name: Stable benchmark identifier (``suite/name`` is unique).
        suite: ``"micro"`` or ``"macro"``.
        wall_seconds: Best (minimum) wall time over the repeats — the
            least-noise estimator for CPU-bound work.
        mean_seconds: Mean wall time over the repeats.
        repeats: Number of timed repetitions.
        events: Work units the run processed (kernel events, radio slots,
            rounds), when the benchmark reports them.
        events_per_second: ``events / wall_seconds`` when ``events`` is set.
        phases: Per-phase wall seconds of the *best* run (e.g. topology
            build vs. execution).
        extra: Free-form scalar facts (event counts, n, solved flags).
    """

    name: str
    suite: str
    wall_seconds: float
    mean_seconds: float
    repeats: int
    events: float | None = None
    events_per_second: float | None = None
    phases: dict[str, float] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "suite": self.suite,
            "wall_seconds": self.wall_seconds,
            "mean_seconds": self.mean_seconds,
            "repeats": self.repeats,
            "events": self.events,
            "events_per_second": self.events_per_second,
            "phases": dict(self.phases),
            "extra": dict(self.extra),
        }


def peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (0.0 if unavailable).

    Note: ``ru_maxrss`` is a high-water mark — it never decreases, so in a
    multi-benchmark process it reflects the hungriest benchmark so far.
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def calibrate() -> float:
    """Wall seconds of the fixed reference workload (machine speed probe)."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        acc = 0
        for i in range(CALIBRATION_ITERATIONS):
            acc += i & 7
        best = min(best, time.perf_counter() - started)
    assert acc >= 0  # keep the loop observable
    return best


def timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` once; return (wall seconds, its return value)."""
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


def measure(
    name: str,
    suite: str,
    fn: Callable[[], tuple[float | None, dict[str, float], dict[str, float]]],
    repeats: int = 3,
) -> BenchRecord:
    """Time ``fn`` ``repeats`` times and summarize.

    ``fn`` returns ``(events, phases, extra)`` for the run it performed;
    the phases/extra of the best (fastest) run are kept.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    walls: list[float] = []
    best_wall = float("inf")
    best_payload: tuple[float | None, dict[str, float], dict[str, float]] = (
        None,
        {},
        {},
    )
    for _ in range(repeats):
        wall, payload = timed(fn)
        walls.append(wall)
        if wall < best_wall:
            best_wall = wall
            best_payload = payload
    events, phases, extra = best_payload
    return BenchRecord(
        name=name,
        suite=suite,
        wall_seconds=best_wall,
        mean_seconds=sum(walls) / len(walls),
        repeats=repeats,
        events=events,
        events_per_second=(events / best_wall) if events else None,
        phases=phases,
        extra=extra,
    )


def environment_info() -> dict[str, str]:
    """Host facts recorded alongside every report."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
