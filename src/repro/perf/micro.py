"""Microbenchmarks: isolate one hot path each.

Each benchmark is a function ``bench(repeats) -> BenchRecord`` registered in
``MICRO_BENCHMARKS`` (ordered).  They exercise only public APIs, so the same
suite runs unchanged against any revision of the package — which is what
makes before/after comparisons meaningful.
"""

from __future__ import annotations

import random

from repro.perf.harness import BenchRecord, measure, timed
from repro.sim.kernel import Simulator

#: Registry of microbenchmarks, in execution order.
MICRO_BENCHMARKS: dict[str, "object"] = {}


def _micro(name: str):
    def _decorator(fn):
        MICRO_BENCHMARKS[name] = fn
        return fn

    return _decorator


# ----------------------------------------------------------------------
# Kernel
# ----------------------------------------------------------------------
@_micro("kernel_churn")
def bench_kernel_churn(repeats: int = 3) -> BenchRecord:
    """Schedule/cancel/drain churn: 120k events, every third cancelled."""
    count = 120_000

    def once():
        rng = random.Random(12345)
        sim = Simulator()
        sink = []

        def schedule_all():
            handles = []
            for i in range(count):
                handles.append(
                    sim.schedule(rng.random() * 100.0, sink.append, i)
                )
            return handles

        t_schedule, handles = timed(schedule_all)
        t_cancel, _ = timed(
            lambda: [h.cancel() for h in handles[::3]]
        )
        t_run, _ = timed(sim.run)
        return (
            float(sim.processed_events),
            {"schedule": t_schedule, "cancel": t_cancel, "run": t_run},
            {"scheduled": float(count), "fired": float(sim.processed_events)},
        )

    return measure("kernel_churn", "micro", once, repeats)


@_micro("kernel_zero_delay")
def bench_kernel_zero_delay(repeats: int = 3) -> BenchRecord:
    """Same-timestamp FIFO cascades: 400 chains of depth 150."""
    chains, depth = 400, 150

    def once():
        sim = Simulator()
        fired = [0]

        def cascade(remaining: int) -> None:
            fired[0] += 1
            if remaining > 0:
                sim.schedule(0.0, cascade, remaining - 1)

        for c in range(chains):
            sim.schedule(float(c), cascade, depth)
        t_run, _ = timed(sim.run)
        return (
            float(sim.processed_events),
            {"run": t_run},
            {"fired": float(fired[0])},
        )

    return measure("kernel_zero_delay", "micro", once, repeats)


@_micro("kernel_schedule_many")
def bench_kernel_schedule_many(repeats: int = 3) -> BenchRecord:
    """Batched fan-out scheduling: 600 batches of 200 events each.

    Uses :meth:`Simulator.schedule_many` when the kernel provides it and
    falls back to per-event ``schedule`` calls otherwise, so the benchmark
    measures exactly the win of the batch API on kernels that have one.
    """
    batches, width = 600, 200

    def once():
        sim = Simulator()
        sink = []
        batch_api = getattr(sim, "schedule_many", None)

        def schedule_all():
            for b in range(batches):
                base = float(b)
                if batch_api is not None:
                    batch_api(
                        [
                            (base + i * 1e-4, sink.append, (i,))
                            for i in range(width)
                        ]
                    )
                else:
                    for i in range(width):
                        sim.schedule_at(base + i * 1e-4, sink.append, i)

        t_schedule, _ = timed(schedule_all)
        t_run, _ = timed(sim.run)
        return (
            float(sim.processed_events),
            {"schedule": t_schedule, "run": t_run},
            {"batched": 1.0 if batch_api is not None else 0.0},
        )

    return measure("kernel_schedule_many", "micro", once, repeats)


# ----------------------------------------------------------------------
# MAC fan-out
# ----------------------------------------------------------------------
@_micro("bcast_fanout")
def bench_bcast_fanout(repeats: int = 3) -> BenchRecord:
    """One broadcast's G'-neighbor fan-out on a star: BMMB, n=192, k=48."""
    from repro.core.bmmb import BMMBNode
    from repro.ids import MessageAssignment
    from repro.mac.schedulers.uniform import UniformDelayScheduler
    from repro.runtime.runner import run_standard
    from repro.sim.rng import RandomSource
    from repro.topology.generators import star_network

    n, k = 192, 48
    dual = star_network(n)
    assignment = MessageAssignment.one_each(list(range(1, k + 1)), "m")

    def once():
        scheduler = UniformDelayScheduler(RandomSource(7, "sched"))
        t_run, result = timed(
            lambda: run_standard(
                dual,
                assignment,
                lambda _n: BMMBNode(),
                scheduler,
                fack=20.0,
                fprog=1.0,
                keep_instances=False,
            )
        )
        return (
            float(result.sim_events),
            {"run": t_run},
            {"solved": float(result.solved), "rcv": float(result.rcv_count)},
        )

    return measure("bcast_fanout", "micro", once, repeats)


@_micro("fault_epoch")
def bench_fault_epoch(repeats: int = 3) -> BenchRecord:
    """Per-delivery fault poll under a flapping plan: BMMB, n=64."""
    from repro.experiments.runner import RunOptions, run as run_spec
    from repro.experiments.specs import (
        AlgorithmSpec,
        ExperimentSpec,
        FaultSpec,
        ModelSpec,
        SchedulerSpec,
        TopologySpec,
        WorkloadSpec,
    )

    spec = ExperimentSpec(
        name="perf-fault-epoch",
        topology=TopologySpec(
            "random_geometric",
            {"n": 64, "side": 4.0, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("uniform"),
        workload=WorkloadSpec("one_each", {"k": 16}),
        fault=FaultSpec("flap_periodic", {"fraction": 0.3, "period": 3.0}),
        model=ModelSpec(fack=20.0, fprog=1.0),
        seed=21,
    )

    def once():
        t_run, result = timed(lambda: run_spec(spec, RunOptions.summary()))
        return (
            result.metrics.get("sim_events"),
            {"run": t_run},
            {
                "solved": float(result.solved),
                "link_flaps": result.metrics.get("link_flap_events", 0.0),
            },
        )

    return measure("fault_epoch", "micro", once, repeats)


@_micro("sinr_slots")
def bench_sinr_slots(repeats: int = 3) -> BenchRecord:
    """BMMB over the SINR-reception radio: n=24 grey-zone network, k=6.

    Exercises the ``sinr`` substrate end to end — gain-table build, the
    per-slot SINR reception loop, the decay MAC adapter, and the
    empirical-bound extraction — so the newest engine has a regression
    baseline alongside the collision-radio and event-kernel paths.
    """
    from repro.experiments.runner import (
        RunOptions,
        clear_topology_cache,
        run as run_spec,
    )
    from repro.experiments.specs import (
        AlgorithmSpec,
        ExperimentSpec,
        ModelSpec,
        TopologySpec,
        WorkloadSpec,
    )

    spec = ExperimentSpec(
        name="perf-sinr-slots",
        topology=TopologySpec(
            "random_geometric",
            {"n": 24, "side": 2.5, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"k": 6}),
        model=ModelSpec(params={"max_slots": 500_000}),
        substrate="sinr",
        seed=13,
    )

    def once():
        clear_topology_cache()  # every repeat pays the cold build
        t_run, result = timed(lambda: run_spec(spec, RunOptions.summary()))
        return (
            result.metrics.get("slots"),
            {"run": t_run},
            {
                "solved": float(result.solved),
                "slots": result.metrics.get("slots", 0.0),
            },
        )

    return measure("sinr_slots", "micro", once, repeats)


@_micro("sinr_slots_vectorized")
def bench_sinr_slots_vectorized(repeats: int = 3) -> BenchRecord:
    """``sinr_slots`` with the numpy-batched reception engine.

    The same spec, seed, and slot trajectory as ``sinr_slots`` (the
    engines decode identically), differing only in
    ``model.engine="vectorized"`` — committing both keeps the engine
    pair's relative cost under regression gating.  Skipped by the CLI
    when numpy is not importable.
    """
    from repro.experiments.runner import (
        RunOptions,
        clear_topology_cache,
        run as run_spec,
    )
    from repro.experiments.specs import (
        AlgorithmSpec,
        ExperimentSpec,
        ModelSpec,
        TopologySpec,
        WorkloadSpec,
    )

    spec = ExperimentSpec(
        name="perf-sinr-slots-vectorized",
        topology=TopologySpec(
            "random_geometric",
            {"n": 24, "side": 2.5, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"k": 6}),
        model=ModelSpec(params={"max_slots": 500_000}, engine="vectorized"),
        substrate="sinr",
        seed=13,
    )

    def once():
        clear_topology_cache()  # every repeat pays the cold build
        t_run, result = timed(lambda: run_spec(spec, RunOptions.summary()))
        return (
            result.metrics.get("slots"),
            {"run": t_run},
            {
                "solved": float(result.solved),
                "slots": result.metrics.get("slots", 0.0),
            },
        )

    return measure("sinr_slots_vectorized", "micro", once, repeats)


bench_sinr_slots_vectorized.requires_numpy = True


@_micro("arrival_stream")
def bench_arrival_stream(repeats: int = 3) -> BenchRecord:
    """Open Poisson arrivals under windowed aggregation: n=32, 120 messages.

    Exercises the steady-state traffic path end to end — arrival-process
    sampling, deferred injection on the standard substrate, the windowed
    (bounded-memory) observation probe, and the warmup-trimmed gauge
    extraction — so the long-horizon service mode has a regression
    baseline alongside the one-shot paths.
    """
    from repro.experiments.runner import (
        RunOptions,
        clear_topology_cache,
        run as run_spec,
    )
    from repro.experiments.specs import (
        AlgorithmSpec,
        ExperimentSpec,
        ModelSpec,
        SchedulerSpec,
        TopologySpec,
        WorkloadSpec,
    )

    spec = ExperimentSpec(
        name="perf-arrival-stream",
        topology=TopologySpec(
            "random_geometric",
            {"n": 32, "side": 3.0, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("uniform"),
        workload=WorkloadSpec(
            "open_arrivals", {"process": "poisson", "rate": 0.05, "count": 120}
        ),
        model=ModelSpec(fack=20.0, fprog=1.0),
        seed=17,
    )

    def once():
        clear_topology_cache()  # every repeat pays the cold build
        t_run, result = timed(
            lambda: run_spec(spec, RunOptions(window=100.0, max_windows=16))
        )
        return (
            result.metrics.get("sim_events"),
            {"run": t_run},
            {
                "solved": float(result.solved),
                "folded": result.metrics.get("obs_events_folded", 0.0),
                "peak_windows": result.metrics.get("obs_retained_peak", 0.0),
            },
        )

    return measure("arrival_stream", "micro", once, repeats)


# ----------------------------------------------------------------------
# Observation journals
# ----------------------------------------------------------------------
@_micro("journal_roundtrip")
def bench_journal_roundtrip(repeats: int = 3) -> BenchRecord:
    """Serialize + parse a 60k-event observation journal.

    Exercises the persistence path campaigns pay per journaled point:
    canonical ordering, strict-JSON row encoding, deterministic gzip
    framing, and the full parse back to :class:`Observation` tuples.
    """
    from repro.runtime.journal import dump_journal, loads_journal
    from repro.runtime.observations import Observation

    count = 60_000
    rng = random.Random(2024)
    kinds = ("bcast", "rcv", "ack", "deliver", "arrival")
    observations = tuple(
        Observation(
            time=rng.random() * 1000.0,
            kind=kinds[i % len(kinds)],
            node=i % 64,
            key=f"m{i % 40}",
            ref=i % 12_000,
            value=1.0,
        )
        for i in range(count)
    )

    def once():
        import gzip

        t_dump, data = timed(
            lambda: dump_journal(observations, meta={"bench": True})
        )
        t_load, journal = timed(
            lambda: loads_journal(gzip.decompress(data).decode("utf-8"))
        )
        assert len(journal) == count
        return (
            float(count),
            {"dump": t_dump, "load": t_load},
            {"bytes": float(len(data)), "events": float(count)},
        )

    return measure("journal_roundtrip", "micro", once, repeats)


# ----------------------------------------------------------------------
# Result store backends
# ----------------------------------------------------------------------
@_micro("store_roundtrip")
def bench_store_roundtrip(repeats: int = 3) -> BenchRecord:
    """Local vs http-loopback store put/get: 48 entries of ~2 KiB each.

    Measures the per-entry cost campaigns pay at every checkpoint for each
    backend: the local backend's atomic tmp+rename writes and raw reads,
    and the http backend's full wire path (request, transport digest
    verification, bounded-retry bookkeeping) against an in-process
    ``repro store serve`` instance.  The http side runs cache-less so the
    benchmark times the network path, not the write-through cache.
    """
    import hashlib
    import shutil
    import tempfile
    import threading

    from repro.store import HttpBackend, LocalBackend, make_server

    count = 48
    rng = random.Random(777)
    entries = tuple(
        (
            hashlib.sha256(f"store-bench/{i}".encode()).hexdigest(),
            bytes(rng.randrange(256) for _ in range(2048)),
        )
        for i in range(count)
    )

    def once():
        local_root = tempfile.mkdtemp(prefix="repro-bench-local-")
        server_root = tempfile.mkdtemp(prefix="repro-bench-server-")
        server = make_server(server_root, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            local = LocalBackend(local_root)
            remote = HttpBackend(
                f"http://127.0.0.1:{server.server_address[1]}"
            )

            def put_all(backend):
                for key, payload in entries:
                    backend.put("summary", key, payload)

            def get_all(backend):
                total = 0
                for key, _ in entries:
                    data = backend.get("summary", key)
                    assert data is not None
                    total += len(data)
                return total

            t_local_put, _ = timed(lambda: put_all(local))
            t_local_get, local_bytes = timed(lambda: get_all(local))
            t_http_put, _ = timed(lambda: put_all(remote))
            t_http_get, http_bytes = timed(lambda: get_all(remote))
            assert local_bytes == http_bytes
            return (
                float(2 * count),
                {
                    "local_put": t_local_put,
                    "local_get": t_local_get,
                    "http_put": t_http_put,
                    "http_get": t_http_get,
                },
                {
                    "entries": float(count),
                    "bytes": float(local_bytes),
                    "http_ratio": (t_http_put + t_http_get)
                    / max(t_local_put + t_local_get, 1e-9),
                },
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
            shutil.rmtree(local_root, ignore_errors=True)
            shutil.rmtree(server_root, ignore_errors=True)

    return measure("store_roundtrip", "micro", once, repeats)


# ----------------------------------------------------------------------
# Campaign fabric
# ----------------------------------------------------------------------
@_micro("supervisor_overhead")
def bench_supervisor_overhead(repeats: int = 3) -> BenchRecord:
    """Supervised fabric vs direct execution on the smoke ladder.

    Runs the same storeless smoke campaign twice — once through the
    legacy direct path and once through the supervised worker pool — so
    the fabric's fixed costs (worker spawn, pipe dispatch, per-point
    checkpoint bookkeeping) are regression-guarded against the work they
    wrap.
    """
    from repro.campaigns import FabricConfig, build_campaign, run_campaign

    campaign = build_campaign("smoke", points=4)
    fabric = FabricConfig(workers=1, poll_interval=0.005)

    def once():
        t_direct, direct_run = timed(
            lambda: run_campaign(campaign, store=None, direct=True)
        )
        t_supervised, supervised_run = timed(
            lambda: run_campaign(campaign, store=None, fabric=fabric)
        )
        assert direct_run.complete and supervised_run.complete
        return (
            float(supervised_run.ran),
            {"direct": t_direct, "supervised": t_supervised},
            {
                "points": float(supervised_run.ran),
                "overhead_ratio": t_supervised / max(t_direct, 1e-9),
            },
        )

    return measure("supervisor_overhead", "micro", once, repeats)


# ----------------------------------------------------------------------
# Topology queries
# ----------------------------------------------------------------------
@_micro("dualgraph_queries")
def bench_dualgraph_queries(repeats: int = 3) -> BenchRecord:
    """BFS distances, components, diameter, and G^r on an n=256 geometric."""
    from repro.sim.rng import RandomSource
    from repro.topology.geometric import random_geometric_network

    def once():
        t_build, dual = timed(
            lambda: random_geometric_network(
                256,
                side=8.0,
                c=1.6,
                grey_edge_probability=0.4,
                rng=RandomSource(3, "topo"),
            )
        )

        def queries():
            total = 0
            for source in dual.nodes:
                total += len(dual.distances_from(source))
            total += sum(len(c) for c in dual.components())
            total += dual.diameter()
            total += dual.power_graph(2).number_of_edges()
            total += dual.power_graph(2).number_of_edges()  # cached path
            return total

        t_query, total = timed(queries)
        return (
            float(total),
            {"build": t_build, "query": t_query},
            {"n": float(dual.n)},
        )

    return measure("dualgraph_queries", "micro", once, repeats)


def micro_available(name: str) -> bool:
    """Whether a microbenchmark can run here (numpy-gated entries skip)."""
    if not getattr(MICRO_BENCHMARKS[name], "requires_numpy", False):
        return True
    from repro.radio.engines import numpy_available

    return numpy_available()


def run_micro_suite(repeats: int = 3) -> list[BenchRecord]:
    """Execute every runnable microbenchmark; returns the records in order."""
    return [
        bench(repeats)
        for name, bench in MICRO_BENCHMARKS.items()
        if micro_available(name)
    ]
