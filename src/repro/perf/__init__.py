"""Performance harness: speed as a tracked, regression-tested property.

Three layers:

* :mod:`repro.perf.micro` — microbenchmarks isolating single hot paths
  (kernel churn, zero-delay cascades, batched scheduling, broadcast
  fan-out, fault polling, topology queries);
* :mod:`repro.perf.macro` — end-to-end experiment scenarios (BMMB, FMMB,
  radio) at increasing ``n``;
* :mod:`repro.perf.report` — ``BENCH_PERF.json`` emission and
  calibration-normalized comparison against a committed baseline.

Entry point: ``python -m repro perf`` (see :func:`repro.cli.cmd_perf`).
"""

from repro.perf.harness import BenchRecord, calibrate, peak_rss_mb
from repro.perf.macro import (
    DEFAULT_SIZES,
    LANE_SCENARIOS,
    SCENARIOS,
    run_macro_scenario,
    run_macro_suite,
    scenario_available,
)
from repro.perf.micro import MICRO_BENCHMARKS, run_micro_suite
from repro.perf.report import (
    Regression,
    build_report,
    compare_reports,
    load_report,
    write_report,
)

__all__ = [
    "BenchRecord",
    "DEFAULT_SIZES",
    "LANE_SCENARIOS",
    "MICRO_BENCHMARKS",
    "Regression",
    "SCENARIOS",
    "build_report",
    "calibrate",
    "compare_reports",
    "load_report",
    "peak_rss_mb",
    "run_macro_scenario",
    "run_macro_suite",
    "scenario_available",
    "run_micro_suite",
    "write_report",
]
