"""Assemble, persist, and compare ``BENCH_PERF.json`` reports.

A report records every benchmark with its wall time, work throughput, and
per-phase breakdown, plus the host's calibration time (see
:mod:`repro.perf.harness`).  :func:`compare_reports` gates regressions by
*normalized* wall time — ``wall / calibration`` — so a baseline committed
from one machine remains meaningful on another (e.g. a CI runner).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ExperimentError
from repro.perf.harness import BenchRecord, environment_info, peak_rss_mb

#: Report schema version (bump on incompatible layout changes).
SCHEMA_VERSION = 1


def build_report(
    records: Iterable[BenchRecord],
    calibration_seconds: float,
    note: str = "",
    before: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The JSON document for a finished suite run.

    Args:
        records: Benchmark outcomes.
        calibration_seconds: This host's reference-workload time.
        note: Free-form provenance line (e.g. the git revision).
        before: Optional embedded pre-optimization report to ship
            before/after evidence in one committed file; adds a
            ``speedup`` map (before wall / after wall, same machine).
    """
    record_list = [r.as_dict() for r in records]
    report: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "generated_by": "python -m repro perf",
        "note": note,
        "environment": environment_info(),
        "calibration_seconds": calibration_seconds,
        "peak_rss_mb": peak_rss_mb(),
        "records": record_list,
    }
    if before is not None:
        report["before"] = before
        speedup: dict[str, float] = {}
        before_by_key = {
            (r["suite"], r["name"]): r for r in before.get("records", [])
        }
        for rec in record_list:
            ref = before_by_key.get((rec["suite"], rec["name"]))
            if ref and rec["wall_seconds"] > 0:
                speedup[f"{rec['suite']}/{rec['name']}"] = round(
                    ref["wall_seconds"] / rec["wall_seconds"], 3
                )
        report["speedup"] = speedup
    return report


def write_report(path: str, report: dict[str, Any]) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict[str, Any]:
    """Load a report, validating the schema version."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported BENCH_PERF schema {report.get('schema')!r} in "
            f"{path} (expected {SCHEMA_VERSION})"
        )
    return report


@dataclass(frozen=True)
class Regression:
    """One benchmark that slowed down beyond the allowed threshold."""

    key: str
    baseline_normalized: float
    current_normalized: float
    ratio: float

    def describe(self) -> str:
        return (
            f"{self.key}: normalized wall {self.current_normalized:.4f} vs "
            f"baseline {self.baseline_normalized:.4f} "
            f"({(self.ratio - 1.0) * 100.0:+.1f}%)"
        )


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.25,
) -> tuple[list[Regression], dict[str, float], list[str]]:
    """Compare two reports by calibration-normalized wall time.

    Args:
        current: The freshly measured report.
        baseline: The committed reference report.
        max_regression: Allowed slowdown fraction (0.25 = 25%).

    Returns:
        ``(regressions, ratios, uncovered)`` — benchmarks slower than
        allowed, the normalized current/baseline ratio for every shared
        benchmark, and current benchmarks the baseline does not cover
        (callers should surface these: an uncovered benchmark is not
        regression-gated until the baseline is regenerated).
    """
    cal_cur = current.get("calibration_seconds") or 1.0
    cal_base = baseline.get("calibration_seconds") or 1.0
    base_by_key = {
        (r["suite"], r["name"]): r for r in baseline.get("records", [])
    }
    regressions: list[Regression] = []
    ratios: dict[str, float] = {}
    uncovered: list[str] = []
    for rec in current.get("records", []):
        ref = base_by_key.get((rec["suite"], rec["name"]))
        if ref is None:
            uncovered.append(f"{rec['suite']}/{rec['name']}")
            continue
        cur_norm = rec["wall_seconds"] / cal_cur
        base_norm = ref["wall_seconds"] / cal_base
        if base_norm <= 0:
            continue
        ratio = cur_norm / base_norm
        key = f"{rec['suite']}/{rec['name']}"
        ratios[key] = round(ratio, 4)
        if ratio > 1.0 + max_regression:
            regressions.append(
                Regression(
                    key=key,
                    baseline_normalized=base_norm,
                    current_normalized=cur_norm,
                    ratio=ratio,
                )
            )
    return regressions, ratios, uncovered
