"""Macro scenarios: full experiment runs at realistic scale.

Each scenario is an :class:`~repro.experiments.specs.ExperimentSpec`
factory parameterized by ``n``; the suite crosses the scenario families
with their size lists.  Scenario names are stable
(``<family>_n<size>``) so committed reports stay comparable as the suite
grows.
"""

from __future__ import annotations

import math

from repro.experiments import runner as _runner
from repro.experiments.runner import (
    RunOptions,
    materialize_topology,
    run as run_spec,
)
from repro.experiments.specs import (
    AlgorithmSpec,
    ExperimentSpec,
    FaultSpec,
    ModelSpec,
    SchedulerSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.perf.harness import BenchRecord, measure, timed

#: Default sizes per scenario family.  FMMB's round simulation and the
#: slotted radio are intrinsically heavier per node, so their lists stop
#: earlier — the suite targets minutes, not hours, on the "before" side
#: of an optimization.
DEFAULT_SIZES: dict[str, tuple[int, ...]] = {
    "bmmb_uniform": (64, 256, 512, 1024),
    "bmmb_contention": (512,),
    "bmmb_crash": (512,),
    "fmmb": (64, 256, 512),
    "radio": (16, 32, 48),
    # Slot-lane rungs (reception engines below run()): the reference
    # loops stop at 10^4 — a single decay sweep already costs tens of
    # seconds there — while the vectorized lane also takes the 10^5 rung.
    "sinr_lane_reference": (10_000,),
    "sinr_lane_vectorized": (10_000, 100_000),
}


def _geometric_side(n: int) -> float:
    """Box side keeping the expected G-degree roughly constant (~13)."""
    return max(2.0, round(math.sqrt(n) / 2.0, 1))


def _geometric(n: int) -> TopologySpec:
    return TopologySpec(
        "random_geometric",
        {
            "n": n,
            "side": _geometric_side(n),
            "c": 1.6,
            "grey_edge_probability": 0.4,
        },
    )


def spec_bmmb_uniform(n: int) -> ExperimentSpec:
    """Event-driven BMMB under the benign uniform scheduler."""
    return ExperimentSpec(
        name=f"perf-bmmb-uniform-n{n}",
        topology=_geometric(n),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("uniform"),
        workload=WorkloadSpec("one_each", {"k": 8}),
        model=ModelSpec(fack=20.0, fprog=1.0),
        seed=1,
    )


def spec_bmmb_contention(n: int) -> ExperimentSpec:
    """Event-driven BMMB under the contention scheduler (service loops)."""
    return ExperimentSpec(
        name=f"perf-bmmb-contention-n{n}",
        topology=_geometric(n),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("contention"),
        workload=WorkloadSpec("one_each", {"k": 8}),
        model=ModelSpec(fack=20.0, fprog=1.0),
        seed=1,
    )


def spec_bmmb_crash(n: int) -> ExperimentSpec:
    """BMMB with random crashes: exercises the fault-engine hot path."""
    return ExperimentSpec(
        name=f"perf-bmmb-crash-n{n}",
        topology=_geometric(n),
        algorithm=AlgorithmSpec("bmmb"),
        scheduler=SchedulerSpec("uniform"),
        workload=WorkloadSpec("one_each", {"k": 8}),
        fault=FaultSpec("crash_random", {"fraction": 0.1}),
        model=ModelSpec(fack=20.0, fprog=1.0),
        seed=1,
    )


def spec_fmmb(n: int) -> ExperimentSpec:
    """FMMB on the lock-step rounds substrate."""
    return ExperimentSpec(
        name=f"perf-fmmb-n{n}",
        topology=_geometric(n),
        algorithm=AlgorithmSpec("fmmb", {"c": 1.6}),
        workload=WorkloadSpec("one_each", {"k": 8}),
        model=ModelSpec(fprog=1.0, fack=20.0),
        substrate="rounds",
        seed=1,
    )


def spec_radio(n: int) -> ExperimentSpec:
    """BMMB over the decay radio MAC on a star (footnote 2's regime)."""
    return ExperimentSpec(
        name=f"perf-radio-n{n}",
        topology=TopologySpec("star", {"n": n}),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec("one_each", {"nodes": list(range(1, n))}),
        model=ModelSpec(params={"max_slots": 500_000}),
        substrate="radio",
        seed=1,
    )


#: Slot-lane rung families: reception-engine benchmarks *below* the
#: experiment loop.  One SINR radio network is built per rung, then a
#: deterministic decay-shaped slot sweep is timed through ``run_slot``
#: — the exact surface the engine API vectorizes — so the reference and
#: vectorized lanes are directly comparable at sizes where a full BMMB
#: run is infeasible.
LANE_SCENARIOS: dict[str, str] = {
    "sinr_lane_reference": "reference",
    "sinr_lane_vectorized": "vectorized",
}

SCENARIOS: dict[str, "object"] = {
    "bmmb_uniform": spec_bmmb_uniform,
    "bmmb_contention": spec_bmmb_contention,
    "bmmb_crash": spec_bmmb_crash,
    "fmmb": spec_fmmb,
    "radio": spec_radio,
    # Lane families dispatch to run_lane_scenario (no spec factory).
    **{family: engine for family, engine in LANE_SCENARIOS.items()},
}


def scenario_available(family: str) -> bool:
    """Whether a scenario family can run in this interpreter.

    Lane rungs need their engine importable (``vectorized`` → numpy);
    spec-factory scenarios always run.  The CLI uses this to skip — not
    fail — the vectorized rungs on pure-python hosts.
    """
    engine = LANE_SCENARIOS.get(family)
    if engine is None:
        return True
    from repro.radio.engines import RECEPTION_ENGINES

    return RECEPTION_ENGINES.get(engine).available()

#: Metric key per substrate that best represents "work units processed".
_EVENT_METRIC = {
    "standard": "sim_events",
    "rounds": "rounds_total",
    "radio": "slots",
}


#: Seed and sweep shape for the slot-lane rungs.  The decay steps start
#: deeper at 10^5 nodes (sparser transmitter sets): a p=1/2 slot there
#: would cost ~10^9 interference cells, which no committed rung needs.
_LANE_SEED = 29
_LANE_STEP_COUNT = 6


def _lane_steps(n: int) -> tuple[int, ...]:
    start = 1 if n <= 20_000 else 4
    return tuple(range(start, start + _LANE_STEP_COUNT))


def _lane_transmitter_sets(
    nodes, steps: tuple[int, ...]
) -> list[dict]:
    """Deterministic decay-shaped transmitter sets, one per step.

    Membership hashes each node id through a Knuth multiplicative mix
    against :func:`repro.radio.decay.phase_probability` — no RNG draws,
    so both engines (and every repeat) see byte-identical slot traffic.
    """
    from repro.radio.decay import phase_probability

    depth = max(steps)
    fractions = {
        v: ((v * 2654435761) & 0xFFFFFFFF) / 2.0**32 for v in nodes
    }
    return [
        {
            v: f"lane-m{step}"
            for v in nodes
            if fractions[v] < phase_probability(step, depth)
        }
        for step in steps
    ]


def run_lane_scenario(family: str, n: int, repeats: int = 1) -> BenchRecord:
    """Run one slot-lane rung: a decay sweep through ``run_slot``.

    The topology is built once (identical across engines and repeats —
    same seed, no lane-side RNG), then each repeat times a fresh
    :class:`~repro.radio.sinr.SINRRadioNetwork` over the same slot
    trajectory.  ``events`` counts interference cells (listener × sender
    pairs swept), the unit of reception work both engines share.
    """
    from repro.radio.sinr import SINRRadioNetwork
    from repro.sim.rng import RandomSource
    from repro.topology.geometric import random_geometric_network

    engine = LANE_SCENARIOS[family]
    rng = RandomSource(_LANE_SEED, "perf-lane")
    t_topo, dual = timed(
        lambda: random_geometric_network(
            n, _geometric_side(n), 1.6, 0.4, rng.child("topology")
        )
    )
    slots = _lane_transmitter_sets(dual.nodes_sorted, _lane_steps(n))
    cells = float(sum(len(s) * (n - len(s)) for s in slots))

    def once():
        net = SINRRadioNetwork(dual, rng.child("fading"), engine=engine)

        def sweep() -> int:
            received = 0
            for transmissions in slots:
                received += len(net.run_slot(transmissions))
            return received

        t_run, received = timed(sweep)
        extra = {
            "n": float(n),
            "slots": float(len(slots)),
            "received": float(received),
            "collisions": float(
                sum(stat.collisions for stat in net.stats)
            ),
        }
        return cells, {"run": t_run}, extra

    record = measure(f"{family}_n{n}", "macro", once, repeats)
    record.phases = {
        "topology": t_topo,
        "execute": record.phases.get("run", record.wall_seconds),
        "total": record.wall_seconds,
    }
    return record


def run_macro_scenario(
    family: str, n: int, repeats: int = 1
) -> BenchRecord:
    """Run one macro scenario and record wall time + phase breakdown.

    The recorded wall time is the end-to-end ``run(spec)`` call.  The
    topology-build phase is measured once separately (the build is
    deterministic) and subtracted to estimate the execution phase.
    Lane families dispatch to :func:`run_lane_scenario`.
    """
    if family in LANE_SCENARIOS:
        return run_lane_scenario(family, n, repeats)
    spec = SCENARIOS[family](n)  # type: ignore[operator]
    # Every timed repeat (and the phase probe below) must pay the cold
    # topology build: the process-local memo in the runner would otherwise
    # fold build cost into "execute" and skew comparisons against
    # revisions that have no such cache.  getattr: the same harness also
    # runs against pre-cache revisions when recording baselines.
    _clear_topology_cache = getattr(_runner, "clear_topology_cache", None)

    def once():
        if _clear_topology_cache is not None:
            _clear_topology_cache()
        t_total, result = timed(lambda: run_spec(spec, RunOptions.summary()))
        events = result.metrics.get(_EVENT_METRIC.get(spec.substrate, ""), None)
        extra = {
            "n": float(n),
            "solved": float(result.solved),
            "delivered": float(result.delivered_count),
        }
        return events, {"total": t_total}, extra

    record = measure(f"{family}_n{n}", "macro", once, repeats)
    if _clear_topology_cache is not None:
        _clear_topology_cache()
    t_topo, _dual = timed(lambda: materialize_topology(spec))
    record.phases = {
        "topology": t_topo,
        "execute": max(record.wall_seconds - t_topo, 0.0),
        "total": record.phases.get("total", record.wall_seconds),
    }
    return record


def run_macro_suite(
    sizes: dict[str, tuple[int, ...]] | None = None, repeats: int = 1
) -> list[BenchRecord]:
    """Execute the macro suite (every family at each of its sizes)."""
    sizes = sizes or DEFAULT_SIZES
    records: list[BenchRecord] = []
    for family in SCENARIOS:
        if not scenario_available(family):
            continue
        for n in sizes.get(family, ()):
            records.append(run_macro_scenario(family, n, repeats))
    return records
