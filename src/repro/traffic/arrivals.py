"""Arrival processes: open message streams behind the workload registry.

An *arrival process* turns a rate into an
:class:`~repro.core.problem.ArrivalSchedule`: ``build(dual, rng, rate,
count, ...) -> OpenArrivalSchedule``.  Processes are registry entries
(:data:`ARRIVALS`, ``@register_arrival``) so campaigns and the CLI can
name them, and the single ``open_arrivals`` workload bridges the registry
into the existing workload axis — ``WorkloadSpec("open_arrivals",
{"process": "bursty", "rate": 0.02, "count": 40})`` is a sweepable spec
like any other.

All randomness is drawn from the reserved ``arrivals`` child of the
spec's ``workload`` stream, so adding or tuning an arrival process never
perturbs topology/scheduler/fault streams, and two processes at the same
seed draw from identical streams (paired comparisons stay paired).

Schedules built here are :class:`OpenArrivalSchedule` — a marked subclass
of :class:`ArrivalSchedule` that additionally carries the steady-state
accounting intent (the warmup fraction).  Substrates key their
steady-state gauges on that mark, which keeps every pre-existing workload
kind (``staggered``, ``poisson``, time-0 assignments) on the unchanged,
byte-identical code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.problem import Arrival, ArrivalSchedule
from repro.errors import ExperimentError
from repro.experiments.registries import Registry, register_workload
from repro.ids import Message

#: Name of the reserved sub-stream arrival processes draw from (a child
#: of the experiment's ``workload`` stream).
ARRIVAL_STREAM = "arrivals"

#: The arrival-process registry: string key -> schedule builder.
ARRIVALS = Registry("arrival process")


def register_arrival(name: str):
    """Register ``build(dual, rng, rate, count, ...) -> OpenArrivalSchedule``
    under ``name``."""
    return ARRIVALS.register(name)


def list_arrivals() -> list[str]:
    """Registered arrival-process keys."""
    return ARRIVALS.names()


@dataclass(frozen=True)
class OpenArrivalSchedule(ArrivalSchedule):
    """An arrival schedule produced by a registered arrival process.

    Identical to :class:`ArrivalSchedule` on every execution path; the
    subclass is the *steady-state mark*: substrates that see it emit the
    warmup-trimmed service metrics (throughput, latency percentiles,
    in-flight gauges) with the carried ``warmup_fraction``.

    Attributes:
        warmup_fraction: Fraction of the run horizon discarded before
            steady-state accounting starts.
    """

    warmup_fraction: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ExperimentError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )


def _check_common(rate: float, count: int) -> None:
    if rate <= 0:
        raise ExperimentError(f"arrival rate must be positive, got {rate}")
    if count < 1:
        raise ExperimentError(f"arrival count must be >= 1, got {count}")


def _exp_gap(rng, mean: float) -> float:
    """One exponential inter-event gap with the given mean."""
    return -mean * math.log(max(rng.random(), 1e-12))


@register_arrival("poisson")
def _poisson_process(
    dual,
    rng,
    rate: float = 0.02,
    count: int = 20,
    prefix: str = "m",
    warmup_fraction: float = 0.2,
) -> OpenArrivalSchedule:
    """Memoryless arrivals: exponential gaps with mean ``1/rate``, each
    message injected at a uniformly random node."""
    _check_common(rate, count)
    nodes = list(dual.nodes)
    arrivals = []
    t = 0.0
    for i in range(count):
        t += _exp_gap(rng, 1.0 / rate)
        node = rng.choice(nodes)
        arrivals.append(Arrival(t, node, Message(f"{prefix}{i}", node)))
    return OpenArrivalSchedule(tuple(arrivals), warmup_fraction=warmup_fraction)


@register_arrival("bursty")
def _bursty_process(
    dual,
    rng,
    rate: float = 0.02,
    count: int = 20,
    mean_on: float = 50.0,
    mean_off: float = 150.0,
    prefix: str = "m",
    warmup_fraction: float = 0.2,
) -> OpenArrivalSchedule:
    """Markov-modulated on/off arrivals.

    The process alternates exponentially distributed ON and OFF dwell
    periods (means ``mean_on`` / ``mean_off``).  During ON periods
    arrivals are Poisson at rate ``rate / on_share`` where ``on_share =
    mean_on / (mean_on + mean_off)`` — so the *long-run* average rate is
    ``rate`` and the ``rate`` axis stays comparable across processes,
    while the instantaneous load arrives in bursts.
    """
    _check_common(rate, count)
    if mean_on <= 0 or mean_off <= 0:
        raise ExperimentError(
            f"dwell means must be positive (mean_on={mean_on}, "
            f"mean_off={mean_off})"
        )
    on_share = mean_on / (mean_on + mean_off)
    burst_gap = on_share / rate  # mean inter-arrival gap while ON
    nodes = list(dual.nodes)
    arrivals = []
    t = 0.0
    period_end = _exp_gap(rng, mean_on)
    i = 0
    while i < count:
        gap = _exp_gap(rng, burst_gap)
        if t + gap < period_end:
            t += gap
            node = rng.choice(nodes)
            arrivals.append(Arrival(t, node, Message(f"{prefix}{i}", node)))
            i += 1
        else:
            # ON period exhausted: skip the OFF dwell entirely.
            t = period_end + _exp_gap(rng, mean_off)
            period_end = t + _exp_gap(rng, mean_on)
    return OpenArrivalSchedule(tuple(arrivals), warmup_fraction=warmup_fraction)


@register_arrival("diurnal")
def _diurnal_process(
    dual,
    rng,
    rate: float = 0.02,
    count: int = 20,
    period: float = 500.0,
    amplitude: float = 0.8,
    prefix: str = "m",
    warmup_fraction: float = 0.2,
) -> OpenArrivalSchedule:
    """Sinusoidally modulated arrivals (a day/night load curve).

    The instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*t /
    period))``, realized by thinning a Poisson stream at the peak rate —
    the mean rate over a full period is exactly ``rate``.
    """
    _check_common(rate, count)
    if period <= 0:
        raise ExperimentError(f"period must be positive, got {period}")
    if not 0.0 <= amplitude <= 1.0:
        raise ExperimentError(f"amplitude must be in [0, 1], got {amplitude}")
    peak = rate * (1.0 + amplitude)
    nodes = list(dual.nodes)
    arrivals = []
    t = 0.0
    i = 0
    while i < count:
        t += _exp_gap(rng, 1.0 / peak)
        current = rate * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))
        if rng.random() * peak <= current:
            node = rng.choice(nodes)
            arrivals.append(Arrival(t, node, Message(f"{prefix}{i}", node)))
            i += 1
    return OpenArrivalSchedule(tuple(arrivals), warmup_fraction=warmup_fraction)


@register_workload("open_arrivals")
def _build_open_arrivals(
    dual, rng, process: str = "poisson", **params
) -> OpenArrivalSchedule:
    """The workload bridge: a named arrival process as a spec workload.

    ``WorkloadSpec("open_arrivals", {"process": "...", "rate": ...,
    "count": ...})`` resolves the process from :data:`ARRIVALS` and draws
    it from the reserved ``arrivals`` child stream.
    """
    build = ARRIVALS.get(process)
    try:
        return build(dual, rng.child(ARRIVAL_STREAM), **params)
    except TypeError as exc:
        raise ExperimentError(
            f"arrival process {process!r} rejected params "
            f"{sorted(params)}: {exc}"
        ) from exc
