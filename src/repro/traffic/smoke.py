"""Traffic smoke check: open arrivals + bounded-memory probes, end to end.

Mirrors ``repro.experiments.substrate_smoke``: a fast, assertion-backed
pass the CI workflow runs as its own step.  Two legs:

1. Short open-arrival runs on two substrates (standard, radio) asserting
   the steady-state gauges are present and sane.
2. A longer-horizon windowed run asserting the observation buffer peak
   stayed under the window bound while more events than that were folded
   through it — the O(window) memory claim, checked not claimed.
"""

from __future__ import annotations

STEADY_GAUGES = (
    "throughput",
    "latency_p50",
    "latency_p95",
    "latency_p99",
    "inflight_peak",
    "inflight_mean",
    "backlog_final",
)


def _open_spec(substrate: str, *, rate: float, count: int, seed: int, **model):
    from repro.experiments import (
        AlgorithmSpec,
        ExperimentSpec,
        ModelSpec,
        TopologySpec,
        WorkloadSpec,
    )

    return ExperimentSpec(
        name=f"traffic-smoke-{substrate}",
        topology=TopologySpec(
            "random_geometric",
            {"n": 12, "side": 2.0, "c": 1.6, "grey_edge_probability": 0.4},
        ),
        algorithm=AlgorithmSpec("bmmb"),
        workload=WorkloadSpec(
            "open_arrivals", {"process": "poisson", "rate": rate, "count": count}
        ),
        model=ModelSpec(params=dict(model)) if model else ModelSpec(),
        substrate=substrate,
        seed=seed,
    )


def traffic_smoke(verbose: bool = False) -> None:
    """Run the traffic smoke legs; raise AssertionError on any failure."""
    from repro.experiments.runner import RunOptions, run

    # Leg 1: steady-state gauges exist on two arrival-capable substrates.
    for substrate, model in (
        ("standard", {}),
        ("radio", {"max_slots": 500_000}),
    ):
        spec = _open_spec(substrate, rate=0.01, count=8, seed=11, **model)
        result = run(spec, RunOptions.summary())
        missing = [g for g in STEADY_GAUGES if g not in result.metrics]
        assert not missing, f"{substrate}: missing steady gauges {missing}"
        assert result.solved, f"{substrate}: open-arrival smoke did not solve"
        assert result.metrics["throughput"] > 0.0
        assert result.metrics["latency_p50"] <= result.metrics["latency_p99"]
        if verbose:
            print(
                f"traffic-smoke {substrate}: throughput="
                f"{result.metrics['throughput']:.4f} "
                f"p95={result.metrics['latency_p95']:.1f}"
            )

    # Leg 2: long-horizon windowed run — observation memory is O(window).
    max_windows = 8
    spec = _open_spec("standard", rate=0.02, count=40, seed=13)
    result = run(spec, RunOptions(window=50.0, max_windows=max_windows))
    assert result.raw is None
    assert result.observations == ()
    metrics = result.metrics
    assert metrics["obs_retained_peak"] <= max_windows, (
        f"window bound violated: peak {metrics['obs_retained_peak']} > "
        f"{max_windows}"
    )
    assert metrics["obs_events_folded"] > max_windows
    assert metrics["obs_window_evictions"] > 0
    if verbose:
        print(
            "traffic-smoke windowed: folded="
            f"{int(metrics['obs_events_folded'])} peak_windows="
            f"{int(metrics['obs_retained_peak'])} evictions="
            f"{int(metrics['obs_window_evictions'])}"
        )
        print("traffic smoke OK")
