"""Warmup-trimmed steady-state service metrics.

One-shot MMB runs report a single completion time.  A service under an
open arrival stream is summarized differently: discard a warmup prefix
of the horizon, then report throughput, delivery-latency percentiles,
and queue/in-flight occupancy over the measured remainder.  The output
is a flat ``str -> float`` dict so the gauges drop straight into
``ExperimentResult.metrics`` and every existing sweep/campaign/figure
consumer works unchanged (``metric:latency_p95`` as a series, etc.).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.analysis.stats import percentile
from repro.errors import ExperimentError

#: Latency percentiles reported by :func:`steady_state_metrics`.
LATENCY_PERCENTILES = (50, 95, 99)

#: Fixed window count for :func:`window_series` — per-window curves from
#: different sweep points share an x axis (window index) regardless of
#: how long each run's horizon stretched.
SERIES_WINDOWS = 12


def window_series(
    arrival_times: Mapping[str, float],
    completion_times: Mapping[str, float],
    warmup_fraction: float = 0.2,
    windows: int = SERIES_WINDOWS,
) -> dict[str, tuple[tuple[float, float], ...]]:
    """Per-window latency/throughput curves over the measured span.

    The measured span (post-warmup, same convention as
    :func:`steady_state_metrics`) is cut into ``windows`` equal-width
    windows; each finite completion of a measured message falls into the
    window containing its completion time.

    Returns two named series of ``(window_index, value)`` points:
    ``window_latency_mean`` (mean delivery latency of that window's
    completions; windows with no completion are omitted) and
    ``window_throughput`` (completions per unit time; zero-completion
    windows report 0.0).  A run with no finite measured completion, or a
    degenerate span, returns empty series.
    """
    if not arrival_times:
        raise ExperimentError("window_series needs at least one arrival")
    if windows < 1:
        raise ExperimentError(f"windows must be >= 1, got {windows}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ExperimentError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    arrival_horizon = max(arrival_times.values())
    warmup = warmup_fraction * arrival_horizon
    horizon = arrival_horizon
    done_latency: list[tuple[float, float]] = []
    for mid, arrived in arrival_times.items():
        if arrived < warmup:
            continue
        done = completion_times.get(mid, math.inf)
        if math.isfinite(done):
            horizon = max(horizon, done)
            done_latency.append((done, done - arrived))
    span = horizon - warmup
    if not done_latency or span <= 0:
        return {"window_latency_mean": (), "window_throughput": ()}
    width = span / windows
    sums = [0.0] * windows
    counts = [0] * windows
    for done, latency in done_latency:
        index = min(windows - 1, int((done - warmup) / width))
        sums[index] += latency
        counts[index] += 1
    latency_points = tuple(
        (float(i), sums[i] / counts[i])
        for i in range(windows)
        if counts[i]
    )
    throughput_points = tuple(
        (float(i), counts[i] / width) for i in range(windows)
    )
    return {
        "window_latency_mean": latency_points,
        "window_throughput": throughput_points,
    }


def steady_state_metrics(
    arrival_times: Mapping[str, float],
    completion_times: Mapping[str, float],
    warmup_fraction: float = 0.2,
) -> dict[str, float]:
    """Summarize a service run as steady-state gauges.

    Args:
        arrival_times: mid -> injection time for every injected message.
        completion_times: mid -> time the message was fully delivered
            (``inf`` or absent when it never completed).
        warmup_fraction: Fraction of the *arrival horizon* (time of the
            last injection) discarded before measuring; messages arriving
            during warmup are excluded entirely.  Keying warmup to the
            injection timeline (not the completion horizon) keeps the
            measured set non-empty even when a saturated service drags
            completions far past the last arrival.

    Returns:
        Gauges: ``throughput`` (completions per unit time after warmup),
        ``latency_p50``/``latency_p95``/``latency_p99`` (``inf`` when no
        measured message completed), ``inflight_peak`` / ``inflight_mean``
        (messages concurrently in service, time-weighted mean), and the
        bookkeeping gauges ``backlog_final``, ``warmup_time``,
        ``arrivals_measured``, ``delivered_measured``.
    """
    if not arrival_times:
        raise ExperimentError("steady_state_metrics needs at least one arrival")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ExperimentError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )

    finite_completions = [
        t for t in completion_times.values() if math.isfinite(t)
    ]
    arrival_horizon = max(arrival_times.values())
    horizon = arrival_horizon
    if finite_completions:
        horizon = max(horizon, max(finite_completions))
    warmup = warmup_fraction * arrival_horizon

    measured = [mid for mid, t in arrival_times.items() if t >= warmup]
    latencies = []
    delivered = 0
    for mid in measured:
        done = completion_times.get(mid, math.inf)
        if math.isfinite(done):
            delivered += 1
            latencies.append(done - arrival_times[mid])

    span = horizon - warmup
    throughput = delivered / span if span > 0 else 0.0

    gauges: dict[str, float] = {
        "throughput": throughput,
        "warmup_time": warmup,
        "arrivals_measured": float(len(measured)),
        "delivered_measured": float(delivered),
        "backlog_final": float(len(measured) - delivered),
    }
    for p in LATENCY_PERCENTILES:
        gauges[f"latency_p{p}"] = (
            percentile(latencies, p) if latencies else math.inf
        )

    # In-flight occupancy over the measured window: +1 at each measured
    # arrival, -1 at its (finite) completion, time-weighted between events.
    events: list[tuple[float, int]] = []
    for mid in measured:
        events.append((arrival_times[mid], +1))
        done = completion_times.get(mid, math.inf)
        if math.isfinite(done):
            events.append((done, -1))
    events.sort()
    depth = 0
    peak = 0
    weighted = 0.0
    prev = warmup
    for time, delta in events:
        if time > prev:
            weighted += depth * (time - prev)
            prev = time
        depth += delta
        peak = max(peak, depth)
    gauges["inflight_peak"] = float(peak)
    gauges["inflight_mean"] = weighted / span if span > 0 else 0.0
    return gauges
