"""Steady-state MMB service mode under open arrival streams.

The one-shot experiments inject everything at time 0 and report a finish
time; ``repro.traffic`` turns the same simulator into a *service*:

- :mod:`repro.traffic.arrivals` — registered arrival processes
  (``poisson``, ``bursty``, ``diurnal``) exposed through the workload
  registry as the ``open_arrivals`` workload kind.
- :mod:`repro.traffic.metrics` — warmup-trimmed throughput, latency
  percentiles, and in-flight gauges emitted as ordinary result metrics.
- :class:`repro.mac.dedup.DeliveredRing` (re-exported here) — bounded
  delivered/dedup state for never-ending streams (``delivered_cap``).
- :mod:`repro.traffic.smoke` — the CI traffic-smoke check.

Importing this package registers the arrival processes and the
``open_arrivals`` workload; ``repro.experiments`` imports it at the end
of its own init so specs, sweep workers, and the CLI all see them.
"""

from repro.mac.dedup import DeliveredRing
from repro.traffic.arrivals import (
    ARRIVAL_STREAM,
    ARRIVALS,
    OpenArrivalSchedule,
    list_arrivals,
    register_arrival,
)
from repro.traffic.metrics import (
    LATENCY_PERCENTILES,
    SERIES_WINDOWS,
    steady_state_metrics,
    window_series,
)
from repro.traffic.smoke import STEADY_GAUGES, traffic_smoke

__all__ = [
    "ARRIVAL_STREAM",
    "ARRIVALS",
    "DeliveredRing",
    "LATENCY_PERCENTILES",
    "SERIES_WINDOWS",
    "OpenArrivalSchedule",
    "STEADY_GAUGES",
    "list_arrivals",
    "register_arrival",
    "steady_state_metrics",
    "traffic_smoke",
    "window_series",
]
