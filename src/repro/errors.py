"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that has
    already been stopped, or exceeding the configured event budget.
    """


class TopologyError(ReproError):
    """A dual graph or generator constraint was violated.

    Examples: ``E ⊆ E'`` broken, mismatched vertex sets, a grey-zone network
    without an embedding, or invalid generator parameters.
    """


class MACError(ReproError):
    """The abstract MAC layer was driven outside its contract."""


class WellFormednessError(MACError):
    """A user automaton violated the well-formedness constraints.

    The paper requires that every two ``bcast_i`` events have an intervening
    ``ack_i`` or ``abort_i`` event, and that aborts refer to the pending
    broadcast.
    """


class AxiomViolation(MACError):
    """A recorded execution trace violates a MAC-layer axiom.

    Raised by :mod:`repro.mac.axioms` when a trace fails receive
    correctness, acknowledgment correctness, termination, the acknowledgment
    bound, or the progress bound.
    """


class SchedulerError(MACError):
    """A message scheduler produced an inadmissible delivery plan."""


class AlgorithmError(ReproError):
    """An algorithm automaton reached an invalid internal state."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run did not complete."""
