"""Message-instance bookkeeping: the paper's "cause" function, concretely.

A *message instance* is one ``bcast`` event together with every ``rcv`` and
the ``ack``/``abort`` event the cause function maps back to it (§3.2.1).
Because our layer creates a fresh :class:`MessageInstance` per ``bcast`` and
routes every delivery through it, the cause function is total and injective
by construction — there is nothing to infer after the fact.

The :class:`InstanceLog` retains all instances of an execution and is the
input to the axiom checker and to the analysis code (broadcast counts,
latency histograms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.ids import InstanceId, NodeId, Time


@dataclass(slots=True)
class MessageInstance:
    """One local broadcast and everything it caused.

    Attributes:
        iid: Unique instance id (the cause function's key).
        sender: The broadcasting node.
        payload: The broadcast content (opaque to the MAC layer).
        bcast_time: When the ``bcast`` event occurred.
        rcv_times: Map receiver → time of its (single) ``rcv`` event.
        ack_time: Time of the ``ack`` event, or None.
        abort_time: Time of the ``abort`` event, or None.
    """

    iid: InstanceId
    sender: NodeId
    payload: Any
    bcast_time: Time
    rcv_times: dict[NodeId, Time] = field(default_factory=dict)
    ack_time: Time | None = None
    abort_time: Time | None = None

    @property
    def terminated(self) -> bool:
        """True once the instance has its ack or abort event."""
        return self.ack_time is not None or self.abort_time is not None

    @property
    def termination_time(self) -> Time:
        """Time of the terminating event; ``+inf`` while still pending.

        The ``+inf`` convention makes "terminating event does not precede
        time t" checks uniform in the axiom checker.
        """
        if self.ack_time is not None:
            return self.ack_time
        if self.abort_time is not None:
            return self.abort_time
        return math.inf

    def delivered_to(self, receiver: NodeId) -> bool:
        """True if this instance already caused a ``rcv`` at ``receiver``."""
        return receiver in self.rcv_times

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            f"ack@{self.ack_time}"
            if self.ack_time is not None
            else f"abort@{self.abort_time}"
            if self.abort_time is not None
            else "pending"
        )
        return (
            f"MessageInstance(iid={self.iid}, sender={self.sender}, "
            f"t={self.bcast_time}, rcvs={len(self.rcv_times)}, {state})"
        )


class InstanceLog:
    """Append-only store of every message instance in an execution."""

    def __init__(self) -> None:
        self._instances: list[MessageInstance] = []

    def new_instance(self, sender: NodeId, payload: Any, time: Time) -> MessageInstance:
        """Create, register, and return the instance for a fresh ``bcast``."""
        instance = MessageInstance(
            iid=len(self._instances), sender=sender, payload=payload, bcast_time=time
        )
        self._instances.append(instance)
        return instance

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[MessageInstance]:
        return iter(self._instances)

    def __getitem__(self, iid: InstanceId) -> MessageInstance:
        return self._instances[iid]

    def pending(self) -> list[MessageInstance]:
        """Instances without a terminating event (should be empty at quiescence)."""
        return [inst for inst in self._instances if not inst.terminated]

    def by_sender(self, sender: NodeId) -> list[MessageInstance]:
        """All instances broadcast by one node, in bcast order."""
        return [inst for inst in self._instances if inst.sender == sender]

    def total_rcv_events(self) -> int:
        """Total number of ``rcv`` events across all instances."""
        return sum(len(inst.rcv_times) for inst in self._instances)
