"""Abstract MAC layer models (standard and enhanced).

The abstract MAC layer (Kuhn, Lynch, Newport [29, 30]) hides contention and
signal propagation behind an *acknowledged local broadcast* primitive over a
dual graph ``(G, G')``:

* a broadcast by ``u`` is delivered to **every** ``G``-neighbor and to an
  arbitrary, scheduler-chosen subset of ``G' \\ G``-neighbors;
* the sender then receives an acknowledgment;
* the **acknowledgment bound** ``Fack`` caps bcast→ack latency;
* the **progress bound** ``Fprog`` guarantees a node receives *some* message
  whenever a ``G``-neighbor has been broadcasting for longer than ``Fprog``.

This package implements:

* :mod:`~repro.mac.interfaces` — the automaton/API surface nodes program to;
* :mod:`~repro.mac.messages` — message-instance bookkeeping (the paper's
  "cause" function made concrete);
* :mod:`~repro.mac.standard` — the standard layer (event-driven, no clocks);
* :mod:`~repro.mac.enhanced` — the enhanced layer (adds ``abort``, timers,
  and knowledge of ``Fack``/``Fprog``);
* :mod:`~repro.mac.rounds` — lock-step ``Fprog`` rounds built from the
  enhanced layer's capabilities (used by FMMB);
* :mod:`~repro.mac.schedulers` — the model's nondeterministic message
  scheduler, as pluggable policies (benign, contention, worst-case ack,
  and the paper's lower-bound adversaries);
* :mod:`~repro.mac.axioms` — a post-hoc validator certifying that a recorded
  execution satisfies all five MAC-layer constraints.
"""

from repro.mac.interfaces import Automaton, MACApi
from repro.mac.messages import InstanceLog, MessageInstance
from repro.mac.standard import StandardMACLayer
from repro.mac.enhanced import EnhancedMACLayer
from repro.mac.axioms import AxiomReport, check_axioms

__all__ = [
    "Automaton",
    "MACApi",
    "MessageInstance",
    "InstanceLog",
    "StandardMACLayer",
    "EnhancedMACLayer",
    "AxiomReport",
    "check_axioms",
]
