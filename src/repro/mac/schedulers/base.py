"""Scheduler interface and the context through which schedulers act.

A scheduler never touches node automata or the simulator's internals
directly: it receives a :class:`SchedulerContext` that exposes exactly the
actions the model grants the adversary — choosing delivery times for
receivers in ``E'``, choosing acknowledgment times within ``Fack``, and
scheduling private bookkeeping events.  The MAC layer validates every action
(edge membership, single delivery per receiver, ack-after-deliveries), so a
buggy scheduler fails fast with :class:`~repro.errors.SchedulerError`
instead of silently producing an inadmissible execution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable

from repro.ids import NodeId, Time
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.mac.messages import MessageInstance
    from repro.mac.standard import StandardMACLayer
    from repro.sim.kernel import Simulator
    from repro.topology.dualgraph import DualGraph


class SchedulerContext:
    """Actions a scheduler may take, validated by the owning MAC layer."""

    def __init__(self, mac: "StandardMACLayer"):
        self._mac = mac

    @property
    def sim(self) -> "Simulator":
        """The simulator (for private bookkeeping events)."""
        return self._mac.sim

    @property
    def dual(self) -> "DualGraph":
        """The network topology as the scheduler should see it *now*.

        Fault-free this is the static dual graph.  Under fault injection
        it is the engine's :class:`~repro.faults.engine.EffectiveDualView`
        (same query surface), so schedulers plan deliveries only to nodes
        that are currently alive and treat flapped-up grey edges as
        reliable — without any fault-specific code of their own.
        """
        return self._mac.effective_dual

    @property
    def fack(self) -> Time:
        """The acknowledgment bound of this execution."""
        return self._mac.fack

    @property
    def fprog(self) -> Time:
        """The progress bound of this execution."""
        return self._mac.fprog

    @property
    def now(self) -> Time:
        """Current simulation time."""
        return self._mac.sim.now

    @property
    def fault_free(self) -> bool:
        """True when no fault engine is attached to this execution.

        Fault-free, the topology a scheduler sees through :attr:`dual` is
        immutable for the whole run — schedulers may cache derived state
        (delivery counters, neighbor lists) that would be unsound under
        dynamics.
        """
        return self._mac.faults is None

    def deliver_at(
        self, instance: "MessageInstance", receiver: NodeId, time: Time
    ) -> EventHandle:
        """Schedule the ``rcv`` event of ``instance`` at ``receiver``.

        The MAC validates that ``receiver`` is a ``G'``-neighbor of the
        sender and that this instance has not already been scheduled for
        (or delivered to) that receiver.
        """
        return self._mac.schedule_delivery(instance, receiver, time)

    def deliver_many(
        self,
        instance: "MessageInstance",
        planned: list[tuple[NodeId, Time]],
    ) -> None:
        """Schedule one broadcast's whole ``rcv`` fan-out in a single batch.

        Equivalent to calling :meth:`deliver_at` once per pair in order
        (validation, sequence numbers, and therefore execution are
        identical) but one heap pass instead of per-receiver pushes — the
        fast path for fan-out-heavy schedulers.  Unlike :meth:`deliver_at`
        it returns no handles; fan-out events are cancelled (if ever) by
        the MAC layer itself.
        """
        self._mac.schedule_deliveries(instance, planned)

    def ack_at(self, instance: "MessageInstance", time: Time) -> EventHandle:
        """Schedule the ``ack`` event of ``instance``.

        The MAC verifies at firing time that every ``G``-neighbor of the
        sender has already received the instance (acknowledgment
        correctness) and that the acknowledgment bound holds.
        """
        return self._mac.schedule_ack(instance, time)

    def call_at(self, time: Time, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule a private scheduler event (service loops, deadlines)."""
        return self._mac.sim.schedule_at(time, fn, *args)


class Scheduler(ABC):
    """Base class for message schedulers.

    Lifecycle: the MAC layer calls :meth:`bind` once before the execution
    starts, then :meth:`on_bcast` for every broadcast, and
    :meth:`on_terminated` when an instance acks or aborts (so stateful
    schedulers can drop bookkeeping).
    """

    def __init__(self) -> None:
        self.ctx: SchedulerContext | None = None

    def bind(self, ctx: SchedulerContext) -> None:
        """Attach the context.  Called once by the MAC layer."""
        self.ctx = ctx

    @abstractmethod
    def on_bcast(self, instance: "MessageInstance") -> None:
        """React to a fresh broadcast: plan deliveries and the ack."""

    def on_terminated(self, instance: "MessageInstance") -> None:
        """Hook: the instance was acked or aborted (default: ignore)."""

    def on_delivered(self, instance: "MessageInstance", receiver: NodeId) -> None:
        """Hook: one ``rcv`` event fired (default: ignore)."""
