"""Message schedulers: the abstract MAC layer's nondeterminism, as policy.

In the paper, *which* unreliable neighbors receive a broadcast, in what
order, and with what timing (within the ``Fack``/``Fprog`` envelopes) is
chosen by an arbitrary message scheduler.  Each class here is one concrete
scheduler; the benign ones model well-behaved MAC layers, the adversarial
ones implement the paper's lower-bound strategies:

* :class:`~repro.mac.schedulers.uniform.UniformDelayScheduler` — random
  delivery delays within ``Fprog``; the friendly baseline regime.
* :class:`~repro.mac.schedulers.contention.ContentionScheduler` — serializes
  each receiver at one delivery per ≤ ``Fprog`` slot; produces the
  ``Fprog ≪ Fack`` behavior real MACs exhibit under load (footnote 2's star).
* :class:`~repro.mac.schedulers.worstcase.WorstCaseAckScheduler` — legal but
  maximally slow acknowledgments (every ack at exactly ``Fack``); also the
  Lemma 3.18 choke-point adversary (alias :data:`ChokeAdversary`).
* :class:`~repro.mac.schedulers.greyzone_adversary.GreyZoneAdversary` — the
  Figure 2 / Lemma 3.19–3.20 frontier-starving adversary.
* :class:`~repro.mac.schedulers.greyzone_adversary.CombinedAdversary` — the
  Theorem 3.17 composition (choke + frontier starvation).
"""

from repro.mac.schedulers.base import Scheduler, SchedulerContext
from repro.mac.schedulers.uniform import UniformDelayScheduler
from repro.mac.schedulers.contention import ContentionScheduler
from repro.mac.schedulers.worstcase import ChokeAdversary, WorstCaseAckScheduler
from repro.mac.schedulers.greyzone_adversary import (
    CombinedAdversary,
    GreyZoneAdversary,
)

__all__ = [
    "Scheduler",
    "SchedulerContext",
    "UniformDelayScheduler",
    "ContentionScheduler",
    "WorstCaseAckScheduler",
    "ChokeAdversary",
    "GreyZoneAdversary",
    "CombinedAdversary",
]
