"""The worst-case acknowledgment scheduler (and Lemma 3.18's adversary).

Every delivery is legal-but-late: ``G``-neighbors (and, with probability
``p_unreliable``, ``G'``-only neighbors) receive at
``bcast + rcv_fraction·Fprog`` — early enough to satisfy the progress bound
everywhere — while every acknowledgment is withheld until exactly
``bcast + Fack``.  A well-formed sender therefore pushes at most one message
per ``Fack`` into the network, which is precisely the choke-point mechanism
behind the ``Ω(k·Fack)`` lower bound of Lemma 3.18: on the choke-star
network, the hub needs ``Θ(k·Fack)`` to forward ``k`` messages across the
single hub—sink edge.
"""

from __future__ import annotations

from repro.errors import SchedulerError
from repro.mac.messages import MessageInstance
from repro.mac.schedulers.base import Scheduler
from repro.sim.rng import RandomSource


class WorstCaseAckScheduler(Scheduler):
    """Deliver fast, acknowledge as late as the model allows.

    Args:
        rng: Random stream (used only for unreliable-delivery coin flips;
            may be None when ``p_unreliable`` is 0).
        p_unreliable: Probability each ``G'``-only neighbor receives a given
            broadcast.
        rcv_fraction: Delivery delay as a fraction of ``Fprog`` (< 1 keeps
            the progress bound satisfied with margin).
    """

    def __init__(
        self,
        rng: RandomSource | None = None,
        p_unreliable: float = 0.0,
        rcv_fraction: float = 0.9,
    ):
        super().__init__()
        if p_unreliable > 0.0 and rng is None:
            raise SchedulerError("p_unreliable > 0 requires an rng")
        if not 0.0 < rcv_fraction < 1.0:
            raise SchedulerError(f"rcv_fraction must be in (0,1): {rcv_fraction}")
        self._rng = rng
        self.p_unreliable = p_unreliable
        self.rcv_fraction = rcv_fraction

    def on_bcast(self, instance: MessageInstance) -> None:
        ctx = self.ctx
        assert ctx is not None, "scheduler used before bind()"
        sender = instance.sender
        rcv_time = instance.bcast_time + self.rcv_fraction * ctx.fprog
        for receiver in sorted(ctx.dual.reliable_neighbors(sender)):
            ctx.deliver_at(instance, receiver, rcv_time)
        if self.p_unreliable > 0.0 and self._rng is not None:
            for receiver in sorted(ctx.dual.unreliable_only_neighbors(sender)):
                if self._rng.bernoulli(self.p_unreliable):
                    ctx.deliver_at(instance, receiver, rcv_time)
        ctx.ack_at(instance, instance.bcast_time + ctx.fack)


class ChokeAdversary(WorstCaseAckScheduler):
    """Alias with the Lemma 3.18 framing.

    On :func:`~repro.topology.adversarial.choke_star_network`, this
    scheduler forces the hub to serialize all ``k`` messages across the
    hub—sink edge at one per ``Fack``, realizing the ``Ω(k·Fack)`` bound.
    The behavior is identical to :class:`WorstCaseAckScheduler`; the name
    exists so experiment configs read like the paper.
    """
