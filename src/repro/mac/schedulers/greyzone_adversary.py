"""The Figure 2 adversary: frontier starvation over long ``G'`` edges.

This scheduler implements the strategy of Lemmas 3.19–3.20 concretely.  On
the parallel-lines network ``C`` (message ``m0`` walking line ``A``,
``m1`` walking line ``B``), it maintains one *frontier instance* per line —
the broadcast carrying the line's message to the furthest node not yet
holding it — and handles broadcasts as follows:

* **Frontier broadcast** (``a_i`` broadcasting ``m0`` while ``a_{i+1}``
  lacks it): the delivery to ``a_{i+1}`` is withheld until ``bcast + Fack``
  and the acknowledgment fires at ``bcast + Fack``; the remaining
  ``G``-neighbor (``a_{i-1}``) receives immediately; and one *legalizing
  injection* delivers ``m0`` over the long diagonal ``G'`` edge to
  ``b_{i+1}`` after a small delay.  Symmetrically for line ``B``.
* **Every other broadcast**: delivered to all ``G``-neighbors and
  acknowledged with zero time passing (the paper's instantaneous round-robin
  segment), never using ``G'`` edges.

Why the starvation is legal: during ``a_i``'s window, the withheld receiver
``a_{i+1}`` gets a ``rcv`` of ``m1`` early in the window from ``b_i``'s
still-pending frontier instance (over the diagonal ``b_i — a_{i+1}``), and
the paper's progress condition (c) counts a receive that occurred by the end
of an interval from any instance whose termination does not precede the
interval's start.  Without the long unreliable edges no such contending
instance would exist and the progress bound would force ``m0`` through in
``Fprog`` — which is exactly the paper's point that the *structure* of
unreliability, not its quantity, is what destroys efficiency.

Every execution this adversary produces is certified against all five MAC
axioms in the test suite.
"""

from __future__ import annotations

from repro.errors import SchedulerError
from repro.ids import MessageId, NodeId
from repro.mac.messages import MessageInstance
from repro.mac.schedulers.base import Scheduler
from repro.topology.adversarial import (
    CombinedLowerBoundNetwork,
    ParallelLinesNetwork,
)


class GreyZoneAdversary(Scheduler):
    """Lemma 3.19/3.20 frontier-starving scheduler for network ``C``.

    Args:
        network: The parallel-lines instance this adversary attacks (it
            needs the line structure and the identities of ``m0``/``m1``).
        inject_fraction: When, within each window, the legalizing diagonal
            injection fires, as a fraction of ``Fprog`` (must be < 1 so the
            first ``Fprog`` subinterval of the window sees a receive).
    """

    def __init__(self, network: ParallelLinesNetwork, inject_fraction: float = 0.25):
        super().__init__()
        if not 0.0 < inject_fraction < 1.0:
            raise SchedulerError(
                f"inject_fraction must be in (0,1): {inject_fraction}"
            )
        self.network = network
        self.inject_fraction = inject_fraction
        self._a_index = {v: i for i, v in enumerate(network.a_nodes)}
        self._b_index = {v: i for i, v in enumerate(network.b_nodes)}
        self._m0 = network.m0.mid
        self._m1 = network.m1.mid
        # Nodes known to hold each target message (origin + scheduled rcvs).
        self._holders: dict[MessageId, set[NodeId]] = {
            self._m0: {network.a_nodes[0]},
            self._m1: {network.b_nodes[0]},
        }

    # ------------------------------------------------------------------
    def on_bcast(self, instance: MessageInstance) -> None:
        ctx = self.ctx
        assert ctx is not None, "scheduler used before bind()"
        mid = getattr(instance.payload, "mid", None)
        plan = self._frontier_plan(instance.sender, mid)
        if plan is None:
            self._instant(instance)
            return
        next_node, diagonal_target = plan
        t = instance.bcast_time
        delta = self.inject_fraction * ctx.fprog
        for receiver in sorted(ctx.dual.reliable_neighbors(instance.sender)):
            when = t + ctx.fack if receiver == next_node else t + 0.0
            ctx.deliver_at(instance, receiver, when)
            self._note_holder(mid, receiver)
        if diagonal_target is not None:
            ctx.deliver_at(instance, diagonal_target, t + delta)
            self._note_holder(mid, diagonal_target)
        ctx.ack_at(instance, t + ctx.fack)

    # ------------------------------------------------------------------
    def _frontier_plan(
        self, sender: NodeId, mid: MessageId | None
    ) -> tuple[NodeId, NodeId | None] | None:
        """Return (withheld G-neighbor, diagonal injection target) or None.

        None means the broadcast is not a frontier broadcast and should be
        handled instantaneously.
        """
        if mid == self._m0 and sender in self._a_index:
            line, other = self.network.a_nodes, self.network.b_nodes
            i = self._a_index[sender]
        elif mid == self._m1 and sender in self._b_index:
            line, other = self.network.b_nodes, self.network.a_nodes
            i = self._b_index[sender]
        else:
            return None
        if i + 1 >= len(line):
            return None
        next_node = line[i + 1]
        if next_node in self._holders[mid]:
            return None
        diagonal_target = other[i + 1]
        if self.ctx is not None and not self.ctx.dual.is_gprime_edge(
            sender, diagonal_target
        ):
            diagonal_target = None
        return next_node, diagonal_target

    def _instant(self, instance: MessageInstance) -> None:
        """Deliver to all G-neighbors and acknowledge with no time passing."""
        ctx = self.ctx
        assert ctx is not None
        mid = getattr(instance.payload, "mid", None)
        for receiver in sorted(ctx.dual.reliable_neighbors(instance.sender)):
            ctx.deliver_at(instance, receiver, ctx.now)
            self._note_holder(mid, receiver)
        ctx.ack_at(instance, ctx.now)

    def _note_holder(self, mid: MessageId | None, receiver: NodeId) -> None:
        if mid in self._holders:
            self._holders[mid].add(receiver)


class CombinedAdversary(GreyZoneAdversary):
    """The Theorem 3.17 composition: choke the blob, then starve the lines.

    On :func:`~repro.topology.adversarial.combined_lower_bound_network`,
    broadcasts by blob nodes are delivered to ``G``-neighbors at
    ``rcv_fraction·Fprog`` and acknowledged at the full ``Fack`` (the
    Lemma 3.18 treatment — the hub serializes its ``k − 2`` stored messages
    across the hub—``a_1`` edge), while line broadcasts get the Figure 2
    frontier treatment.  Completion is therefore at least
    ``max(k−2, D−1)·Fack ≥ ((D + k)/2 − 2)·Fack``.
    """

    def __init__(
        self,
        network: CombinedLowerBoundNetwork,
        inject_fraction: float = 0.25,
        rcv_fraction: float = 0.9,
    ):
        lines_view = ParallelLinesNetwork(
            dual=network.dual,
            a_nodes=network.a_nodes,
            b_nodes=network.b_nodes,
            assignment=network.assignment,
        )
        super().__init__(lines_view, inject_fraction=inject_fraction)
        if not 0.0 < rcv_fraction < 1.0:
            raise SchedulerError(f"rcv_fraction must be in (0,1): {rcv_fraction}")
        self.rcv_fraction = rcv_fraction
        self._blob = set(network.blob)

    def on_bcast(self, instance: MessageInstance) -> None:
        ctx = self.ctx
        assert ctx is not None, "scheduler used before bind()"
        if instance.sender in self._blob:
            mid = getattr(instance.payload, "mid", None)
            rcv_time = instance.bcast_time + self.rcv_fraction * ctx.fprog
            for receiver in sorted(ctx.dual.reliable_neighbors(instance.sender)):
                ctx.deliver_at(instance, receiver, rcv_time)
                self._note_holder(mid, receiver)
            ctx.ack_at(instance, instance.bcast_time + ctx.fack)
            return
        super().on_bcast(instance)
