"""The contention scheduler: where ``Fprog ≪ Fack`` comes from.

Real MAC layers deliver *some* packet to a listener quickly (carrier sensing
means somebody wins the channel), while a *specific* sender may back off for
a long time under load.  This scheduler reproduces that behavior inside the
abstract model:

* each receiver is serialized: it accepts at most one delivery per *slot*
  of duration ≤ ``Fprog`` (a uniform draw per slot);
* among the instances contending at a receiver, reliable senders are served
  earliest-deadline-first (deadline = ``bcast + deadline_fraction·Fack``),
  with an occasional slot diverted to an unreliable sender;
* a per-(instance, receiver) *deadline flush* forcibly delivers any reliable
  candidate that is still undelivered at its deadline, so the
  acknowledgment bound holds even when contention exceeds what EDF can
  absorb;
* the acknowledgment fires the moment the last ``G``-neighbor has received.

Under this policy a broadcast's ack latency grows with the number of
contending ``G'``-neighbors (up to ``Fack``), while every listener keeps
receiving one message per slot — exactly the star-network behavior of the
paper's footnote 2.  Soundness: the first service of a newly non-empty pool
happens within one slot (≤ ``Fprog``) of the broadcast that filled it, so
the progress bound holds; the flush guarantees the ack bound.
"""

from __future__ import annotations

from operator import attrgetter

from repro.errors import SchedulerError
from repro.ids import NodeId, Time
from repro.mac.messages import MessageInstance
from repro.mac.schedulers.base import Scheduler
from repro.sim.rng import RandomSource


class _Candidate:
    """One potential delivery: ``instance`` → ``receiver``."""

    __slots__ = ("instance", "reliable", "deadline", "sort_key")

    def __init__(self, instance: MessageInstance, reliable: bool, deadline: Time):
        self.instance = instance
        self.reliable = reliable
        self.deadline = deadline
        # EDF tie-broken by instance id, precomputed for the C-level
        # attrgetter key in the service loop's min().
        self.sort_key = (deadline, instance.iid)


_SORT_KEY = attrgetter("sort_key")


class ContentionScheduler(Scheduler):
    """Per-receiver serialization with EDF acknowledgment deadlines.

    Args:
        rng: Random stream.
        p_unreliable: Probability a ``G'``-only neighbor contends for (and
            may eventually receive) a given broadcast at all.
        slot_fraction: Slot lengths are uniform in
            ``(0.5·slot_fraction, slot_fraction]·Fprog``; must be ≤ 1.
        deadline_fraction: Reliable deliveries are force-flushed at
            ``bcast + deadline_fraction·Fack`` (< 1 leaves room for the ack).
        unreliable_service_bias: Probability a service slot is diverted to an
            unreliable candidate even when reliable candidates are waiting.
    """

    def __init__(
        self,
        rng: RandomSource,
        p_unreliable: float = 0.5,
        slot_fraction: float = 0.95,
        deadline_fraction: float = 0.9,
        unreliable_service_bias: float = 0.25,
    ):
        super().__init__()
        if not 0.0 < slot_fraction <= 1.0:
            raise SchedulerError(f"slot_fraction must be in (0,1]: {slot_fraction}")
        if not 0.0 < deadline_fraction <= 1.0:
            raise SchedulerError(
                f"deadline_fraction must be in (0,1]: {deadline_fraction}"
            )
        self._rng = rng
        self.p_unreliable = p_unreliable
        self.slot_fraction = slot_fraction
        self.deadline_fraction = deadline_fraction
        self.unreliable_service_bias = unreliable_service_bias
        self._pools: dict[NodeId, list[_Candidate]] = {}
        self._service_active: set[NodeId] = set()
        # Per-receiver sets of handled instance ids: integer membership in
        # the live-filter hot loop instead of tuple allocation + hashing.
        self._handled: dict[NodeId, set[int]] = {}
        # Fault-free fast path: undelivered-reliable-receiver count per
        # instance (the static topology makes the count sound; under
        # faults on_delivered re-derives the set from the live view).
        self._undelivered: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def bind(self, ctx) -> None:
        super().bind(ctx)
        # The service loop schedules ~one event per delivery; bind the
        # raw simulator method once instead of going through the context
        # wrapper (and an EventHandle allocation) on every call — service
        # and flush events are never cancelled.
        self._sim = ctx.sim
        self._call_at = ctx.sim.schedule_at_raw
        self._slot_hi = self.slot_fraction * ctx.fprog
        self._uniform = self._rng.raw.uniform
        self._fack = ctx.fack
        self._deliver_at = ctx.deliver_at
        # Fault-free the topology is static for the whole run; cache it so
        # per-delivery bookkeeping skips the effective-view indirection.
        self._static_dual = ctx.dual if ctx.fault_free else None

    def on_bcast(self, instance: MessageInstance) -> None:
        ctx = self.ctx
        assert ctx is not None, "scheduler used before bind()"
        sender = instance.sender
        deadline = instance.bcast_time + self.deadline_fraction * self._fack
        dual = self._static_dual if self._static_dual is not None else ctx.dual
        reliable = dual.reliable_neighbors_sorted(sender)
        if self._static_dual is not None:
            self._undelivered[instance.iid] = len(reliable)
        for receiver in reliable:
            self._enqueue(receiver, _Candidate(instance, True, deadline))
            self._call_at(deadline, self._deadline_flush, instance, receiver)
        for receiver in dual.unreliable_only_neighbors_sorted(sender):
            if self._rng.bernoulli(self.p_unreliable):
                self._enqueue(receiver, _Candidate(instance, False, deadline))
        if not reliable:
            # No G-neighbors: acknowledgment correctness is vacuous; ack fast.
            ctx.ack_at(instance, instance.bcast_time + self._slot())

    def on_delivered(self, instance: MessageInstance, receiver: NodeId) -> None:
        ctx = self.ctx
        assert ctx is not None
        handled = self._handled.get(receiver)
        if handled is None:
            self._handled[receiver] = {instance.iid}
        else:
            handled.add(instance.iid)
        count = self._undelivered.get(instance.iid)
        if count is not None:
            # Fault-free: O(1) counter instead of re-scanning the
            # neighborhood on every delivery.  The MAC guarantees one rcv
            # per (instance, receiver), so decrements cannot repeat.
            if receiver in self._static_dual.reliable_neighbors(instance.sender):
                count -= 1
                self._undelivered[instance.iid] = count
            remaining = count
        else:
            # Under dynamics the owed set must be re-derived from the
            # current effective topology (edges flap, nodes die).
            remaining = sum(
                1
                for v in ctx.dual.reliable_neighbors(instance.sender)
                if not instance.delivered_to(v)
            )
        if not remaining and instance.ack_time is None and instance.abort_time is None:
            ctx.ack_at(instance, ctx.now)

    def on_terminated(self, instance: MessageInstance) -> None:
        # Pool entries are dropped lazily at service time.
        self._undelivered.pop(instance.iid, None)

    # ------------------------------------------------------------------
    # Per-receiver service machinery
    # ------------------------------------------------------------------
    def _slot(self) -> Time:
        hi = self._slot_hi
        return self._uniform(0.5 * hi, hi)

    def _enqueue(self, receiver: NodeId, candidate: _Candidate) -> None:
        pool = self._pools.get(receiver)
        if pool is None:
            self._pools[receiver] = [candidate]
        else:
            pool.append(candidate)
        if receiver not in self._service_active:
            self._service_active.add(receiver)
            self._call_at(self._sim.now + self._slot(), self._service, receiver)

    def _live_candidates(self, receiver: NodeId) -> list[_Candidate]:
        pool = self._pools.get(receiver, [])
        handled = self._handled.get(receiver, ())
        live = [
            cand
            for cand in pool
            if cand.instance.ack_time is None
            and cand.instance.abort_time is None
            and cand.instance.iid not in handled
        ]
        self._pools[receiver] = live
        return live

    def _service(self, receiver: NodeId) -> None:
        ctx = self.ctx
        assert ctx is not None
        live = self._live_candidates(receiver)
        if not live:
            self._service_active.discard(receiver)
            return
        reliable = [c for c in live if c.reliable]
        unreliable = [c for c in live if not c.reliable]
        pick: _Candidate | None = None
        if unreliable and (
            not reliable or self._rng.bernoulli(self.unreliable_service_bias)
        ):
            pick = self._rng.choice(unreliable)
        elif reliable:
            pick = min(reliable, key=_SORT_KEY)
        if pick is not None:
            # _deliver only schedules the rcv event and marks the pair
            # handled — nothing terminates synchronously — so the post-
            # delivery pool is exactly `live` minus the pick; no second
            # filtering pass is needed.
            self._deliver(pick.instance, receiver)
            live = [c for c in live if c is not pick]
            self._pools[receiver] = live
        if live:
            self._call_at(self._sim.now + self._slot(), self._service, receiver)
        else:
            self._service_active.discard(receiver)

    def _deadline_flush(self, instance: MessageInstance, receiver: NodeId) -> None:
        if instance.terminated:
            return
        if instance.iid in self._handled.get(receiver, ()):
            return
        self._deliver(instance, receiver)

    def _deliver(self, instance: MessageInstance, receiver: NodeId) -> None:
        ctx = self.ctx
        assert ctx is not None
        handled = self._handled.get(receiver)
        if handled is None:
            self._handled[receiver] = {instance.iid}
        else:
            handled.add(instance.iid)
        self._deliver_at(instance, receiver, self._sim.now)
